//! Synthetic Usenet2 substitute (§6.4, naive Bayes experiment).
//!
//! The paper evaluates NB retraining on the **Usenet2** dataset
//! (mlkd.csd.auth.gr/concept_drift.html): 1500 messages from the 20
//! Newsgroups collection shown sequentially to a simulated user whose
//! interest *changes every 300 messages* and later *recurs* — a recurring-
//! context concept-drift benchmark. The dataset itself is not redistributed
//! here, so this module generates a stream with the same published
//! statistics and drift structure:
//!
//! * 1500 messages, presented in batches of 50;
//! * messages drawn from a small set of topics with topic-conditional
//!   word distributions (bag-of-words);
//! * a binary "interesting" label that depends on the topic *and* the
//!   current interest phase, flipping every `interest_period = 300`
//!   messages between two recurring contexts.
//!
//! What the experiment exercises — a weak, recurring signal with scarce
//! data, where sliding windows thrash at every context change — is fully
//! preserved (see DESIGN.md §4, substitution 2).

use rand::Rng;

/// A bag-of-words message with its drift-dependent label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Word-token ids (with repetition — bag of words).
    pub tokens: Vec<u32>,
    /// Ground-truth topic.
    pub topic: u32,
    /// Whether the simulated user finds it interesting *at the time it is
    /// presented* (depends on the interest phase).
    pub interesting: bool,
}

/// Generator for the synthetic recurring-context message stream.
#[derive(Debug, Clone)]
pub struct UsenetGenerator {
    /// Number of distinct topics.
    pub num_topics: u32,
    /// Topic-specific vocabulary size per topic.
    pub words_per_topic: u32,
    /// Number of shared (non-discriminative) words.
    pub shared_words: u32,
    /// Tokens per message.
    pub tokens_per_message: usize,
    /// Probability that a token is drawn from the topic-specific vocabulary
    /// (the rest come from the shared pool). Controls the signal strength —
    /// the paper's dataset has "less pronounced" changes, so keep it mild.
    pub topic_affinity: f64,
    /// Messages per interest phase (300 in Usenet2).
    pub interest_period: u64,
}

impl Default for UsenetGenerator {
    fn default() -> Self {
        Self::paper()
    }
}

impl UsenetGenerator {
    /// Configuration mirroring Usenet2's published statistics.
    pub fn paper() -> Self {
        Self {
            num_topics: 3,
            words_per_topic: 40,
            shared_words: 80,
            tokens_per_message: 50,
            topic_affinity: 0.35,
            interest_period: 300,
        }
    }

    /// Total vocabulary size (topic-specific blocks first, shared block
    /// last).
    pub fn vocab_size(&self) -> u32 {
        self.num_topics * self.words_per_topic + self.shared_words
    }

    /// The interest phase (0 or 1) active when message `index` arrives.
    /// Phases alternate every `interest_period` messages, so phase 0
    /// *recurs* at messages 600–899, 1200–1499, … — the recurring context.
    pub fn phase_at(&self, index: u64) -> u8 {
        ((index / self.interest_period) % 2) as u8
    }

    /// Which topic the user finds interesting during `phase`.
    ///
    /// Phase 0: topic 0. Phase 1: topic 1. Topic 2 (and beyond) is never
    /// interesting — background traffic.
    pub fn interesting_topic(&self, phase: u8) -> u32 {
        u32::from(phase % 2)
    }

    /// Generate the `index`-th message of the stream.
    pub fn message<R: Rng + ?Sized>(&self, index: u64, rng: &mut R) -> Message {
        let topic = rng.gen_range(0..self.num_topics);
        let topic_block_start = topic * self.words_per_topic;
        let shared_start = self.num_topics * self.words_per_topic;
        let tokens = (0..self.tokens_per_message)
            .map(|_| {
                if rng.gen::<f64>() < self.topic_affinity {
                    topic_block_start + rng.gen_range(0..self.words_per_topic)
                } else {
                    shared_start + rng.gen_range(0..self.shared_words)
                }
            })
            .collect();
        let phase = self.phase_at(index);
        Message {
            tokens,
            topic,
            interesting: topic == self.interesting_topic(phase),
        }
    }

    /// Generate the full stream as batches of `batch_size` messages
    /// (`total` messages overall; the last batch may be short).
    pub fn stream<R: Rng + ?Sized>(
        &self,
        total: u64,
        batch_size: usize,
        rng: &mut R,
    ) -> Vec<Vec<Message>> {
        let mut out = Vec::new();
        let mut index = 0u64;
        while index < total {
            let size = batch_size.min((total - index) as usize);
            out.push(
                (0..size)
                    .map(|_| {
                        let m = self.message(index, rng);
                        index += 1;
                        m
                    })
                    .collect(),
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use tbs_stats::rng::Xoshiro256PlusPlus;

    #[test]
    fn phases_flip_every_period_and_recur() {
        let g = UsenetGenerator::paper();
        assert_eq!(g.phase_at(0), 0);
        assert_eq!(g.phase_at(299), 0);
        assert_eq!(g.phase_at(300), 1);
        assert_eq!(g.phase_at(599), 1);
        assert_eq!(g.phase_at(600), 0, "context must recur");
        assert_eq!(g.phase_at(1200), 0);
    }

    #[test]
    fn tokens_in_vocabulary() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        let g = UsenetGenerator::paper();
        let v = g.vocab_size();
        for i in 0..100 {
            let m = g.message(i, &mut rng);
            assert_eq!(m.tokens.len(), 50);
            assert!(m.tokens.iter().all(|&t| t < v));
        }
    }

    #[test]
    fn labels_follow_interest_phase() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(2);
        let g = UsenetGenerator::paper();
        // In phase 0 only topic 0 is interesting.
        for _ in 0..200 {
            let m = g.message(10, &mut rng);
            assert_eq!(m.interesting, m.topic == 0);
        }
        // In phase 1 only topic 1 is.
        for _ in 0..200 {
            let m = g.message(310, &mut rng);
            assert_eq!(m.interesting, m.topic == 1);
        }
    }

    #[test]
    fn topic_words_are_discriminative() {
        // Tokens from a topic's block must be over-represented in that
        // topic's messages.
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
        let g = UsenetGenerator::paper();
        let mut topic0_block_hits = 0usize;
        let mut total = 0usize;
        for i in 0..400 {
            let m = g.message(i, &mut rng);
            if m.topic == 0 {
                topic0_block_hits += m.tokens.iter().filter(|&&t| t < g.words_per_topic).count();
                total += m.tokens.len();
            }
        }
        let frac = topic0_block_hits as f64 / total as f64;
        assert!(
            (frac - g.topic_affinity).abs() < 0.05,
            "topic block fraction {frac}"
        );
    }

    #[test]
    fn stream_batch_layout_matches_usenet2() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(4);
        let g = UsenetGenerator::paper();
        let stream = g.stream(1500, 50, &mut rng);
        assert_eq!(stream.len(), 30, "1500 messages in batches of 50");
        assert!(stream.iter().all(|b| b.len() == 50));
    }

    #[test]
    fn short_final_batch() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(5);
        let g = UsenetGenerator::paper();
        let stream = g.stream(120, 50, &mut rng);
        assert_eq!(stream.len(), 3);
        assert_eq!(stream[2].len(), 20);
    }

    #[test]
    fn base_rate_is_roughly_one_third() {
        // One of three topics is interesting at any time.
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(6);
        let g = UsenetGenerator::paper();
        let n = 30_000;
        let hits = (0..n)
            .filter(|&i| g.message(i % 1500, &mut rng).interesting)
            .count();
        let p = hits as f64 / n as f64;
        assert!((p - 1.0 / 3.0).abs() < 0.02, "base rate {p}");
    }
}
