//! Batch-size processes (Figures 1 and 11).
//!
//! The experiments stress the samplers with different arrival-rate regimes:
//! deterministic, i.i.d. uniform (high variance), geometrically growing
//! (`ϕ = 1.002` — overflows T-TBS), and geometrically decaying (`ϕ = 0.8` —
//! shrinks every scheme).

use rand::Rng;

/// A (possibly random, possibly time-varying) process of batch sizes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BatchSizeProcess {
    /// Constant size `b` every batch.
    Deterministic(u64),
    /// I.i.d. `Uniform{lo, …, hi}` (inclusive); the paper's `Uniform(0,200)`
    /// has mean 100 like the deterministic baseline.
    UniformRandom {
        /// Smallest possible batch.
        lo: u64,
        /// Largest possible batch.
        hi: u64,
    },
    /// Deterministic `initial` until `start_step`, then multiplied by
    /// `factor` each subsequent step: `B_t = initial · factor^{max(0, t −
    /// start_step)}` (Figure 1(a) with `factor = 1.002`, Figure 1(d) with
    /// `factor = 0.8`).
    Geometric {
        /// Size before growth/decay kicks in.
        initial: f64,
        /// Per-step multiplier ϕ.
        factor: f64,
        /// Step at which the geometric regime starts.
        start_step: u64,
    },
}

impl BatchSizeProcess {
    /// The paper's growing-batch scenario (Fig. 1(a)).
    pub fn growing(initial: u64, factor: f64, start_step: u64) -> Self {
        assert!(factor >= 1.0, "growing process needs factor >= 1");
        BatchSizeProcess::Geometric {
            initial: initial as f64,
            factor,
            start_step,
        }
    }

    /// The paper's decaying-batch scenario (Fig. 1(d)).
    pub fn decaying(initial: u64, factor: f64, start_step: u64) -> Self {
        assert!(
            factor > 0.0 && factor <= 1.0,
            "decaying process needs factor in (0,1]"
        );
        BatchSizeProcess::Geometric {
            initial: initial as f64,
            factor,
            start_step,
        }
    }

    /// Batch size at step `t` (0-based).
    pub fn size_at<R: Rng + ?Sized>(&self, t: u64, rng: &mut R) -> u64 {
        match *self {
            BatchSizeProcess::Deterministic(b) => b,
            BatchSizeProcess::UniformRandom { lo, hi } => {
                assert!(lo <= hi, "uniform bounds out of order");
                rng.gen_range(lo..=hi)
            }
            BatchSizeProcess::Geometric {
                initial,
                factor,
                start_step,
            } => {
                let exponent = t.saturating_sub(start_step) as f64;
                (initial * factor.powf(exponent)).round().max(0.0) as u64
            }
        }
    }

    /// Long-run mean batch size, if constant over time (`None` for
    /// geometric regimes, whose mean drifts).
    pub fn stationary_mean(&self) -> Option<f64> {
        match *self {
            BatchSizeProcess::Deterministic(b) => Some(b as f64),
            BatchSizeProcess::UniformRandom { lo, hi } => Some((lo + hi) as f64 / 2.0),
            BatchSizeProcess::Geometric { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use tbs_stats::rng::Xoshiro256PlusPlus;

    #[test]
    fn deterministic_is_constant() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        let p = BatchSizeProcess::Deterministic(100);
        for t in 0..50 {
            assert_eq!(p.size_at(t, &mut rng), 100);
        }
        assert_eq!(p.stationary_mean(), Some(100.0));
    }

    #[test]
    fn uniform_respects_bounds_and_mean() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(2);
        let p = BatchSizeProcess::UniformRandom { lo: 0, hi: 200 };
        let n = 50_000;
        let mut sum = 0u64;
        for t in 0..n {
            let b = p.size_at(t, &mut rng);
            assert!(b <= 200);
            sum += b;
        }
        let mean = sum as f64 / n as f64;
        assert!((mean - 100.0).abs() < 1.5, "mean {mean}");
        assert_eq!(p.stationary_mean(), Some(100.0));
    }

    #[test]
    fn geometric_growth_matches_fig1a() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
        let p = BatchSizeProcess::growing(100, 1.002, 200);
        assert_eq!(p.size_at(0, &mut rng), 100);
        assert_eq!(p.size_at(200, &mut rng), 100);
        // After 800 growth steps: 100·1.002^800 ≈ 495.
        let late = p.size_at(1000, &mut rng);
        assert!((late as f64 - 100.0 * 1.002f64.powi(800)).abs() < 1.0);
        assert!(late > 490 && late < 500);
    }

    #[test]
    fn geometric_decay_matches_fig1d() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(4);
        let p = BatchSizeProcess::decaying(100, 0.8, 200);
        assert_eq!(p.size_at(199, &mut rng), 100);
        assert_eq!(p.size_at(201, &mut rng), 80);
        assert_eq!(
            p.size_at(210, &mut rng),
            (100.0 * 0.8f64.powi(10)).round() as u64
        );
        // Eventually the stream dries up entirely.
        assert_eq!(p.size_at(300, &mut rng), 0);
    }

    #[test]
    #[should_panic(expected = "factor")]
    fn growing_rejects_shrinking_factor() {
        BatchSizeProcess::growing(100, 0.9, 0);
    }

    #[test]
    #[should_panic(expected = "factor")]
    fn decaying_rejects_growth_factor() {
        BatchSizeProcess::decaying(100, 1.1, 0);
    }
}
