//! Distributed in-memory key-value-store reservoir (§5.2, Figure 5(a)).
//!
//! Models the "off-the-shelf distributed key-value store" (Memcached /
//! Redis) option: reservoir items live as *serialized* key-value pairs,
//! hash-partitioned by slot number across store nodes. Its two §5.2
//! drawbacks are faithfully present:
//!
//! 1. hash partitioning does not align with batch partitions, so every
//!    insert crosses the network to an arbitrary node;
//! 2. each operation takes a per-node lock (the "needless concurrency
//!    control" the paper calls out), even though the algorithm has already
//!    de-conflicted all writes.

use crate::cost::{CostModel, CostTracker};
use crate::wire::{Wire, WIRE_ENVELOPE_BYTES};
use bytes::Bytes;
use parking_lot::Mutex;
use rand::Rng;
use std::collections::HashMap;
use std::marker::PhantomData;
use tbs_core::checkpoint::CheckpointError;

/// Decode a stored value as `T`, surfacing garbage bytes as a typed
/// corruption error rather than a panic (the store holds whatever a
/// restored checkpoint put in it).
fn decode_value<T: Wire>(bytes: &[u8]) -> Result<T, CheckpointError> {
    T::try_decode(bytes).ok_or(CheckpointError::Corrupt("kv item payload"))
}

/// Reservoir stored as slot → serialized value across hash-partitioned
/// store nodes. Slots are kept contiguous in `1..=len`.
#[derive(Debug)]
pub struct KvReservoir<T: Wire> {
    nodes: Vec<Mutex<HashMap<u64, Bytes>>>,
    len: u64,
    _marker: PhantomData<T>,
}

impl<T: Wire> KvReservoir<T> {
    /// Create an empty store over `nodes` store nodes.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    pub fn new(nodes: usize) -> Self {
        assert!(nodes > 0, "need at least one store node");
        Self {
            nodes: (0..nodes).map(|_| Mutex::new(HashMap::new())).collect(),
            len: 0,
            _marker: PhantomData,
        }
    }

    /// Number of store nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of stored items.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Hash-partition a slot to a node (multiplicative hash, like a client
    /// library's consistent-ish hashing).
    fn node_of(&self, slot: u64) -> usize {
        let mixed = slot.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17);
        (mixed % self.nodes.len() as u64) as usize
    }

    // Individual operations are pipelined in bulk by the client library, so
    // they pay the amortized kv_per_op plus bandwidth for request + ack —
    // not a full round-trip latency each.

    fn put(&self, slot: u64, value: Bytes, model: &CostModel, cost: &mut CostTracker) {
        let node = self.node_of(slot);
        cost.kv_ops(model, 1);
        cost.bulk(model, (value.len() + 2 * WIRE_ENVELOPE_BYTES) as u64);
        self.nodes[node].lock().insert(slot, value);
    }

    fn remove(&self, slot: u64, model: &CostModel, cost: &mut CostTracker) -> Option<Bytes> {
        let node = self.node_of(slot);
        cost.kv_ops(model, 1);
        cost.bulk(model, (2 * WIRE_ENVELOPE_BYTES) as u64);
        self.nodes[node].lock().remove(&slot)
    }

    fn get(&self, slot: u64, model: &CostModel, cost: &mut CostTracker) -> Option<Bytes> {
        let node = self.node_of(slot);
        cost.kv_ops(model, 1);
        cost.bulk(model, (2 * WIRE_ENVELOPE_BYTES) as u64);
        self.nodes[node].lock().get(&slot).cloned()
    }

    /// Append items at fresh slots `len+1, len+2, …` (fill-up / growth).
    pub fn append(&mut self, items: &[T], model: &CostModel, cost: &mut CostTracker) {
        for item in items {
            let slot = self.len + 1;
            self.put(slot, item.encode(), model, cost);
            self.len += 1;
        }
    }

    /// Overwrite the values at `m` uniformly chosen victim slots with the
    /// given replacement items (the saturated→saturated transition: deletes
    /// and inserts combined into destination-slot overwrites, as §5.3
    /// describes for the KV representation).
    pub fn replace_random<R: Rng + ?Sized>(
        &mut self,
        replacements: &[T],
        rng: &mut R,
        model: &CostModel,
        cost: &mut CostTracker,
    ) {
        let m = replacements.len();
        assert!(m as u64 <= self.len, "more replacements than stored items");
        // Master chooses m distinct destination slots (cost accounted by
        // the caller as master work); each write crosses the network.
        let slots = tbs_core::util::sample_indices(self.len as usize, m, rng);
        for (item, slot0) in replacements.iter().zip(slots) {
            self.put(slot0 as u64 + 1, item.encode(), model, cost);
        }
    }

    /// Delete `m` uniformly chosen slots, then restore slot contiguity by
    /// moving top-end slots into the holes (get + put + delete per move) —
    /// the §5.3 requirement that "all of the slot numbers are still unique
    /// and contiguous". A stored value the item type cannot decode is a
    /// typed [`CheckpointError::Corrupt`] — never a panic — so state
    /// rebuilt from a hostile checkpoint blob fails cleanly downstream.
    pub fn shrink_random<R: Rng + ?Sized>(
        &mut self,
        m: usize,
        rng: &mut R,
        model: &CostModel,
        cost: &mut CostTracker,
    ) -> Result<Vec<T>, CheckpointError> {
        assert!(m as u64 <= self.len, "cannot shrink below zero");
        let mut removed = Vec::with_capacity(m);
        let victims = tbs_core::util::sample_indices(self.len as usize, m, rng);
        let mut holes: Vec<u64> = victims.into_iter().map(|s| s as u64 + 1).collect();
        for &slot in &holes {
            // INVARIANT: slots 1..=len are contiguously occupied (§5.3)
            // and `sample_indices` yields distinct indices < len, so every
            // victim slot holds an item.
            let bytes = self
                .remove(slot, model, cost)
                .expect("victim slot occupied");
            removed.push(decode_value(&bytes)?);
        }
        // Compact: move items from the tail into holes below the new length.
        let new_len = self.len - m as u64;
        holes.retain(|&h| h <= new_len);
        let mut tail = self.len;
        for hole in holes {
            // Find the next occupied tail slot (skip tail slots that were
            // themselves deleted).
            loop {
                if let Some(bytes) = self.remove(tail, model, cost) {
                    self.put(hole, bytes, model, cost);
                    tail -= 1;
                    break;
                }
                tail -= 1;
            }
        }
        self.len = new_len;
        Ok(removed)
    }

    /// Driver-side collect of the full reservoir contents. Undecodable
    /// stored values surface as typed [`CheckpointError::Corrupt`].
    pub fn collect(
        &self,
        model: &CostModel,
        cost: &mut CostTracker,
    ) -> Result<Vec<T>, CheckpointError> {
        let mut out = Vec::with_capacity(self.len as usize);
        let mut bytes_total = 0u64;
        for node in &self.nodes {
            let guard = node.lock();
            for value in guard.values() {
                bytes_total += (value.len() + WIRE_ENVELOPE_BYTES) as u64;
                out.push(decode_value(value)?);
            }
        }
        cost.network(model, self.nodes.len() as u64, bytes_total);
        Ok(out)
    }

    /// Read one slot (used by equivalence tests).
    pub fn peek(
        &self,
        slot: u64,
        model: &CostModel,
        cost: &mut CostTracker,
    ) -> Result<Option<T>, CheckpointError> {
        self.get(slot, model, cost)
            .map(|b| decode_value(&b))
            .transpose()
    }

    /// Snapshot every (slot, encoded value) pair — the §5.1 checkpointing
    /// path. No cost is charged: checkpoints are written out of band.
    pub fn snapshot(&self) -> Vec<(u64, Bytes)> {
        let mut out = Vec::with_capacity(self.len as usize);
        for node in &self.nodes {
            let guard = node.lock();
            out.extend(guard.iter().map(|(&slot, v)| (slot, v.clone())));
        }
        out
    }

    /// Rebuild a store from a snapshot (restores hash placement and the
    /// slot-contiguity invariant implicitly carried by the entries).
    pub fn restore(nodes: usize, entries: Vec<(u64, Bytes)>) -> Self {
        let mut kv = Self::new(nodes);
        kv.len = entries.len() as u64;
        for (slot, value) in entries {
            let node = kv.node_of(slot);
            kv.nodes[node].lock().insert(slot, value);
        }
        kv
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use tbs_stats::rng::Xoshiro256PlusPlus;

    fn fresh() -> (KvReservoir<u64>, CostModel, CostTracker) {
        (
            KvReservoir::new(4),
            CostModel::default(),
            CostTracker::new(),
        )
    }

    #[test]
    fn append_and_collect_roundtrip() {
        let (mut kv, model, mut cost) = fresh();
        let items: Vec<u64> = (100..150).collect();
        kv.append(&items, &model, &mut cost);
        assert_eq!(kv.len(), 50);
        let mut got = kv.collect(&model, &mut cost).unwrap();
        got.sort_unstable();
        assert_eq!(got, items);
    }

    #[test]
    fn replace_keeps_length_and_installs_new_items() {
        let (mut kv, model, mut cost) = fresh();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        kv.append(&(0..20u64).collect::<Vec<_>>(), &model, &mut cost);
        kv.replace_random(&[1000, 1001, 1002], &mut rng, &model, &mut cost);
        assert_eq!(kv.len(), 20);
        let got = kv.collect(&model, &mut cost).unwrap();
        assert_eq!(got.len(), 20);
        assert_eq!(got.iter().filter(|&&x| x >= 1000).count(), 3);
    }

    #[test]
    fn shrink_removes_and_keeps_contiguity() {
        let (mut kv, model, mut cost) = fresh();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(2);
        kv.append(&(0..30u64).collect::<Vec<_>>(), &model, &mut cost);
        let removed = kv.shrink_random(12, &mut rng, &model, &mut cost).unwrap();
        assert_eq!(removed.len(), 12);
        assert_eq!(kv.len(), 18);
        // All slots 1..=18 must be occupied (contiguity restored).
        let mut probe_cost = CostTracker::new();
        for slot in 1..=18u64 {
            assert!(
                kv.peek(slot, &model, &mut probe_cost).unwrap().is_some(),
                "hole at slot {slot}"
            );
        }
        let got = kv.collect(&model, &mut probe_cost).unwrap();
        assert_eq!(got.len(), 18);
    }

    #[test]
    fn shrink_everything_empties_the_store() {
        let (mut kv, model, mut cost) = fresh();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
        kv.append(&(0..10u64).collect::<Vec<_>>(), &model, &mut cost);
        let removed = kv.shrink_random(10, &mut rng, &model, &mut cost).unwrap();
        assert_eq!(removed.len(), 10);
        assert!(kv.is_empty());
        assert!(kv.collect(&model, &mut cost).unwrap().is_empty());
    }

    #[test]
    fn operations_are_charged_to_the_network() {
        let (mut kv, model, mut cost) = fresh();
        kv.append(&(0..10u64).collect::<Vec<_>>(), &model, &mut cost);
        // 10 puts, each shipping 8 payload bytes + request and ack
        // envelopes, plus 10 amortized KV operations.
        assert_eq!(
            cost.bytes_shipped,
            10 * (8 + 2 * WIRE_ENVELOPE_BYTES as u64)
        );
        let expect_kv = 10.0 * model.kv_per_op;
        assert!(cost.network_time >= expect_kv, "kv op time missing");
        assert!(cost.elapsed > 0.0);
    }

    #[test]
    fn values_spread_across_nodes() {
        let (mut kv, model, mut cost) = fresh();
        kv.append(&(0..100u64).collect::<Vec<_>>(), &model, &mut cost);
        let occupancy: Vec<usize> = kv.nodes.iter().map(|n| n.lock().len()).collect();
        assert!(occupancy.iter().all(|&c| c > 0), "hash skew: {occupancy:?}");
    }

    #[test]
    fn garbage_payload_surfaces_as_typed_corruption() {
        // A store rebuilt from a hostile checkpoint can hold bytes that
        // are not a valid `T`; every decode path must report that as a
        // typed error, never a panic.
        let kv: KvReservoir<u64> = KvReservoir::restore(2, vec![(1, Bytes::from_static(b"xyz"))]);
        let model = CostModel::default();
        let mut cost = CostTracker::new();
        assert!(matches!(
            kv.collect(&model, &mut cost),
            Err(CheckpointError::Corrupt("kv item payload"))
        ));
        assert!(matches!(
            kv.peek(1, &model, &mut cost),
            Err(CheckpointError::Corrupt("kv item payload"))
        ));
    }

    #[test]
    #[should_panic(expected = "more replacements")]
    fn replace_rejects_overdraw() {
        let (mut kv, model, mut cost) = fresh();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(4);
        kv.append(&[1, 2], &model, &mut cost);
        kv.replace_random(&[9, 9, 9], &mut rng, &model, &mut cost);
    }
}
