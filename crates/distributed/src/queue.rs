//! Bounded blocking batch queues for the persistent ingest pipeline.
//!
//! The parallel engine ([`crate::engine`]) connects the driver thread to
//! each long-lived shard worker with one of these queues per direction.
//! Design constraints, in order:
//!
//! 1. **No allocation in steady state** — the ring is a `VecDeque` that
//!    reaches its high-water capacity during warm-up and never grows past
//!    the configured bound, so `push`/`drain_into` never touch the heap
//!    once warm (futex-based `Condvar` waits allocate nothing on Linux).
//! 2. **Amortized locking** — consumers drain *everything* available under
//!    one lock acquisition ([`BatchQueue::drain_into`]); with a fast
//!    producer the queue delivers work in large groups, so per-item lock
//!    traffic vanishes.
//! 3. **Backpressure** — `push` blocks while the queue is at capacity,
//!    bounding the engine's in-flight memory at
//!    `shards × depth × batch_size` items.
//!
//! Built on the vendored `parking_lot` shim (`Mutex` + `Condvar`).

use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;

/// A bounded multi-producer blocking queue drained in bulk by consumers.
#[derive(Debug)]
pub struct BatchQueue<T> {
    state: Mutex<Inner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

#[derive(Debug)]
struct Inner<T> {
    buf: VecDeque<T>,
    closed: bool,
}

impl<T> BatchQueue<T> {
    /// Create a queue holding at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        Self {
            state: Mutex::new(Inner {
                buf: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
        }
    }

    /// Enqueue `item`, blocking while the queue is full. Returns `Err` with
    /// the item if the queue has been closed.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut state = self.state.lock();
        loop {
            if state.closed {
                return Err(item);
            }
            if state.buf.len() < self.capacity {
                state.buf.push_back(item);
                drop(state);
                self.not_empty.notify_one();
                return Ok(());
            }
            state = self.not_full.wait(state);
        }
    }

    /// Enqueue without blocking; `Err` returns the item when the queue is
    /// full or closed.
    pub fn try_push(&self, item: T) -> Result<(), T> {
        let mut state = self.state.lock();
        if state.closed || state.buf.len() >= self.capacity {
            return Err(item);
        }
        state.buf.push_back(item);
        drop(state);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Move every queued entry into `out` (appended in FIFO order),
    /// blocking until at least one entry is available. Returns the number
    /// of entries moved — `0` only after [`BatchQueue::close`] once the
    /// queue has fully drained.
    pub fn drain_into(&self, out: &mut Vec<T>) -> usize {
        let mut state = self.state.lock();
        loop {
            if !state.buf.is_empty() {
                let n = state.buf.len();
                out.extend(state.buf.drain(..));
                drop(state);
                self.not_full.notify_all();
                return n;
            }
            if state.closed {
                return 0;
            }
            state = self.not_empty.wait(state);
        }
    }

    /// Move every queued entry into `out` without blocking (appended in
    /// FIFO order). Returns the number of entries moved — `0` when the
    /// queue is momentarily empty. The work-stealing sweep uses this:
    /// a sweeping worker must never sleep on another shard's queue.
    pub fn try_drain_into(&self, out: &mut Vec<T>) -> usize {
        let mut state = self.state.lock();
        let n = state.buf.len();
        if n > 0 {
            out.extend(state.buf.drain(..));
            drop(state);
            self.not_full.notify_all();
        }
        n
    }

    /// Like [`BatchQueue::drain_into`] but gives up after `timeout`,
    /// returning `0` with nothing drained. Lets a consumer with fallback
    /// work (e.g. the merger executing tree nodes) poll without spinning.
    pub fn drain_into_timeout(&self, out: &mut Vec<T>, timeout: std::time::Duration) -> usize {
        let deadline = std::time::Instant::now() + timeout;
        let mut state = self.state.lock();
        loop {
            if !state.buf.is_empty() {
                let n = state.buf.len();
                out.extend(state.buf.drain(..));
                drop(state);
                self.not_full.notify_all();
                return n;
            }
            if state.closed {
                return 0;
            }
            let Some(left) = deadline
                .checked_duration_since(std::time::Instant::now())
                .filter(|d| !d.is_zero())
            else {
                return 0;
            };
            state = self.not_empty.wait_timeout(state, left).0;
        }
    }

    /// Block until the queue is non-empty, closed, or `timeout` elapses.
    /// Returns `true` when there may be something to do (entries queued
    /// or the queue closed), `false` on a pure timeout — the idle shard
    /// worker's "wait for my own work, then rescan the steal targets"
    /// primitive.
    pub fn wait_nonempty(&self, timeout: std::time::Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        let mut state = self.state.lock();
        loop {
            if !state.buf.is_empty() || state.closed {
                return true;
            }
            let Some(left) = deadline
                .checked_duration_since(std::time::Instant::now())
                .filter(|d| !d.is_zero())
            else {
                return false;
            };
            state = self.not_empty.wait_timeout(state, left).0;
        }
    }

    /// Dequeue a single entry without blocking.
    pub fn try_pop(&self) -> Option<T> {
        let mut state = self.state.lock();
        let item = state.buf.pop_front();
        if item.is_some() {
            drop(state);
            self.not_full.notify_all();
        }
        item
    }

    /// Close the queue: pending entries remain drainable, further pushes
    /// fail, and blocked consumers wake with whatever is left.
    pub fn close(&self) {
        self.state.lock().closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Current number of queued entries.
    pub fn len(&self) -> usize {
        self.state.lock().buf.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether [`BatchQueue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.state.lock().closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_roundtrip() {
        let q = BatchQueue::with_capacity(8);
        for i in 0..5 {
            q.push(i).unwrap();
        }
        let mut out = Vec::new();
        assert_eq!(q.drain_into(&mut out), 5);
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
        assert!(q.is_empty());
    }

    #[test]
    fn try_push_respects_capacity() {
        let q = BatchQueue::with_capacity(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert_eq!(q.try_push(3), Err(3));
        assert_eq!(q.try_pop(), Some(1));
        assert!(q.try_push(3).is_ok());
    }

    #[test]
    fn push_blocks_until_drained() {
        let q = Arc::new(BatchQueue::with_capacity(1));
        q.push(0u32).unwrap();
        let q2 = Arc::clone(&q);
        let producer = std::thread::spawn(move || q2.push(1).unwrap());
        // Give the producer a moment to block on the full queue.
        std::thread::sleep(std::time::Duration::from_millis(10));
        let mut out = Vec::new();
        q.drain_into(&mut out);
        producer.join().unwrap();
        out.clear();
        q.drain_into(&mut out);
        assert_eq!(out, vec![1]);
    }

    #[test]
    fn drain_blocks_until_pushed() {
        let q = Arc::new(BatchQueue::<u32>::with_capacity(4));
        let q2 = Arc::clone(&q);
        let consumer = std::thread::spawn(move || {
            let mut out = Vec::new();
            q2.drain_into(&mut out);
            out
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        q.push(7).unwrap();
        assert_eq!(consumer.join().unwrap(), vec![7]);
    }

    #[test]
    fn close_wakes_consumers_and_rejects_producers() {
        let q = Arc::new(BatchQueue::<u32>::with_capacity(4));
        let q2 = Arc::clone(&q);
        let consumer = std::thread::spawn(move || {
            let mut out = Vec::new();
            q2.drain_into(&mut out)
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        q.close();
        assert_eq!(consumer.join().unwrap(), 0);
        assert_eq!(q.push(1), Err(1));
    }

    #[test]
    fn try_drain_never_blocks() {
        let q = BatchQueue::<u32>::with_capacity(4);
        let mut out = Vec::new();
        assert_eq!(q.try_drain_into(&mut out), 0);
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert_eq!(q.try_drain_into(&mut out), 2);
        assert_eq!(out, vec![1, 2]);
        assert_eq!(q.try_drain_into(&mut out), 0);
    }

    #[test]
    fn drain_timeout_returns_empty_handed() {
        let q = BatchQueue::<u32>::with_capacity(4);
        let mut out = Vec::new();
        let start = std::time::Instant::now();
        assert_eq!(
            q.drain_into_timeout(&mut out, std::time::Duration::from_millis(20)),
            0
        );
        assert!(start.elapsed() >= std::time::Duration::from_millis(15));
        q.push(9).unwrap();
        assert_eq!(
            q.drain_into_timeout(&mut out, std::time::Duration::from_millis(20)),
            1
        );
        assert_eq!(out, vec![9]);
    }

    #[test]
    fn wait_nonempty_reports_work_and_closure() {
        let q = Arc::new(BatchQueue::<u32>::with_capacity(4));
        assert!(!q.wait_nonempty(std::time::Duration::from_millis(5)));
        q.push(1).unwrap();
        assert!(q.wait_nonempty(std::time::Duration::from_millis(5)));
        assert_eq!(q.try_pop(), Some(1));
        let q2 = Arc::clone(&q);
        let waiter =
            std::thread::spawn(move || q2.wait_nonempty(std::time::Duration::from_secs(10)));
        std::thread::sleep(std::time::Duration::from_millis(10));
        q.close();
        assert!(waiter.join().unwrap(), "close must wake the waiter");
        assert!(q.is_closed());
    }

    #[test]
    fn close_leaves_backlog_drainable() {
        let q = BatchQueue::with_capacity(4);
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.close();
        let mut out = Vec::new();
        assert_eq!(q.drain_into(&mut out), 2);
        assert_eq!(q.drain_into(&mut out), 0);
    }
}
