//! Bounded blocking batch queues for the persistent ingest pipeline.
//!
//! The parallel engine ([`crate::engine`]) connects the driver thread to
//! each long-lived shard worker with one of these queues per direction.
//! Design constraints, in order:
//!
//! 1. **No allocation in steady state** — the ring is a `VecDeque` that
//!    reaches its high-water capacity during warm-up and never grows past
//!    the configured bound, so `push`/`drain_into` never touch the heap
//!    once warm (futex-based `Condvar` waits allocate nothing on Linux).
//! 2. **Amortized locking** — consumers drain *everything* available under
//!    one lock acquisition ([`BatchQueue::drain_into`]); with a fast
//!    producer the queue delivers work in large groups, so per-item lock
//!    traffic vanishes.
//! 3. **Backpressure** — `push` blocks while the queue is at capacity,
//!    bounding the engine's in-flight memory at
//!    `shards × depth × batch_size` items.
//!
//! Built on the vendored `parking_lot` shim (`Mutex` + `Condvar`).

use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;

/// A bounded multi-producer blocking queue drained in bulk by consumers.
#[derive(Debug)]
pub struct BatchQueue<T> {
    state: Mutex<Inner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

#[derive(Debug)]
struct Inner<T> {
    buf: VecDeque<T>,
    closed: bool,
}

impl<T> BatchQueue<T> {
    /// Create a queue holding at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        Self {
            state: Mutex::new(Inner {
                buf: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
        }
    }

    /// Enqueue `item`, blocking while the queue is full. Returns `Err` with
    /// the item if the queue has been closed.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut state = self.state.lock();
        loop {
            if state.closed {
                return Err(item);
            }
            if state.buf.len() < self.capacity {
                state.buf.push_back(item);
                drop(state);
                self.not_empty.notify_one();
                return Ok(());
            }
            state = self.not_full.wait(state);
        }
    }

    /// Enqueue without blocking; `Err` returns the item when the queue is
    /// full or closed.
    pub fn try_push(&self, item: T) -> Result<(), T> {
        let mut state = self.state.lock();
        if state.closed || state.buf.len() >= self.capacity {
            return Err(item);
        }
        state.buf.push_back(item);
        drop(state);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Move every queued entry into `out` (appended in FIFO order),
    /// blocking until at least one entry is available. Returns the number
    /// of entries moved — `0` only after [`BatchQueue::close`] once the
    /// queue has fully drained.
    pub fn drain_into(&self, out: &mut Vec<T>) -> usize {
        let mut state = self.state.lock();
        loop {
            if !state.buf.is_empty() {
                let n = state.buf.len();
                out.extend(state.buf.drain(..));
                drop(state);
                self.not_full.notify_all();
                return n;
            }
            if state.closed {
                return 0;
            }
            state = self.not_empty.wait(state);
        }
    }

    /// Dequeue a single entry without blocking.
    pub fn try_pop(&self) -> Option<T> {
        let mut state = self.state.lock();
        let item = state.buf.pop_front();
        if item.is_some() {
            drop(state);
            self.not_full.notify_all();
        }
        item
    }

    /// Close the queue: pending entries remain drainable, further pushes
    /// fail, and blocked consumers wake with whatever is left.
    pub fn close(&self) {
        self.state.lock().closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Current number of queued entries.
    pub fn len(&self) -> usize {
        self.state.lock().buf.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_roundtrip() {
        let q = BatchQueue::with_capacity(8);
        for i in 0..5 {
            q.push(i).unwrap();
        }
        let mut out = Vec::new();
        assert_eq!(q.drain_into(&mut out), 5);
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
        assert!(q.is_empty());
    }

    #[test]
    fn try_push_respects_capacity() {
        let q = BatchQueue::with_capacity(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert_eq!(q.try_push(3), Err(3));
        assert_eq!(q.try_pop(), Some(1));
        assert!(q.try_push(3).is_ok());
    }

    #[test]
    fn push_blocks_until_drained() {
        let q = Arc::new(BatchQueue::with_capacity(1));
        q.push(0u32).unwrap();
        let q2 = Arc::clone(&q);
        let producer = std::thread::spawn(move || q2.push(1).unwrap());
        // Give the producer a moment to block on the full queue.
        std::thread::sleep(std::time::Duration::from_millis(10));
        let mut out = Vec::new();
        q.drain_into(&mut out);
        producer.join().unwrap();
        out.clear();
        q.drain_into(&mut out);
        assert_eq!(out, vec![1]);
    }

    #[test]
    fn drain_blocks_until_pushed() {
        let q = Arc::new(BatchQueue::<u32>::with_capacity(4));
        let q2 = Arc::clone(&q);
        let consumer = std::thread::spawn(move || {
            let mut out = Vec::new();
            q2.drain_into(&mut out);
            out
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        q.push(7).unwrap();
        assert_eq!(consumer.join().unwrap(), vec![7]);
    }

    #[test]
    fn close_wakes_consumers_and_rejects_producers() {
        let q = Arc::new(BatchQueue::<u32>::with_capacity(4));
        let q2 = Arc::clone(&q);
        let consumer = std::thread::spawn(move || {
            let mut out = Vec::new();
            q2.drain_into(&mut out)
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        q.close();
        assert_eq!(consumer.join().unwrap(), 0);
        assert_eq!(q.push(1), Err(1));
    }

    #[test]
    fn close_leaves_backlog_drainable() {
        let q = BatchQueue::with_capacity(4);
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.close();
        let mut out = Vec::new();
        assert_eq!(q.drain_into(&mut out), 2);
        assert_eq!(q.drain_into(&mut out), 0);
    }
}
