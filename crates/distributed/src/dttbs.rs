//! D-T-TBS — distributed targeted-size time-biased sampling (§5.1).
//!
//! "Embarrassingly parallel, requiring no coordination": every worker
//! independently Bernoulli-downsamples its reservoir partition at rate
//! `p = e^{−λ}` and its local batch partition at rate `q`, then unions
//! them. A sum of independent `Binomial(n_j, p)` draws is exactly
//! `Binomial(Σn_j, p)`, so the distributed algorithm is distributionally
//! identical to single-node T-TBS — which the tests verify. One parallel
//! phase, no master work, no data over the network: this is why D-T-TBS is
//! the fastest bar in Figure 7 (and why it inherits T-TBS's breakdown when
//! the assumed mean batch size is wrong).

use crate::cluster::WorkerPool;
use crate::cost::{CostModel, CostTracker};
use crate::partition::Partitioned;
use rand::{RngCore, SeedableRng};
use tbs_core::traits::BatchSampler;
use tbs_core::util::retain_random;
use tbs_stats::binomial::binomial;
use tbs_stats::rng::Xoshiro256PlusPlus;

/// Configuration of a D-T-TBS instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DttbsConfig {
    /// Decay rate λ.
    pub lambda: f64,
    /// Target sample size n.
    pub target: usize,
    /// Assumed mean batch size b (must satisfy `b ≥ n(1 − e^{−λ})`).
    pub assumed_mean_batch: f64,
    /// Number of workers.
    pub workers: usize,
    /// Cluster cost constants.
    pub cost_model: CostModel,
    /// Run worker phases on real threads.
    pub threaded: bool,
}

impl DttbsConfig {
    /// Defaults mirroring §6.1.
    pub fn new(lambda: f64, target: usize, assumed_mean_batch: f64, workers: usize) -> Self {
        Self {
            lambda,
            target,
            assumed_mean_batch,
            workers,
            cost_model: CostModel::default(),
            threaded: false,
        }
    }
}

/// Distributed T-TBS instance (co-partitioned sample, distributed
/// decisions — the only configuration it needs).
pub struct DTTbs<T: Send + 'static> {
    cfg: DttbsConfig,
    /// Retention probability `p = e^{−λ}`.
    p: f64,
    /// Batch acceptance rate `q = n(1 − e^{−λ})/b`.
    q: f64,
    partitions: Vec<Vec<T>>,
    worker_rngs: Vec<Xoshiro256PlusPlus>,
    pool: WorkerPool,
    steps: u64,
    last_cost: CostTracker,
    cumulative_cost: CostTracker,
}

impl<T: Send + 'static> DTTbs<T> {
    /// Create an empty distributed T-TBS sampler.
    ///
    /// # Panics
    ///
    /// Panics if the feasibility condition `b ≥ n(1 − e^{−λ})` fails or the
    /// worker count is zero.
    pub fn new(cfg: DttbsConfig, seed: u64) -> Self {
        assert!(cfg.workers > 0, "need at least one worker");
        assert!(
            cfg.lambda.is_finite() && cfg.lambda >= 0.0,
            "decay rate must be finite and non-negative"
        );
        let p = (-cfg.lambda).exp();
        let min_b = cfg.target as f64 * (1.0 - p);
        assert!(
            cfg.assumed_mean_batch >= min_b,
            "mean batch size {} below feasibility bound {min_b}",
            cfg.assumed_mean_batch
        );
        let q = if cfg.assumed_mean_batch > 0.0 {
            (min_b / cfg.assumed_mean_batch).min(1.0)
        } else {
            1.0
        };
        let base = Xoshiro256PlusPlus::seed_from_u64(seed);
        Self {
            p,
            q,
            partitions: (0..cfg.workers).map(|_| Vec::new()).collect(),
            worker_rngs: base.split_streams(cfg.workers),
            pool: if cfg.threaded {
                WorkerPool::threaded()
            } else {
                WorkerPool::sequential()
            },
            cfg,
            steps: 0,
            last_cost: CostTracker::new(),
            cumulative_cost: CostTracker::new(),
        }
    }

    /// Current total sample size.
    pub fn len(&self) -> usize {
        self.partitions.iter().map(Vec::len).sum()
    }

    /// Whether the sample is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Batch acceptance probability q.
    pub fn batch_acceptance(&self) -> f64 {
        self.q
    }

    /// Simulated cost of the most recent batch.
    pub fn last_cost(&self) -> CostTracker {
        self.last_cost
    }

    /// Simulated cost accumulated over all batches.
    pub fn cumulative_cost(&self) -> CostTracker {
        self.cumulative_cost
    }

    /// Process one arriving batch, returning its simulated cost.
    pub fn observe_batch(&mut self, batch: Vec<T>) -> CostTracker {
        let model = self.cfg.cost_model;
        let mut cost = CostTracker::new();
        let k = self.cfg.workers;
        let batch = Partitioned::from_items(batch, k);

        // Single embarrassingly-parallel phase: each worker touches its
        // local sample partition and its local batch partition.
        let work: Vec<u64> = (0..k)
            .map(|j| (self.partitions[j].len() + batch.partition(j).len()) as u64)
            .collect();
        cost.parallel_phase(&model, &work);

        let p = self.p;
        let q = self.q;
        // Pair each worker's sample partition with its batch slice and RNG.
        let mut jobs: Vec<(Vec<T>, Vec<T>, Xoshiro256PlusPlus)> = Vec::with_capacity(k);
        let mut batch = batch;
        for j in (0..k).rev() {
            let local_batch = std::mem::take(batch.partition_mut(j));
            let local_sample = std::mem::take(&mut self.partitions[j]);
            let rng = std::mem::replace(
                &mut self.worker_rngs[j],
                Xoshiro256PlusPlus::seed_from_u64(0),
            );
            jobs.push((local_sample, local_batch, rng));
        }
        jobs.reverse();

        self.pool
            .run_over(&mut jobs, move |_, (sample, incoming, rng)| {
                // Decay survivors: Binomial(|S_j|, p) retained.
                let keep = binomial(rng, sample.len() as u64, p) as usize;
                retain_random(sample, keep, rng);
                // Down-sample the local batch at rate q.
                let accept = binomial(rng, incoming.len() as u64, q) as usize;
                retain_random(incoming, accept, rng);
                sample.append(incoming);
            });

        for (j, (sample, _, rng)) in jobs.into_iter().enumerate() {
            self.partitions[j] = sample;
            self.worker_rngs[j] = rng;
        }

        self.steps += 1;
        self.last_cost = cost;
        self.cumulative_cost.merge(&cost);
        cost
    }

    /// Collect the current sample (driver-side).
    pub fn collect(&self) -> Vec<T>
    where
        T: Clone,
    {
        self.partitions.iter().flatten().cloned().collect()
    }
}

impl<T: Clone + Send + 'static> BatchSampler<T> for DTTbs<T> {
    fn observe(&mut self, batch: Vec<T>, _rng: &mut dyn RngCore) {
        self.observe_batch(batch);
    }

    fn sample(&self, _rng: &mut dyn RngCore) -> Vec<T> {
        self.collect()
    }

    fn expected_size(&self) -> f64 {
        self.len() as f64
    }

    fn max_size(&self) -> Option<usize> {
        None
    }

    fn decay_rate(&self) -> f64 {
        self.cfg.lambda
    }

    fn batches_observed(&self) -> u64 {
        self.steps
    }

    fn name(&self) -> &'static str {
        "D-T-TBS (Dist,CP)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equilibrium_matches_single_node_ttbs() {
        // Time-averaged size converges to the target n, like T-TBS.
        let cfg = DttbsConfig::new(0.1, 1000, 100.0, 4);
        let mut d = DTTbs::new(cfg, 1);
        for t in 0..300u64 {
            d.observe_batch((0..100).map(|i| t * 100 + i).collect());
        }
        let mut acc = 0.0;
        let rounds = 400;
        for t in 0..rounds {
            d.observe_batch((0..100).map(|i| t * 100 + i).collect());
            acc += d.len() as f64;
        }
        let mean = acc / rounds as f64;
        assert!((mean / 1000.0 - 1.0).abs() < 0.05, "mean size {mean}");
    }

    #[test]
    fn single_phase_and_zero_network() {
        let cfg = DttbsConfig::new(0.1, 100, 50.0, 4);
        let mut d = DTTbs::new(cfg, 2);
        let cost = d.observe_batch((0..50u64).collect());
        assert_eq!(cost.phases, 1, "must be a single parallel phase");
        assert_eq!(cost.bytes_shipped, 0, "no data may cross the network");
        assert_eq!(cost.master_time, 0.0, "no master work");
    }

    #[test]
    fn faster_than_every_drtbs_strategy() {
        // Figure 7: the grey D-T-TBS bar is the lowest.
        use crate::drtbs::{DRTbs, DrtbsConfig, Strategy};
        let mut slowest_ttbs = 0.0f64;
        let cfg = DttbsConfig::new(0.07, 20_000, 10_000.0, 8);
        let mut d = DTTbs::new(cfg, 3);
        d.observe_batch((0..30_000u64).collect());
        for _ in 0..5 {
            slowest_ttbs = slowest_ttbs.max(d.observe_batch((0..10_000u64).collect()).elapsed);
        }
        for strategy in Strategy::all() {
            let rcfg = DrtbsConfig::new(0.07, 20_000, 8, strategy);
            let mut r = DRTbs::new(rcfg, 4);
            r.observe_batch((0..30_000u64).collect()).unwrap();
            let elapsed = r.observe_batch((0..10_000u64).collect()).unwrap().elapsed;
            assert!(
                elapsed > slowest_ttbs,
                "{strategy:?} ({elapsed:.4}s) should be slower than D-T-TBS \
                 ({slowest_ttbs:.4}s)"
            );
        }
    }

    #[test]
    fn threaded_equals_sequential_size_statistics() {
        // Same seeds → same per-worker RNG streams → identical samples
        // regardless of threading.
        let mut cfg = DttbsConfig::new(0.1, 200, 100.0, 4);
        let mut seq = DTTbs::new(cfg, 5);
        cfg.threaded = true;
        let mut par = DTTbs::new(cfg, 5);
        for t in 0..50u64 {
            let batch: Vec<u64> = (0..100).map(|i| t * 100 + i).collect();
            seq.observe_batch(batch.clone());
            par.observe_batch(batch);
        }
        let mut a = seq.collect();
        let mut b = par.collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "threading changed the sampling outcome");
    }

    #[test]
    fn overflow_under_growing_batches() {
        // Inherits T-TBS's Figure-1(a) breakdown.
        let cfg = DttbsConfig::new(0.05, 1000, 100.0, 4);
        let mut d = DTTbs::new(cfg, 6);
        for t in 0..200u64 {
            d.observe_batch((0..100).map(|i| t * 100 + i).collect());
        }
        let mut b = 100.0f64;
        for t in 0..800u64 {
            b *= 1.004;
            d.observe_batch((0..b.round() as u64).map(|i| t * 10_000 + i).collect());
        }
        assert!(d.len() > 1500, "expected overflow, got {}", d.len());
    }

    #[test]
    #[should_panic(expected = "feasibility")]
    fn rejects_infeasible_config() {
        DTTbs::<u64>::new(DttbsConfig::new(0.5, 1000, 10.0, 2), 1);
    }
}
