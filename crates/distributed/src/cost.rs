//! Cluster cost model (§6.1 substitution).
//!
//! The paper's runtime experiments (Figures 7–9) ran on a 13-node Spark
//! cluster with 1 Gbit Ethernet. We do not have that hardware, so per
//! DESIGN.md §4 the distributed algorithms run on real in-process workers
//! while a *discrete-event cost model* accounts for what the cluster would
//! spend:
//!
//! * network transfer — actual bytes shipped divided by bandwidth, plus a
//!   per-message latency;
//! * master work — slot-number generation and coordination, serial on the
//!   driver;
//! * worker work — per-item CPU, parallel (a phase costs the *maximum*
//!   across workers);
//! * per-round framework overhead (Spark job/stage launch);
//! * per-operation key-value-store overhead (Memcached RPC +
//!   concurrency control).
//!
//! The *relative* costs of the five implementations in Figure 7 come from
//! how many bytes cross the network and how much serial master work each
//! performs — exactly the quantities counted here — so orderings and
//! approximate ratios carry over even though absolute seconds do not.

/// Tunable cost constants (seconds / bytes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Per-message network latency (s) — includes RPC framing.
    pub net_latency_per_msg: f64,
    /// Network bandwidth (bytes/s) shared by the cluster fabric.
    pub net_bytes_per_sec: f64,
    /// Master-side cost to generate / map one slot number (s).
    pub master_per_slot: f64,
    /// Worker-side cost to touch one item (sample/copy/scan) (s).
    pub worker_per_item: f64,
    /// Worker-side cost to serialize + shuffle-write + read one item in a
    /// repartition join (s); dominates the RJ-vs-CJ gap of Figure 7.
    pub shuffle_per_item: f64,
    /// Fixed overhead per parallel phase (job/stage launch) (s).
    pub per_phase_overhead: f64,
    /// Amortized per-operation overhead of the key-value store (s) —
    /// pipelined Memcached RPC handling + the "needless concurrency
    /// control" of §5.2.
    pub kv_per_op: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        // Calibrated against the 1 GbE / 8-core-node testbed of §6.1:
        // 1 Gbit/s ≈ 1.25e8 B/s; ~100 µs RPC latency; ~150 ns per
        // in-memory item touch; ~10 µs per shuffled item (serialize +
        // write + read); ~20 ms per Spark stage launch; ~8 µs per
        // (pipelined) KV operation; ~1 µs per master-generated slot.
        // EXPERIMENTS.md records the Figure-7 ratios these constants give.
        Self {
            net_latency_per_msg: 100e-6,
            net_bytes_per_sec: 1.25e8,
            master_per_slot: 1e-6,
            worker_per_item: 150e-9,
            shuffle_per_item: 10e-6,
            per_phase_overhead: 20e-3,
            kv_per_op: 8e-6,
        }
    }
}

/// Accumulated simulated cost of one or more algorithm steps.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CostTracker {
    /// Simulated elapsed time (s).
    pub elapsed: f64,
    /// Total bytes shipped across the network.
    pub bytes_shipped: u64,
    /// Total network messages.
    pub messages: u64,
    /// Serial master time (s), included in `elapsed`.
    pub master_time: f64,
    /// Parallel worker time (s, sum of per-phase maxima), included in
    /// `elapsed`.
    pub worker_time: f64,
    /// Network time (s), included in `elapsed`.
    pub network_time: f64,
    /// Number of parallel phases executed.
    pub phases: u64,
}

impl CostTracker {
    /// Fresh tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Account serial master work over `ops` operations.
    pub fn master_ops(&mut self, model: &CostModel, ops: u64) {
        let t = ops as f64 * model.master_per_slot;
        self.master_time += t;
        self.elapsed += t;
    }

    /// Account a network transfer of `msgs` messages totalling `bytes`.
    pub fn network(&mut self, model: &CostModel, msgs: u64, bytes: u64) {
        let t = msgs as f64 * model.net_latency_per_msg + bytes as f64 / model.net_bytes_per_sec;
        self.network_time += t;
        self.bytes_shipped += bytes;
        self.messages += msgs;
        self.elapsed += t;
    }

    /// Account one parallel phase whose workers touch the given item
    /// counts; the phase costs the *maximum* worker time plus the fixed
    /// phase overhead.
    pub fn parallel_phase(&mut self, model: &CostModel, items_per_worker: &[u64]) {
        self.parallel_phase_at(model, items_per_worker, model.worker_per_item);
    }

    /// [`CostTracker::parallel_phase`] with a custom per-item cost (e.g.
    /// `shuffle_per_item` for a repartition join's map+reduce work).
    pub fn parallel_phase_at(
        &mut self,
        model: &CostModel,
        items_per_worker: &[u64],
        per_item: f64,
    ) {
        let max_items = items_per_worker.iter().copied().max().unwrap_or(0);
        let t = max_items as f64 * per_item + model.per_phase_overhead;
        self.worker_time += t;
        self.phases += 1;
        self.elapsed += t;
    }

    /// Account a bulk (pipelined) transfer: bandwidth cost only, no
    /// per-message latency — the regime of streamed KV operations and
    /// shuffle payloads.
    pub fn bulk(&mut self, model: &CostModel, bytes: u64) {
        let t = bytes as f64 / model.net_bytes_per_sec;
        self.network_time += t;
        self.bytes_shipped += bytes;
        self.elapsed += t;
    }

    /// Account `ops` key-value-store operations (they also ride the
    /// network; call [`CostTracker::network`] separately for the payload).
    pub fn kv_ops(&mut self, model: &CostModel, ops: u64) {
        let t = ops as f64 * model.kv_per_op;
        self.network_time += t;
        self.elapsed += t;
    }

    /// Merge another tracker (e.g. per-batch into per-run totals).
    pub fn merge(&mut self, other: &CostTracker) {
        self.elapsed += other.elapsed;
        self.bytes_shipped += other.bytes_shipped;
        self.messages += other.messages;
        self.master_time += other.master_time;
        self.worker_time += other.worker_time;
        self.network_time += other.network_time;
        self.phases += other.phases;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_model_is_sane() {
        let m = CostModel::default();
        assert!(m.net_bytes_per_sec > 1e7);
        assert!(m.net_latency_per_msg > 0.0);
        assert!(m.per_phase_overhead > m.kv_per_op);
    }

    #[test]
    fn master_ops_accumulate_serially() {
        let m = CostModel::default();
        let mut c = CostTracker::new();
        c.master_ops(&m, 1000);
        assert!((c.master_time - 1000.0 * m.master_per_slot).abs() < 1e-12);
        assert_eq!(c.elapsed, c.master_time);
    }

    #[test]
    fn network_counts_bytes_and_latency() {
        let m = CostModel::default();
        let mut c = CostTracker::new();
        c.network(&m, 10, 1_250_000);
        assert_eq!(c.bytes_shipped, 1_250_000);
        assert_eq!(c.messages, 10);
        let expect = 10.0 * m.net_latency_per_msg + 1_250_000.0 / m.net_bytes_per_sec;
        assert!((c.network_time - expect).abs() < 1e-12);
    }

    #[test]
    fn parallel_phase_costs_the_max_worker() {
        let m = CostModel::default();
        let mut c = CostTracker::new();
        c.parallel_phase(&m, &[100, 500, 300]);
        let expect = 500.0 * m.worker_per_item + m.per_phase_overhead;
        assert!((c.worker_time - expect).abs() < 1e-12);
        assert_eq!(c.phases, 1);
    }

    #[test]
    fn empty_phase_still_pays_overhead() {
        let m = CostModel::default();
        let mut c = CostTracker::new();
        c.parallel_phase(&m, &[]);
        assert!((c.worker_time - m.per_phase_overhead).abs() < 1e-15);
    }

    #[test]
    fn merge_sums_components() {
        let m = CostModel::default();
        let mut a = CostTracker::new();
        a.master_ops(&m, 10);
        let mut b = CostTracker::new();
        b.network(&m, 1, 100);
        let elapsed = a.elapsed + b.elapsed;
        a.merge(&b);
        assert!((a.elapsed - elapsed).abs() < 1e-15);
        assert_eq!(a.bytes_shipped, 100);
    }

    #[test]
    fn elapsed_is_sum_of_components() {
        let m = CostModel::default();
        let mut c = CostTracker::new();
        c.master_ops(&m, 5);
        c.network(&m, 2, 1000);
        c.parallel_phase(&m, &[10, 20]);
        c.kv_ops(&m, 3);
        let sum = c.master_time + c.network_time + c.worker_time;
        assert!((c.elapsed - sum).abs() < 1e-12);
    }
}
