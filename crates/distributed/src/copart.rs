//! Co-partitioned reservoir (§5.2, Figure 5(b)).
//!
//! The reservoir partitions coincide with the incoming-batch partitions:
//! items from batch partition `j` are only ever inserted into reservoir
//! partition `j`, and deletes are handled locally, so **no data items cross
//! the network** — only small control messages (slot locations or
//! per-worker counts). This is the in-place-updatable-RDD design of Xie et
//! al. that gives the 2.6× speedup in Figure 7.

use crate::cost::{CostModel, CostTracker};
use crate::partition::{Location, Partitioned};
use rand::Rng;
use tbs_core::util::draw_without_replacement;

/// Reservoir stored as worker-local partitions aligned with the batch.
#[derive(Debug, Clone)]
pub struct CoPartitionedReservoir<T> {
    parts: Partitioned<T>,
}

impl<T> CoPartitionedReservoir<T> {
    /// Empty reservoir over `workers` partitions.
    pub fn new(workers: usize) -> Self {
        Self {
            parts: Partitioned::empty(workers),
        }
    }

    /// Number of worker partitions.
    pub fn num_partitions(&self) -> usize {
        self.parts.num_partitions()
    }

    /// Total stored items.
    pub fn len(&self) -> usize {
        self.parts.len()
    }

    /// Whether the reservoir is empty.
    pub fn is_empty(&self) -> bool {
        self.parts.is_empty()
    }

    /// Per-partition sizes (the master reads these via tiny messages —
    /// accounted by the caller).
    pub fn sizes(&self) -> Vec<usize> {
        self.parts.sizes()
    }

    /// Local inserts: items already resident on worker `j` append to
    /// reservoir partition `j`. Zero network cost; the parallel append
    /// phase is accounted by the caller.
    ///
    /// # Panics
    ///
    /// Panics if `per_worker` does not have exactly one vector per
    /// partition — a master/worker protocol violation, not a data error.
    pub fn insert_local(&mut self, per_worker: Vec<Vec<T>>) {
        assert_eq!(
            per_worker.len(),
            self.parts.num_partitions(),
            "per-worker insert vector mismatch"
        );
        for (j, items) in per_worker.into_iter().enumerate() {
            self.parts.partition_mut(j).extend(items);
        }
    }

    /// Centralized deletes: the master picked global victim slots; map to
    /// locations and remove locally. Returns the removed items and the
    /// per-partition delete counts (the caller charges the parallel apply
    /// phase, usually folded together with the co-located inserts).
    pub fn delete_slots<R: Rng + ?Sized>(
        &mut self,
        m: usize,
        rng: &mut R,
        model: &CostModel,
        cost: &mut CostTracker,
    ) -> (Vec<T>, Vec<u64>) {
        // Master generates m distinct victim slots…
        cost.master_ops(model, m as u64);
        let locations: Vec<Location> = self.parts.choose_locations(m, rng);
        // …and ships the co-partitioned location set R (16 B per entry).
        cost.network(
            model,
            self.parts.num_partitions() as u64,
            16 * locations.len() as u64,
        );
        let mut per_worker = vec![0u64; self.parts.num_partitions()];
        for loc in &locations {
            per_worker[loc.partition] += 1;
        }
        (self.parts.remove_locations(&locations), per_worker)
    }

    /// Distributed deletes: the master only picked per-worker victim
    /// *counts*; each worker selects its own victims with its own RNG
    /// stream. Returns the removed items; the caller charges the apply
    /// phase.
    ///
    /// # Panics
    ///
    /// Panics if the count/RNG vectors are not one-per-partition, or a
    /// count exceeds what its partition stores — master/worker protocol
    /// violations, not data errors.
    pub fn delete_counts<R: Rng>(
        &mut self,
        counts: &[u64],
        worker_rngs: &mut [R],
        model: &CostModel,
        cost: &mut CostTracker,
    ) -> Vec<T> {
        assert_eq!(counts.len(), self.parts.num_partitions());
        assert_eq!(worker_rngs.len(), self.parts.num_partitions());
        // Master ships k tiny count messages.
        cost.network(model, counts.len() as u64, 8 * counts.len() as u64);
        let mut removed = Vec::new();
        for ((j, &m), rng) in counts.iter().enumerate().zip(worker_rngs.iter_mut()) {
            let part = self.parts.partition_mut(j);
            assert!(
                m as usize <= part.len(),
                "worker {j} asked to delete {m} of {}",
                part.len()
            );
            removed.extend(draw_without_replacement(part, m as usize, rng));
        }
        removed
    }

    /// Driver-side collect.
    pub fn collect(&self, model: &CostModel, cost: &mut CostTracker) -> Vec<T>
    where
        T: Clone,
    {
        // Collect ships every partition to the driver.
        cost.network(
            model,
            self.parts.num_partitions() as u64,
            (std::mem::size_of::<T>() * self.len()) as u64,
        );
        self.parts.collect()
    }

    /// Access the underlying partitions (for the worker pool).
    pub fn partitions_mut(&mut self) -> &mut [Vec<T>] {
        self.parts.partitions_mut()
    }

    /// Read one partition (checkpointing / inspection).
    pub fn partition(&self, j: usize) -> &[T] {
        self.parts.partition(j)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use tbs_stats::rng::Xoshiro256PlusPlus;

    #[test]
    fn insert_local_is_free_of_network() {
        let mut r: CoPartitionedReservoir<u64> = CoPartitionedReservoir::new(3);
        r.insert_local(vec![vec![1, 2], vec![3], vec![4, 5, 6]]);
        assert_eq!(r.len(), 6);
        assert_eq!(r.sizes(), vec![2, 1, 3]);
    }

    #[test]
    fn delete_slots_removes_exactly_m() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        let model = CostModel::default();
        let mut cost = CostTracker::new();
        let mut r: CoPartitionedReservoir<u64> = CoPartitionedReservoir::new(4);
        r.insert_local(vec![
            (0..25).collect(),
            (25..50).collect(),
            (50..75).collect(),
            (75..100).collect(),
        ]);
        let (removed, per_worker) = r.delete_slots(30, &mut rng, &model, &mut cost);
        assert_eq!(removed.len(), 30);
        assert_eq!(per_worker.iter().sum::<u64>(), 30);
        assert_eq!(r.len(), 70);
        // Only control bytes crossed the network (16 B per location).
        assert_eq!(cost.bytes_shipped, 16 * 30);
    }

    #[test]
    fn delete_counts_uses_worker_rngs() {
        let model = CostModel::default();
        let mut cost = CostTracker::new();
        let base = Xoshiro256PlusPlus::seed_from_u64(2);
        let mut rngs = base.split_streams(2);
        let mut r: CoPartitionedReservoir<u64> = CoPartitionedReservoir::new(2);
        r.insert_local(vec![(0..10).collect(), (10..20).collect()]);
        let removed = r.delete_counts(&[3, 5], &mut rngs, &model, &mut cost);
        assert_eq!(removed.len(), 8);
        assert_eq!(r.sizes(), vec![7, 5]);
        // Control messages only: 8 bytes per worker count.
        assert_eq!(cost.bytes_shipped, 16);
    }

    #[test]
    #[should_panic(expected = "asked to delete")]
    fn delete_counts_rejects_overdraw() {
        let model = CostModel::default();
        let mut cost = CostTracker::new();
        let base = Xoshiro256PlusPlus::seed_from_u64(3);
        let mut rngs = base.split_streams(2);
        let mut r: CoPartitionedReservoir<u64> = CoPartitionedReservoir::new(2);
        r.insert_local(vec![vec![1], vec![2]]);
        r.delete_counts(&[2, 0], &mut rngs, &model, &mut cost);
    }

    #[test]
    fn collect_gathers_everything() {
        let model = CostModel::default();
        let mut cost = CostTracker::new();
        let mut r: CoPartitionedReservoir<u64> = CoPartitionedReservoir::new(2);
        r.insert_local(vec![vec![1, 2], vec![3]]);
        let mut all = r.collect(&model, &mut cost);
        all.sort_unstable();
        assert_eq!(all, vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn insert_local_checks_worker_count() {
        let mut r: CoPartitionedReservoir<u64> = CoPartitionedReservoir::new(2);
        r.insert_local(vec![vec![1]]);
    }
}
