//! Multi-core sharded ingest engine: persistent worker pipeline over
//! mergeable sampler shards.
//!
//! Where [`crate::drtbs`] *simulates* a distributed cluster (with a cost
//! model standing in for the network), this module is the real thing at
//! single-machine scale: **N long-lived shard threads**, each serving a
//! monomorphized sampler ([`tbs_core::merge::MergeableSample`]) and a
//! jump-ahead RNG substream, fed through bounded blocking queues
//! ([`crate::queue::BatchQueue`]) by a driver thread. This is the paper's
//! `Dist,CP` insight (§5: distributed decisions over co-partitioned data
//! need no per-item coordination) applied to cores instead of cluster
//! nodes: ingest runs with **zero cross-shard coordination**, and shard
//! states are only merged — exactly, via the weight algebra of
//! [`tbs_core::merge`] — when a sample is requested.
//!
//! ## Pipeline anatomy
//!
//! ```text
//!              ┌────────────┐  work: BatchQueue<ShardMsg>  ┌─────────────┐
//!  ingest() ──▶│  driver:   │ ───────────────────────────▶ │ shard cell 0│
//!              │ balanced   │ ◀─────────────────────────── │ Mutex<R-TBS │
//!              │   split    │  recycle: BatchQueue<Vec<T>> │  + own RNG> │
//!              └────────────┘            …× N              └─────────────┘
//!                                                  ▲ any idle worker may
//!                                                  │ lock a cell & serve it
//! ```
//!
//! * Batches are split deterministically by a
//!   [`tbs_core::merge::BalancedSplitter`]: every shard's decayed weight
//!   stays within **one item** of `W/K`, which licenses the `⌈n/K⌉ + 1`
//!   adaptive shard capacity (see the `tbs_core::merge` module docs) and
//!   keeps high-K shards on the saturated fast path.
//! * **Work stealing**: a shard's sampler lives in a `Mutex`ed cell, not
//!   in thread-local state. Each worker serves its own cell first, then
//!   sweeps the other cells and drains any backlog it can lock. Because a
//!   cell's queue is only drained *while holding the cell's lock*, every
//!   logical shard still consumes its sub-stream in FIFO order with its
//!   own sampler and RNG — so the realized sample is **bit-identical**
//!   whether or not any stealing happened; only the thread that happened
//!   to do the work differs. Determinism keys off the logical chunk
//!   assignment, never off thread timing.
//! * Consumed batch buffers flow back to the driver through a recycle
//!   queue, so steady-state ingest performs **zero heap allocations**
//!   beyond the caller-provided batch (verified by the engine's
//!   counting-allocator test).
//! * Workers are spawned **once** at construction — no per-batch thread
//!   spawn anywhere.
//!
//! ## Serving without stopping: snapshot barrier + merge tree
//!
//! `sample()` and `request_snapshot()` both route through the same
//! epoch-snapshot protocol:
//!
//! ```text
//!  request_snapshot() ──▶ Barrier(e) ──▶ shard k: fork_for_merge() ─┐
//!        │                (FIFO, so the fork lands exactly at the    │
//!        │                 batch boundary of the request)            ▼
//!        └── Request{e, driver-RNG state} ─────────────▶ ┌───────────────┐
//!                                                        │ merger thread │
//!             leaf tasks: BatchQueue<(tree, leaf)> ◀──── │  builds the   │
//!                 │ executed by idle shard workers       │  EpochTree    │
//!                 ▼ (or the merger itself)               └───────────────┘
//!          cooperative log-depth merge tree ──▶ Publish ──▶ EpochCell
//! ```
//!
//! The merger does **not** fold the K forks itself. It precomputes the
//! merge's global scalars, derives every tree node's RNG substream from
//! the recorded driver position (the [`tbs_core::merge::merge_replay`]
//! contract: node randomness is a pure function of `(entry RNG state,
//! node id)`), and enqueues K leaf tasks. Idle shard workers pick the
//! tasks up between ingest drains; whoever finishes the second child of
//! a node immediately merges that pair and climbs, so the `⌈log₂K⌉`-depth
//! tree completes cooperatively with no barrier and no dedicated merge
//! thread doing O(K) serial work. The root finisher realizes the sample
//! and sends it back; the merger publishes epochs strictly in order.
//!
//! [`ParallelIngestEngine::request_snapshot`] consumes **no** driver
//! randomness, and the published [`FrozenSample`] is **bit-identical** to
//! a driver-side [`ParallelIngestEngine::snapshot_merged`] + realization
//! from the same RNG position (the engine-snapshot tests pin this down),
//! while ingest never stops: shards pause only for the `O(n_k)` state
//! fork.
//!
//! ## Choosing a shard count
//!
//! With the balanced split and the `⌈n/K⌉ + 1` adaptive capacity, a shard
//! stays on R-TBS's cheap saturated transition whenever
//! `b/(K(1−e^{−λ})) ≥ n/K + 2` — i.e. per-shard equilibrium weight
//! exceeds per-shard capacity, with only a constant (not
//! decay-geometric) headroom term. The old "8-shard cliff" — per-shard
//! `⌈1/(1−e^{−λ})⌉` headroom growing relative to `⌈n/K⌉` until high-K
//! shards fell off the saturated path — is gone; scale K to the core
//! count while the whole-stream equilibrium `b/(1−e^{−λ})` comfortably
//! exceeds `n + 2K`. The committed `BENCH_scaling.json` quantifies both
//! regimes.

use crate::fault::{FaultPlan, PushAction};
use crate::queue::BatchQueue;
use crate::snapshot::{EpochCell, EpochWait};
use parking_lot::Mutex;
use rand::SeedableRng;
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use tbs_core::frozen::FrozenSample;
use tbs_core::merge::{BalancedSplitter, MergePlan, MergeScalars, MergeableSample, ShardSpec};
use tbs_stats::rng::Xoshiro256PlusPlus;

/// What the engine should do when part of its pipeline dies (a shard
/// worker or the merger panics, or a chunk delivery fails).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecoveryPolicy {
    /// Transition to [`EngineHealth::Failed`]: close every queue (so
    /// nothing blocks forever), surface the cause as an [`EngineError`]
    /// from this and every subsequent call. The default — zero steady-
    /// state overhead.
    #[default]
    Fail,
    /// Supervised recovery: each shard's state is recorded at every
    /// barrier/checkpoint fork, the driver keeps a replay log of the
    /// chunks it split since then, and on a fault the engine rebuilds the
    /// whole pipeline from the fork records and replays the log —
    /// restoring **bit-identical** `(seed, K)` state, because splits and
    /// per-shard RNG substreams are deterministic. Costs one state clone
    /// per shard per barrier plus one chunk clone per shard per batch;
    /// the replay log is trimmed at each barrier/checkpoint, so publish
    /// or checkpoint periodically to bound its memory.
    RespawnFromBarrier,
}

/// Typed pipeline-failure causes, surfaced instead of panics.
///
/// With [`RecoveryPolicy::Fail`] the first of these transitions the
/// engine to [`EngineHealth::Failed`] and is returned (cloned) by every
/// later call. With [`RecoveryPolicy::RespawnFromBarrier`] they are
/// handled internally unless recovery itself is impossible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A shard worker thread is gone (its panic guard closed its
    /// queues), or a push to it failed.
    ShardDead {
        /// The shard whose queue failed.
        shard: usize,
    },
    /// The merger thread is gone; snapshots can no longer publish.
    MergerDead,
    /// A chunk delivery to a shard queue was dropped (fault-injected
    /// lost push): the shard's state no longer matches the stream.
    ChunkDropped {
        /// Destination shard of the lost chunk.
        shard: usize,
        /// 1-based global batch number of the lost chunk.
        batch: u64,
    },
    /// A requested epoch can no longer publish (the publisher closed the
    /// cell before reaching it).
    SnapshotLost {
        /// The epoch that was abandoned.
        epoch: u64,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::ShardDead { shard } => {
                write!(f, "shard worker {shard} terminated")
            }
            EngineError::MergerDead => write!(f, "merger thread terminated"),
            EngineError::ChunkDropped { shard, batch } => {
                write!(f, "chunk delivery to shard {shard} lost at batch {batch}")
            }
            EngineError::SnapshotLost { epoch } => {
                write!(f, "snapshot epoch {epoch} abandoned by a dying pipeline")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// Supervision state of the engine, read with
/// [`ParallelIngestEngine::health`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineHealth {
    /// No fault has ever been observed.
    Healthy,
    /// The engine recovered from at least one fault. Sampler state is
    /// exact (recovery is bit-identical), but epochs that were in flight
    /// at a fault may have been re-issued under the same numbers.
    Degraded {
        /// Number of supervised recoveries performed.
        recoveries: u64,
    },
    /// The engine is terminally failed: every queue is closed, every
    /// call returns the recorded cause.
    Failed(EngineError),
}

/// Configuration of a [`ParallelIngestEngine`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// The single-node sampler the merged output must be equivalent to,
    /// plus the shard count.
    pub spec: ShardSpec,
    /// Bounded depth of each shard's work queue, in batches. Deeper queues
    /// smooth bursty producers; shallower ones bound in-flight memory.
    pub queue_depth: usize,
    /// Master seed; the driver and every shard derive non-overlapping
    /// jump-ahead substreams from it.
    pub seed: u64,
    /// What to do when a worker/merger dies mid-stream.
    pub recovery: RecoveryPolicy,
}

impl EngineConfig {
    /// An engine config with the default queue depth (64 batches) and
    /// [`RecoveryPolicy::Fail`].
    pub fn new(spec: ShardSpec, seed: u64) -> Self {
        Self {
            spec,
            queue_depth: 64,
            seed,
            recovery: RecoveryPolicy::Fail,
        }
    }

    /// This config with `recovery` set.
    pub fn recovery(mut self, recovery: RecoveryPolicy) -> Self {
        self.recovery = recovery;
        self
    }
}

/// Steady-state ingest counters for one shard, read with
/// [`ParallelIngestEngine::shard_stats`].
///
/// Counters are charged to the **logical shard** whose sub-stream was
/// processed, regardless of which worker thread did the processing — a
/// stolen drain shows up in the victim shard's `busy_ns`, so the scaling
/// bench's per-shard busy fractions describe where the stream's work
/// went, not which OS thread ran it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardStats {
    /// Items ingested by this shard.
    pub items: u64,
    /// Sub-batches processed by this shard.
    pub batches: u64,
    /// Nanoseconds spent inside `observe` calls (excludes queue waits —
    /// this is the shard's *busy* time, the basis of the scaling bench's
    /// aggregate-capacity metric).
    pub busy_ns: u64,
}

#[derive(Debug, Default)]
struct ShardCounters {
    items: AtomicU64,
    batches: AtomicU64,
    busy_ns: AtomicU64,
}

enum ShardMsg<T> {
    /// One sub-batch to ingest (possibly empty — empty batches still
    /// advance the shard's decay clock).
    Batch(Vec<T>),
    /// Reply with a clone of the shard sampler plus the shard RNG's
    /// current 256-bit position (quiesces: FIFO order guarantees all
    /// prior batches are absorbed first).
    Snapshot,
    /// Reply with an ack once everything queued ahead has been processed.
    Sync,
    /// Epoch-snapshot barrier: fork the shard state off to the merger
    /// thread (no driver round-trip — the shard keeps ingesting).
    Barrier(u64),
    /// Checkpoint barrier: clone `(sampler, RNG state)` off to the merger,
    /// which assembles generation `gen` once every shard reports. Like
    /// `Barrier`, FIFO placement pins the checkpoint to an exact batch
    /// boundary and the shard keeps ingesting.
    CheckpointFork { gen: u64 },
}

enum ShardResp<S> {
    Snapshot(Box<(S, [u64; 4])>),
    Ack,
}

/// Messages flowing into the background merger thread. FIFO causality
/// makes the per-epoch protocol race-free: the driver enqueues the
/// `Request` *before* any shard can see the matching `Barrier`, so the
/// merger always learns the replay RNG state before the forks arrive.
enum MergerMsg<S: MergeableSample> {
    /// Driver-side epoch header: the RNG position the merge must replay
    /// from (bit-identity with the exact path) and the batches-ingested
    /// staleness stamp for the published metadata.
    Request {
        epoch: u64,
        rng: [u64; 4],
        batches: u64,
    },
    /// One shard's forked state at the barrier.
    Fork {
        epoch: u64,
        shard: usize,
        state: Box<S>,
    },
    /// A completed epoch realized by whichever worker finished the merge
    /// tree's root; the merger re-orders these into in-order publication.
    Publish {
        frozen: Box<FrozenSample<<S as MergeableSample>::Item>>,
    },
    /// Driver-side checkpoint header: the driver state that, together
    /// with the K shard forks, forms a complete [`EngineCheckpoint`].
    /// Enqueued before the matching `CheckpointFork` barriers, so FIFO
    /// causality delivers it first, exactly like `Request`.
    CkptRequest {
        gen: u64,
        driver_rng: [u64; 4],
        deviations: Vec<f64>,
        batches: u64,
    },
    /// One shard's `(sampler, RNG state)` at checkpoint generation `gen`.
    CkptFork {
        gen: u64,
        shard: usize,
        state: Box<(S, [u64; 4])>,
    },
}

/// One epoch's merge tree, shared (via `Arc`) between the merger and the
/// shard workers that cooperatively execute it.
///
/// Every node's RNG substream state is precomputed from the driver RNG
/// position recorded at request time, following the exact
/// [`tbs_core::merge::merge_replay`] substream contract — so the
/// cooperative execution is bit-identical to the sequential reference no
/// matter which threads run which nodes in which order.
struct EpochTree<S: MergeableSample> {
    epoch: u64,
    /// Batches-ingested staleness stamp for the published metadata.
    batches: u64,
    plan: MergePlan,
    scalars: MergeScalars,
    /// Per-node RNG substream states (`node_rngs[n]` = substream `n+1` of
    /// the recorded driver position, matching `merge_replay`).
    node_rngs: Vec<[u64; 4]>,
    /// The post-`long_jump` trajectory realization draws ride.
    realize_rng: [u64; 4],
    /// One slot per tree node; leaves are pre-loaded with the shard forks.
    slots: Vec<Mutex<Option<S>>>,
    /// Arrival counters for internal nodes (index = node − K): the second
    /// child to arrive merges the pair and climbs.
    pending: Vec<AtomicUsize>,
}

/// A leaf-execution task: run `tree` starting from leaf `usize`.
type TreeTask<S> = (Arc<EpochTree<S>>, usize);

/// One logical shard's serving state: the sampler + RNG behind a lock so
/// any worker can serve it, plus its queues and counters.
struct ShardCell<S: MergeableSample> {
    core: Mutex<ShardCore<S>>,
    work: BatchQueue<ShardMsg<S::Item>>,
    resp: BatchQueue<ShardResp<S>>,
    recycle: BatchQueue<Vec<S::Item>>,
    counters: ShardCounters,
}

struct ShardCore<S> {
    sampler: S,
    rng: Xoshiro256PlusPlus,
    /// Data batches this logical shard has processed (== the driver's
    /// `batches_ingested` once the shard catches up, since every ingest
    /// sends one chunk to every shard). Positions fault-injection sites
    /// and stamps recovery fork records.
    seen: u64,
}

/// One shard's resumable state, recorded at every barrier/checkpoint fork
/// (and once at spawn). Under [`RecoveryPolicy::RespawnFromBarrier`] the
/// driver rebuilds a dead pipeline from these plus its replay log.
struct ForkRecord<S> {
    /// The shard's `seen` batch count at the fork.
    batches: u64,
    sampler: S,
    rng: [u64; 4],
}

/// Everything the worker and merger threads share.
struct EngineShared<S: MergeableSample> {
    cells: Vec<ShardCell<S>>,
    /// Merge-tree leaf tasks, executed by idle workers (or the merger).
    tasks: BatchQueue<TreeTask<S>>,
    /// The merger thread's inbox.
    merger: BatchQueue<MergerMsg<S>>,
    spec: ShardSpec,
    /// Per-worker queue depth (drained groups are bounded by this).
    depth: usize,
    /// Per-shard recovery fork records; `Some` iff the policy is
    /// [`RecoveryPolicy::RespawnFromBarrier`].
    recovery: Option<Vec<Mutex<Option<ForkRecord<S>>>>>,
    /// Completed checkpoint generations, oldest evicted on overflow.
    /// Shared by `Arc` so completed generations survive a pipeline
    /// rebuild (the queue outlives any one `EngineShared`).
    ckpts_done: Arc<BatchQueue<(u64, EngineCheckpoint<S>)>>,
    /// Injected-fault schedule; `None` (a single predictable branch per
    /// drained batch group — nothing per item) everywhere outside the
    /// fault-matrix tests.
    faults: Option<Arc<FaultPlan>>,
}

/// The complete durable state of a quiesced [`ParallelIngestEngine`]:
/// every shard's sampler and RNG position, the driver's RNG position, and
/// the balanced splitter's deviation state. Feeding it back through
/// [`ParallelIngestEngine::from_parts`] (same spec, shard count, and
/// queue depth) resumes the stream **bit-identically** to an
/// uninterrupted run — the engine-determinism tests pin this down.
#[derive(Debug, Clone)]
pub struct EngineCheckpoint<S> {
    /// Per-cell `(sampler, RNG state)`, in cell-id order — one entry per
    /// logical shard cell (`ShardSpec::cells()`, == the shard count
    /// unless grouping is active).
    pub shard_states: Vec<(S, [u64; 4])>,
    /// The driver's merge/realization RNG position.
    pub driver_rng: [u64; 4],
    /// The balanced splitter's per-cell deviation state `D_k`, in
    /// cell-id order (all zeros for a fresh engine).
    pub split_deviations: Vec<f64>,
    /// Batches ingested so far — the staleness stamp future snapshot
    /// publications continue from.
    pub batches: u64,
}

/// A sharded, multi-threaded ingest front-end over any
/// [`MergeableSample`] sampler (R-TBS, T-TBS).
///
/// See the [module docs](self) for the pipeline anatomy. The engine is
/// deterministic: the realized sample is a pure function of
/// `(seed, shard count, batch sequence)` — work stealing and merge-tree
/// scheduling change which threads do the work, never the result.
pub struct ParallelIngestEngine<S: MergeableSample + Clone + Send + 'static>
where
    S::Item: Send + Sync + 'static,
{
    shared: Arc<EngineShared<S>>,
    worker_joins: Vec<Option<JoinHandle<()>>>,
    merger_join: Option<JoinHandle<()>>,
    /// Epoch-publication cell shared with every reader handle.
    cell: Arc<EpochCell<S::Item>>,
    /// Epoch assigned to the next snapshot request (first epoch is 1).
    next_epoch: u64,
    /// Batches fed through [`ParallelIngestEngine::ingest`] — the
    /// staleness stamp carried by published snapshots.
    batches_ingested: u64,
    /// The deviation-balanced deterministic batch splitter.
    splitter: BalancedSplitter,
    /// Largest per-shard chunk seen so far. Recycled split buffers are
    /// reserved up to this before filling, so every circulating buffer
    /// converges to the high-water capacity after one population cycle —
    /// making steady-state ingest deterministically allocation-free
    /// instead of "once every buffer has happened to carry a big chunk".
    chunk_high_water: usize,
    /// Driver-side substream: merge randomization + sample realization.
    driver_rng: Xoshiro256PlusPlus,
    /// Per-shard split buffers, refilled from the recycle queues.
    split: Vec<Vec<S::Item>>,
    /// Responses are popped into this scratch vector (capacity 1).
    resp_scratch: Vec<ShardResp<S>>,
    /// The config the pipeline was built from (recovery respawns reuse it).
    cfg: EngineConfig,
    /// Terminal failure, recorded once; every later call returns a clone.
    failure: Option<EngineError>,
    /// Supervised recoveries performed so far.
    recoveries: u64,
    /// Generation assigned to the next checkpoint request (first is 1).
    next_ckpt_gen: u64,
    /// Per-shard replay log `(global batch_no, chunk)` since the last
    /// fork record; only filled under `RespawnFromBarrier`.
    replay: Vec<VecDeque<(u64, Vec<S::Item>)>>,
}

impl<S: MergeableSample + Clone + Send + 'static> ParallelIngestEngine<S>
where
    S::Item: Clone + Send + Sync + 'static,
{
    /// Spawn the shard worker threads and return the ready engine.
    pub fn new(cfg: EngineConfig) -> Self {
        Self::build(cfg, None)
    }

    /// An engine with an injected-fault schedule installed — the entry
    /// point of the fault-matrix suite. Production code never installs a
    /// plan; see [`crate::fault`].
    pub fn with_fault_plan(cfg: EngineConfig, plan: Arc<FaultPlan>) -> Self {
        Self::build(cfg, Some(plan))
    }

    fn build(cfg: EngineConfig, faults: Option<Arc<FaultPlan>>) -> Self {
        // Everything stream-visible — RNG substreams, the balanced split,
        // the samplers — is sized by the logical *cell* count, which is
        // the shard count unless shard grouping (`ShardSpec::cells`)
        // collapses small reservoirs. Worker threads stay at `shards`.
        let mut substreams =
            Xoshiro256PlusPlus::seed_from_u64(cfg.seed).split_streams(cfg.spec.cells() + 1);
        let driver_rng = substreams.remove(0);
        let shard_samplers = S::make_shards(&cfg.spec);
        let splitter = BalancedSplitter::new(cfg.spec.lambda, cfg.spec.cells());
        Self::spawn(
            cfg,
            shard_samplers,
            substreams,
            driver_rng,
            splitter,
            0,
            faults,
        )
    }

    /// Rebuild an engine from a quiesced checkpoint (see
    /// [`ParallelIngestEngine::save_parts`]). The config must describe the
    /// same sharding the checkpoint was taken under; `cfg.seed` is ignored
    /// — every RNG resumes from its checkpointed position.
    ///
    /// # Panics
    ///
    /// Panics if the checkpoint's shard count disagrees with `cfg.spec`.
    pub fn from_parts(cfg: EngineConfig, parts: EngineCheckpoint<S>) -> Self {
        assert_eq!(
            parts.shard_states.len(),
            cfg.spec.cells(),
            "checkpoint has {} shard cells, config wants {}",
            parts.shard_states.len(),
            cfg.spec.cells()
        );
        assert_eq!(
            parts.split_deviations.len(),
            cfg.spec.cells(),
            "checkpoint carries {} split deviations for {} shard cells",
            parts.split_deviations.len(),
            cfg.spec.cells()
        );
        let mut samplers = Vec::with_capacity(parts.shard_states.len());
        let mut rngs = Vec::with_capacity(parts.shard_states.len());
        for (sampler, state) in parts.shard_states {
            samplers.push(sampler);
            rngs.push(Xoshiro256PlusPlus::from_state(state));
        }
        let driver_rng = Xoshiro256PlusPlus::from_state(parts.driver_rng);
        let splitter = BalancedSplitter::from_deviations(cfg.spec.lambda, parts.split_deviations);
        Self::spawn(
            cfg,
            samplers,
            rngs,
            driver_rng,
            splitter,
            parts.batches,
            None,
        )
    }

    fn spawn(
        cfg: EngineConfig,
        shard_samplers: Vec<S>,
        substreams: Vec<Xoshiro256PlusPlus>,
        driver_rng: Xoshiro256PlusPlus,
        splitter: BalancedSplitter,
        batches0: u64,
        faults: Option<Arc<FaultPlan>>,
    ) -> Self {
        let cell = Arc::new(EpochCell::new());
        // Completed checkpoints outlive any one pipeline incarnation (a
        // recovery respawn hands the same queue to the new merger), so
        // generations assembled before a fault stay claimable after it.
        let ckpts_done = Arc::new(BatchQueue::with_capacity(4));
        let (shared, worker_joins, merger_join) = spawn_pipeline(
            &cfg,
            shard_samplers,
            substreams,
            batches0,
            faults,
            ckpts_done,
            &cell,
        );
        Self {
            split: (0..cfg.spec.cells()).map(|_| Vec::new()).collect(),
            replay: (0..cfg.spec.cells()).map(|_| VecDeque::new()).collect(),
            shared,
            worker_joins,
            merger_join,
            cell,
            next_epoch: 1,
            batches_ingested: batches0,
            splitter,
            chunk_high_water: 0,
            driver_rng,
            resp_scratch: Vec::with_capacity(1),
            cfg,
            failure: None,
            recoveries: 0,
            next_ckpt_gen: 1,
        }
    }

    /// The configured shard count K (the spec's declared parallelism;
    /// the engine spawns `min(K, G)` = [`Self::cells`] worker threads,
    /// since at most one drain per cell can run at a time).
    pub fn shards(&self) -> usize {
        self.cfg.spec.shards
    }

    /// The logical shard cell count G ≤ K — equal to `shards()` unless
    /// shard grouping ([`ShardSpec::cells`]) collapsed small reservoirs,
    /// in which case the declared K shards share the G cells through the
    /// lock-before-drain protocol.
    pub fn cells(&self) -> usize {
        self.shared.cells.len()
    }

    /// The single-node-equivalent spec this engine maintains.
    pub fn spec(&self) -> &ShardSpec {
        &self.shared.spec
    }

    /// Feed one arriving batch. The batch is split deterministically
    /// across the shard queues by the balanced splitter (blocking only
    /// when a queue is full — backpressure, not data loss); empty batches
    /// are delivered too, since every shard's decay clock must advance.
    ///
    /// If the pipeline died, returns the typed cause under
    /// [`RecoveryPolicy::Fail`]; under
    /// [`RecoveryPolicy::RespawnFromBarrier`] the engine rebuilds itself
    /// (absorbing this batch via the replay log) and returns `Ok`.
    pub fn ingest(&mut self, mut batch: Vec<S::Item>) -> Result<(), EngineError> {
        self.check_alive()?;
        self.batches_ingested += 1;
        let batch_no = self.batches_ingested;
        if self.shared.cells.len() == 1 {
            // Single shard: hand the caller's buffer over untouched (the
            // splitter state stays identically zero for K = 1).
            if self.shared.recovery.is_some() {
                self.replay[0].push_back((batch_no, batch.clone()));
            }
            return self.deliver(0, batch_no, batch).map(|_| ());
        }
        let cells = &self.shared.cells;
        self.chunk_high_water = self.chunk_high_water.max(batch.len().div_ceil(cells.len()));
        for (slot, cell) in self.split.iter_mut().zip(cells) {
            *slot = cell.recycle.try_pop().unwrap_or_default();
            slot.reserve(self.chunk_high_water);
        }
        self.splitter.split(&mut batch, &mut self.split);
        if self.shared.recovery.is_some() {
            for (k, slot) in self.split.iter().enumerate() {
                self.replay[k].push_back((batch_no, slot.clone()));
            }
        }
        for k in 0..self.shared.cells.len() {
            let chunk = std::mem::take(&mut self.split[k]);
            if self.deliver(k, batch_no, chunk)? {
                // A recovery replayed the whole batch from the log; the
                // chunks not yet pushed are already absorbed.
                return Ok(());
            }
        }
        Ok(())
    }

    /// Push one chunk to one shard, applying any injected fault. Returns
    /// whether a supervised recovery ran (meaning the caller's remaining
    /// chunks of this batch were absorbed via the replay log).
    fn deliver(
        &mut self,
        shard: usize,
        batch_no: u64,
        chunk: Vec<S::Item>,
    ) -> Result<bool, EngineError> {
        let action = match &self.shared.faults {
            Some(plan) => plan.push_action(shard, batch_no),
            None => PushAction::Deliver,
        };
        match action {
            PushAction::Drop => {
                // The enqueue was "lost": the shard's state no longer
                // matches its stream. Surfaced exactly like a dead shard —
                // fail typed, or restore from fork + replay (the log holds
                // the lost chunk).
                drop(chunk);
                self.incident(EngineError::ChunkDropped {
                    shard,
                    batch: batch_no,
                })?;
                Ok(true)
            }
            PushAction::Delay(stall) => {
                std::thread::sleep(stall);
                self.push_chunk(shard, chunk)
            }
            PushAction::Deliver => self.push_chunk(shard, chunk),
        }
    }

    fn push_chunk(&mut self, shard: usize, chunk: Vec<S::Item>) -> Result<bool, EngineError> {
        if self.shared.cells[shard]
            .work
            .push(ShardMsg::Batch(chunk))
            .is_err()
        {
            self.incident(EngineError::ShardDead { shard })?;
            return Ok(true);
        }
        Ok(false)
    }

    /// Block until every shard has absorbed everything queued so far.
    pub fn quiesce(&mut self) -> Result<(), EngineError> {
        self.check_alive()?;
        loop {
            match self.try_sync() {
                Ok(()) => return Ok(()),
                Err(cause) => self.incident(cause)?,
            }
        }
    }

    fn try_sync(&mut self) -> Result<(), EngineError> {
        for (i, cell) in self.shared.cells.iter().enumerate() {
            if cell.work.push(ShardMsg::Sync).is_err() {
                return Err(EngineError::ShardDead { shard: i });
            }
        }
        for (i, cell) in self.shared.cells.iter().enumerate() {
            match pop_resp(i, cell, &mut self.resp_scratch)? {
                ShardResp::Ack => {}
                // INVARIANT: the driver runs one request protocol at a
                // time, so a Sync can only be answered by an Ack.
                ShardResp::Snapshot(_) => unreachable!("sync acked with a snapshot payload"),
            }
        }
        Ok(())
    }

    /// Quiesce and clone out every shard's `(sampler, RNG state)`, in
    /// shard-id order (shards keep running; their live state is
    /// untouched).
    fn try_snapshot_shards(&mut self) -> Result<Vec<(S, [u64; 4])>, EngineError> {
        for (i, cell) in self.shared.cells.iter().enumerate() {
            if cell.work.push(ShardMsg::Snapshot).is_err() {
                return Err(EngineError::ShardDead { shard: i });
            }
        }
        let mut snapshots = Vec::with_capacity(self.shared.cells.len());
        for (i, cell) in self.shared.cells.iter().enumerate() {
            match pop_resp(i, cell, &mut self.resp_scratch)? {
                ShardResp::Snapshot(s) => snapshots.push(*s),
                // INVARIANT: one request protocol at a time (see try_sync).
                ShardResp::Ack => unreachable!("snapshot request acked without payload"),
            }
        }
        Ok(snapshots)
    }

    fn snapshot_shards(&mut self) -> Result<Vec<(S, [u64; 4])>, EngineError> {
        self.check_alive()?;
        loop {
            match self.try_snapshot_shards() {
                Ok(snaps) => return Ok(snaps),
                Err(cause) => self.incident(cause)?,
            }
        }
    }

    /// Quiesce, snapshot every shard, and merge the snapshots into a
    /// single-node-equivalent sampler (shards keep running; their live
    /// state is untouched). The merge runs the canonical
    /// [`tbs_core::merge::merge_replay`] tree on the driver thread.
    pub fn snapshot_merged(&mut self) -> Result<S, EngineError> {
        let snapshots = self
            .snapshot_shards()?
            .into_iter()
            .map(|(sampler, _)| sampler)
            .collect();
        Ok(S::merge_shards(
            snapshots,
            &self.shared.spec,
            &mut self.driver_rng,
        ))
    }

    /// Quiesce and capture the engine's complete durable state: every
    /// shard's sampler and RNG position, the driver RNG position, and the
    /// balanced splitter's deviations. Unlike
    /// [`ParallelIngestEngine::sample`], this consumes **no** randomness,
    /// so checkpointing mid-stream leaves the trajectory untouched;
    /// [`ParallelIngestEngine::from_parts`] resumes bit-identically.
    pub fn save_parts(&mut self) -> Result<EngineCheckpoint<S>, EngineError> {
        Ok(EngineCheckpoint {
            shard_states: self.snapshot_shards()?,
            driver_rng: self.driver_rng.state(),
            split_deviations: self.splitter.deviations().to_vec(),
            batches: self.batches_ingested,
        })
    }

    /// Request an asynchronous checkpoint at the current batch boundary
    /// and return its generation number, **without stopping ingest**.
    ///
    /// Like [`ParallelIngestEngine::request_snapshot`], this rides the
    /// barrier machinery: each shard clones its `(sampler, RNG)` exactly
    /// at this boundary and keeps ingesting; the merger assembles the
    /// parts into an [`EngineCheckpoint`] claimable via
    /// [`ParallelIngestEngine::try_take_checkpoint`]. Consumes **no**
    /// driver randomness, and the assembled checkpoint is byte-identical
    /// to what a synchronous [`ParallelIngestEngine::save_parts`] at the
    /// same boundary would return. At most 4 completed generations are
    /// retained; the oldest unclaimed one is evicted.
    pub fn request_checkpoint(&mut self) -> Result<u64, EngineError> {
        self.check_alive()?;
        loop {
            let gen = self.next_ckpt_gen;
            let mut cause = None;
            // Header before barriers: FIFO causality, exactly like the
            // snapshot protocol.
            if self
                .shared
                .merger
                .push(MergerMsg::CkptRequest {
                    gen,
                    driver_rng: self.driver_rng.state(),
                    deviations: self.splitter.deviations().to_vec(),
                    batches: self.batches_ingested,
                })
                .is_err()
            {
                cause = Some(EngineError::MergerDead);
            }
            if cause.is_none() {
                for (i, cell) in self.shared.cells.iter().enumerate() {
                    if cell.work.push(ShardMsg::CheckpointFork { gen }).is_err() {
                        cause = Some(EngineError::ShardDead { shard: i });
                        break;
                    }
                }
            }
            match cause {
                None => {
                    self.next_ckpt_gen += 1;
                    self.trim_replay();
                    return Ok(gen);
                }
                // After a recovery the generation is re-requested on the
                // fresh pipeline — shard state is restored bit-identical,
                // so the checkpoint is too.
                Some(cause) => self.incident(cause)?,
            }
        }
    }

    /// Claim a completed asynchronous checkpoint, oldest first, without
    /// blocking. Returns `(generation, checkpoint)`.
    pub fn try_take_checkpoint(&mut self) -> Option<(u64, EngineCheckpoint<S>)> {
        self.shared.ckpts_done.try_pop()
    }

    /// Claim a completed asynchronous checkpoint, waiting up to `timeout`
    /// for one to assemble. `Ok(None)` means none completed within the
    /// deadline — including when a fault was detected and recovered
    /// mid-wait, in which case any in-flight generation died with the old
    /// pipeline and must be re-requested.
    pub fn wait_checkpoint(
        &mut self,
        timeout: Duration,
    ) -> Result<Option<(u64, EngineCheckpoint<S>)>, EngineError> {
        self.check_alive()?;
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(got) = self.shared.ckpts_done.try_pop() {
                return Ok(Some(got));
            }
            if let Some(cause) = self.detect_dead() {
                self.incident(cause)?;
                return Ok(None);
            }
            let now = Instant::now();
            if now >= deadline {
                return Ok(None);
            }
            let wait = (deadline - now).min(Duration::from_millis(5));
            self.shared.ckpts_done.wait_nonempty(wait);
        }
    }

    /// Request publication of an epoch snapshot and return its epoch
    /// number, **without stopping ingest or blocking on the result**.
    ///
    /// A barrier marker is enqueued after everything ingested so far, so
    /// the snapshot reflects exactly the batches fed before this call.
    /// Each shard forks its state at the barrier (an `O(n_k)` copy) and
    /// keeps ingesting; the merger derives the epoch's merge tree from
    /// the recorded driver RNG position and idle shard workers execute it
    /// cooperatively (see the module docs), publishing an
    /// `Arc<FrozenSample>` into the engine's [`EpochCell`].
    ///
    /// Consumes **no** driver randomness: the tree replays the merge +
    /// realization from the driver RNG's current *position*, so the
    /// published sample is bit-identical to what a driver-side
    /// [`ParallelIngestEngine::snapshot_merged`] + realization would have
    /// produced here, and the engine's own trajectory is untouched (like
    /// [`ParallelIngestEngine::save_parts`]).
    ///
    /// The only blocking is backpressure: if a queue is full the push
    /// waits, exactly as `ingest` does.
    ///
    /// If part of the pipeline has died (a panic guard closes its
    /// queues), the barrier cannot reach every shard and the epoch could
    /// never complete: under [`RecoveryPolicy::Fail`] the engine fails
    /// typed (the dead pipeline's closers have already closed the cell,
    /// so `wait_for_epoch` callers observe publisher death instead of
    /// blocking forever; published epochs stay readable); under
    /// [`RecoveryPolicy::RespawnFromBarrier`] the pipeline is rebuilt and
    /// the request re-issued on it.
    pub fn request_snapshot(&mut self) -> Result<u64, EngineError> {
        self.check_alive()?;
        let pos = self.driver_rng.state();
        self.request_snapshot_at(pos)
    }

    /// Issue a snapshot request replaying merge randomness from driver
    /// position `pos`, retrying on a fresh pipeline after any recovered
    /// fault. Factored out so [`ParallelIngestEngine::sample`] can re-
    /// request a faulted epoch from its original pre-`long_jump` position
    /// — keeping the retried merge bit-identical to a fault-free run.
    fn request_snapshot_at(&mut self, pos: [u64; 4]) -> Result<u64, EngineError> {
        loop {
            let epoch = self.next_epoch;
            let mut cause = None;
            // Request before barriers: FIFO causality guarantees the
            // merger sees the epoch header before any fork for it.
            if self
                .shared
                .merger
                .push(MergerMsg::Request {
                    epoch,
                    rng: pos,
                    batches: self.batches_ingested,
                })
                .is_err()
            {
                cause = Some(EngineError::MergerDead);
            }
            if cause.is_none() {
                for (i, cell) in self.shared.cells.iter().enumerate() {
                    if cell.work.push(ShardMsg::Barrier(epoch)).is_err() {
                        cause = Some(EngineError::ShardDead { shard: i });
                        break;
                    }
                }
            }
            match cause {
                None => {
                    self.next_epoch += 1;
                    self.trim_replay();
                    return Ok(epoch);
                }
                Some(cause) => self.incident(cause)?,
            }
        }
    }

    /// The epoch-publication cell snapshots are served through. Clone the
    /// `Arc` into as many reader threads as you like; readers never touch
    /// the ingest path's queues or locks.
    pub fn snapshot_cell(&self) -> Arc<EpochCell<S::Item>> {
        Arc::clone(&self.cell)
    }

    /// Highest epoch published so far (0 until the first
    /// [`ParallelIngestEngine::request_snapshot`] completes).
    pub fn published_epoch(&self) -> u64 {
        self.cell.published_epoch()
    }

    /// Highest epoch requested so far (0 if none). The gap to
    /// [`ParallelIngestEngine::published_epoch`] is the number of
    /// snapshots still in flight.
    pub fn requested_epoch(&self) -> u64 {
        self.next_epoch - 1
    }

    /// Batches fed through [`ParallelIngestEngine::ingest`] so far.
    pub fn batches_ingested(&self) -> u64 {
        self.batches_ingested
    }

    /// Merge and realize the unified sample **on the shard threads**:
    /// request an epoch snapshot, advance the driver past the merge's
    /// RNG-substream block (one `long_jump`, the `merge_replay`
    /// contract), and wait for the cooperative merge tree to publish.
    ///
    /// The driver thread does O(1) work here — the `⌈log₂K⌉`-depth merge
    /// and the realization run on the shard workers, overlapping any
    /// still-queued ingest.
    ///
    /// The wait is supervised: it polls in short slices and checks the
    /// pipeline's pulse on each timeout, so a death anywhere surfaces as
    /// a typed error (or a supervised recovery + bit-identical re-merge
    /// from the *same* RNG position) in bounded time — never a hang.
    pub fn sample(&mut self) -> Result<Vec<S::Item>, EngineError> {
        self.check_alive()?;
        let pos = self.driver_rng.state();
        let mut epoch = self.request_snapshot_at(pos)?;
        self.driver_rng.long_jump();
        loop {
            match self
                .cell
                .wait_for_epoch_timeout(epoch, Duration::from_millis(25))
            {
                EpochWait::Published(frozen) => return Ok(frozen.items().to_vec()),
                EpochWait::PublisherGone => {
                    self.incident(EngineError::SnapshotLost { epoch })?;
                    epoch = self.request_snapshot_at(pos)?;
                }
                EpochWait::TimedOut => {
                    if let Some(cause) = self.detect_dead() {
                        self.incident(cause)?;
                        epoch = self.request_snapshot_at(pos)?;
                    }
                    // Otherwise the pipeline is alive and merging — a
                    // slow epoch is legitimate; keep waiting.
                }
            }
        }
    }

    /// Per-shard ingest counters (items, batches, busy nanoseconds).
    /// Exact after a [`ParallelIngestEngine::quiesce`]; otherwise a
    /// point-in-time reading. Work-stolen batches are charged to the
    /// logical shard that owns them, not the thread that ran them.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.shared
            .cells
            .iter()
            .map(|c| ShardStats {
                items: c.counters.items.load(Ordering::Relaxed),
                batches: c.counters.batches.load(Ordering::Relaxed),
                busy_ns: c.counters.busy_ns.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// Current supervision state (see [`EngineHealth`]).
    pub fn health(&self) -> EngineHealth {
        match &self.failure {
            Some(cause) => EngineHealth::Failed(cause.clone()),
            None if self.recoveries > 0 => EngineHealth::Degraded {
                recoveries: self.recoveries,
            },
            None => EngineHealth::Healthy,
        }
    }

    /// Number of supervised recoveries performed so far. Consumers with
    /// work in flight across the pipeline (asynchronous checkpoints) can
    /// compare readings to learn that the pipeline was rebuilt under
    /// them.
    pub fn recoveries(&self) -> u64 {
        self.recoveries
    }

    fn check_alive(&self) -> Result<(), EngineError> {
        match &self.failure {
            Some(cause) => Err(cause.clone()),
            None => Ok(()),
        }
    }

    /// Pulse check: a closed queue means its owner's panic guard ran.
    fn detect_dead(&self) -> Option<EngineError> {
        if self.shared.merger.is_closed() {
            return Some(EngineError::MergerDead);
        }
        for (i, cell) in self.shared.cells.iter().enumerate() {
            if cell.work.is_closed() {
                return Some(EngineError::ShardDead { shard: i });
            }
        }
        None
    }

    /// Funnel for every detected fault: recover under
    /// [`RecoveryPolicy::RespawnFromBarrier`] (returning `Ok` so the
    /// caller retries on the fresh pipeline), otherwise record the cause,
    /// tear the pipeline down, and return it.
    fn incident(&mut self, cause: EngineError) -> Result<(), EngineError> {
        if self.shared.recovery.is_some() {
            self.recover_from();
            Ok(())
        } else {
            self.fail_now(cause.clone());
            Err(cause)
        }
    }

    /// Transition to [`EngineHealth::Failed`]: close everything so no
    /// thread (ours or a reader's) can block on the dead pipeline, join
    /// what remains, record the cause.
    fn fail_now(&mut self, cause: EngineError) {
        self.failure = Some(cause);
        self.shutdown_pipeline();
        // The merger's closer already closed the cell on its way out;
        // repeat for the case where the merger was long gone.
        self.cell.close();
    }

    /// Stop-the-world: close every work queue, join the workers, close
    /// and join the merger. Join panics are swallowed — by the time we
    /// are here the death has already been converted to a typed cause.
    fn shutdown_pipeline(&mut self) {
        for cell in &self.shared.cells {
            cell.work.close();
        }
        for join in &mut self.worker_joins {
            if let Some(join) = join.take() {
                let _ = join.join();
            }
        }
        self.shared.merger.close();
        self.shared.tasks.close();
        if let Some(join) = self.merger_join.take() {
            let _ = join.join();
        }
    }

    /// Supervised recovery: tear the pipeline down, restore every shard
    /// from its last fork record plus the driver's replay log (splits and
    /// RNG substreams are deterministic, so the restored state is
    /// **bit-identical** to the pre-fault stream), and respawn fresh
    /// threads over the same epoch cell.
    fn recover_from(&mut self) {
        self.shutdown_pipeline();
        let mut samplers = Vec::with_capacity(self.shared.cells.len());
        let mut rngs = Vec::with_capacity(self.shared.cells.len());
        {
            // INVARIANT: `incident` only routes here when recovery slots
            // exist, and a record is installed in every slot before the
            // workers spawn — workers replace records, never remove them.
            let slots = self
                .shared
                .recovery
                .as_ref()
                .expect("recovery slots exist under RespawnFromBarrier");
            for (i, slot) in slots.iter().enumerate() {
                let record = slot
                    .lock()
                    .take()
                    .expect("fork record installed before spawn");
                let mut sampler = record.sampler;
                let mut rng = Xoshiro256PlusPlus::from_state(record.rng);
                for (batch_no, chunk) in &self.replay[i] {
                    if *batch_no > record.batches {
                        let mut buf = chunk.clone();
                        sampler.observe_shard(&mut buf, &mut rng);
                    }
                }
                samplers.push(sampler);
                rngs.push(rng);
            }
        }
        // Same cell: reader handles cloned before the fault stay valid.
        // The dead merger's closer closed it (waking stranded waiters
        // with `PublisherGone`); re-arm it for the new incarnation.
        self.cell.reopen();
        let (shared, worker_joins, merger_join) = spawn_pipeline(
            &self.cfg,
            samplers,
            rngs,
            self.batches_ingested,
            self.shared.faults.clone(),
            Arc::clone(&self.shared.ckpts_done),
            &self.cell,
        );
        self.shared = shared;
        self.worker_joins = worker_joins;
        self.merger_join = merger_join;
        // Epoch numbers that were in flight at the fault are re-issued:
        // the merger publishes from published+1, and `wait_for_epoch`'s
        // `>= epoch` contract hands a re-issued publication to anyone
        // still waiting on a lost number.
        self.next_epoch = self.cell.published_epoch() + 1;
        for log in &mut self.replay {
            log.clear();
        }
        self.recoveries += 1;
    }

    /// Drop replay-log entries already covered by the shards' latest fork
    /// records. Called after each barrier/checkpoint issuance; `try_lock`
    /// only — a stale record just means trimming less now and more later.
    fn trim_replay(&mut self) {
        let Some(slots) = &self.shared.recovery else {
            return;
        };
        for (log, slot) in self.replay.iter_mut().zip(slots) {
            if let Some(guard) = slot.try_lock() {
                if let Some(record) = guard.as_ref() {
                    while log.front().is_some_and(|(no, _)| *no <= record.batches) {
                        log.pop_front();
                    }
                }
            }
        }
    }
}

/// Blocking single-response pop from a shard's response queue.
///
/// A closed-and-empty response queue means the worker terminated (its
/// panic guard closes the queue on unwind); surface that as a typed
/// error instead of blocking forever.
fn pop_resp<S: MergeableSample>(
    shard: usize,
    cell: &ShardCell<S>,
    scratch: &mut Vec<ShardResp<S>>,
) -> Result<ShardResp<S>, EngineError> {
    scratch.clear();
    if cell.resp.drain_into(scratch) == 1 {
        // INVARIANT: the driver runs one request protocol at a time, so a
        // successful drain yields exactly the one matching response.
        Ok(scratch.pop().expect("drained response present"))
    } else {
        Err(EngineError::ShardDead { shard })
    }
}

impl<S: MergeableSample + Clone + Send + 'static> Drop for ParallelIngestEngine<S>
where
    S::Item: Send + Sync + 'static,
{
    fn drop(&mut self) {
        // Closing the work queues lets each worker drain the backlog and
        // exit; join re-raises genuine worker panics.
        for cell in &self.shared.cells {
            cell.work.close();
        }
        let failure_recorded = self.failure.is_some();
        for join in &mut self.worker_joins {
            if let Some(join) = join.take() {
                if let Err(payload) = join.join() {
                    reraise(failure_recorded, payload);
                }
            }
        }
        // Shards first, merger second: a draining shard backlog may still
        // push barrier forks or tree completions, which the merger must
        // be alive to absorb. After the close the merger self-executes
        // any leaf tasks the (now joined) workers left behind, publishes
        // whatever epochs completed, closes the cell (waking any
        // wait_for_epoch blockers), and exits.
        self.shared.merger.close();
        if let Some(join) = self.merger_join.take() {
            if let Err(payload) = join.join() {
                reraise(failure_recorded, payload);
            }
        }
    }
}

/// Decide what to do with a panic payload collected while joining a
/// pipeline thread at drop. A death the supervisor already converted to a
/// typed error — or one the fault harness injected on purpose — is not a
/// bug to re-report; anything else propagates (unless we are already
/// unwinding, where a second panic would abort the process).
fn reraise(failure_recorded: bool, payload: Box<dyn std::any::Any + Send>) {
    if failure_recorded || crate::fault::is_injected_panic(payload.as_ref()) {
        return;
    }
    if !std::thread::panicking() {
        std::panic::resume_unwind(payload);
    }
}

/// Build the shared state and spawn the merger + G shard worker threads
/// over an existing epoch cell. Used both at construction and by
/// supervised recovery respawns — which reuse the cell, so reader handles
/// cloned before a fault stay valid across it.
#[allow(clippy::type_complexity)]
fn spawn_pipeline<S: MergeableSample + Clone + Send + 'static>(
    cfg: &EngineConfig,
    shard_samplers: Vec<S>,
    substreams: Vec<Xoshiro256PlusPlus>,
    batches0: u64,
    faults: Option<Arc<FaultPlan>>,
    ckpts_done: Arc<BatchQueue<(u64, EngineCheckpoint<S>)>>,
    cell: &Arc<EpochCell<S::Item>>,
) -> (
    Arc<EngineShared<S>>,
    Vec<Option<JoinHandle<()>>>,
    Option<JoinHandle<()>>,
)
where
    S::Item: Send + Sync + 'static,
{
    let spec = cfg.spec;
    let depth = cfg.queue_depth.max(1);
    let recovery = match cfg.recovery {
        RecoveryPolicy::RespawnFromBarrier => Some(
            shard_samplers
                .iter()
                .zip(&substreams)
                .map(|(sampler, rng)| {
                    Mutex::new(Some(ForkRecord {
                        batches: batches0,
                        sampler: sampler.clone(),
                        rng: rng.state(),
                    }))
                })
                .collect(),
        ),
        RecoveryPolicy::Fail => None,
    };
    // One cell per incoming sampler: `make_shards`/`from_parts` sized the
    // vector by `spec.cells()`, the logical shard count the stream is
    // split across (== `spec.shards` unless grouping is active).
    let cell_count = shard_samplers.len();
    debug_assert_eq!(cell_count, spec.cells(), "sampler count must match cells");
    // Room for a few epochs in flight (each is 1 request + G forks +
    // 1 publish); beyond that the snapshot path exerts backpressure on
    // whoever requests faster than the pipeline can merge.
    let merger: BatchQueue<MergerMsg<S>> = BatchQueue::with_capacity(4 * (cell_count + 2));
    // Leaf tasks for a few epochs; dispatch never blocks on this
    // queue (overflow executes inline on the merger).
    let tasks: BatchQueue<TreeTask<S>> = BatchQueue::with_capacity(4 * cell_count + 4);
    let cells: Vec<ShardCell<S>> = shard_samplers
        .into_iter()
        .zip(substreams)
        .map(|(sampler, rng)| {
            // The recycle queue is created at its full buffer
            // population, 2·depth + 2: at most depth buffers sit in
            // the work queue, at most depth in the (unique, lock-
            // holding) processor's unflushed done-list, and one in
            // the driver — so at least one is always available, the
            // driver's try_pop never misses, the processor's try_push
            // never drops a warm buffer, and steady-state ingest
            // never calls the allocator for a buffer (the counting-
            // allocator test pins this down).
            let population = 2 * depth + 2;
            let recycle = BatchQueue::with_capacity(population);
            for _ in 0..population {
                let _ = recycle.try_push(Vec::new());
            }
            ShardCell {
                core: Mutex::new(ShardCore {
                    sampler,
                    rng,
                    seen: batches0,
                }),
                work: BatchQueue::with_capacity(depth),
                resp: BatchQueue::with_capacity(2),
                recycle,
                counters: ShardCounters::default(),
            }
        })
        .collect();
    let shared = Arc::new(EngineShared {
        cells,
        tasks,
        merger,
        spec,
        depth,
        recovery,
        ckpts_done,
        faults,
    });
    // In-order publication continues wherever the cell left off — a
    // recovery respawn must not restart the epoch sequence at 1.
    let start_pub = cell.published_epoch() + 1;
    // INVARIANT: thread spawn fails only on OS resource exhaustion
    // (thread limit, out of memory) — an environment failure at
    // construction/recovery time, not a runtime fault the supervisor
    // could meaningfully absorb. Aborting construction is the contract.
    let merger_join = std::thread::Builder::new()
        .name("tbs-merger".into())
        .spawn({
            let shared = Arc::clone(&shared);
            let cell = Arc::clone(cell);
            move || merger_worker(&shared, &cell, start_pub)
        })
        .expect("spawn merger worker");
    // One worker thread per reservoir cell, `min(K, G)` in total. A
    // cell's queue drains only under the cell's lock, so at most G
    // drains ever run concurrently — threads beyond the cell count
    // could never add throughput, only scheduler pressure (and, on
    // small hosts, busy-span inflation through mid-span preemption).
    // With grouping active the declared K shard threads therefore
    // collapse onto G primary owners; any worker still drains *every*
    // cell it can lock through the same lock-before-drain protocol work
    // stealing uses, so the realized sample cannot depend on which
    // owner did the work.
    let worker_joins = (0..cell_count)
        .map(|i| {
            let shared = Arc::clone(&shared);
            Some(
                std::thread::Builder::new()
                    .name(format!("tbs-shard-{i}"))
                    .spawn(move || shard_worker(i, &shared))
                    .expect("spawn shard worker"),
            )
        })
        .collect();
    (shared, worker_joins, Some(merger_join))
}

/// Process one drained group of messages for the logical shard `cell`,
/// whose core lock the caller holds. This is the only place shard state
/// advances, and it always runs under the cell's lock after draining the
/// cell's queue under that same lock — which is exactly what keeps a
/// stolen drain FIFO-consistent with the owner's.
///
/// Recycled buffers are pushed into `done`; the caller hands them back
/// to the cell's recycle queue *after* releasing the core lock.
fn process_shard_msgs<S: MergeableSample + Clone>(
    shard_id: usize,
    core: &mut ShardCore<S>,
    cell: &ShardCell<S>,
    shared: &EngineShared<S>,
    msgs: &mut Vec<ShardMsg<S::Item>>,
    done: &mut Vec<Vec<S::Item>>,
) {
    let merger = &shared.merger;
    let counters = &cell.counters;
    let mut items = 0u64;
    let mut batches = 0u64;
    let mut busy = 0u64;
    // One timed span per contiguous run of batches: with a fast producer
    // the drain delivers work in large groups, so the two clock reads
    // amortize to nothing per batch.
    let mut span: Option<Instant> = None;
    let close_span = |span: &mut Option<Instant>, busy: &mut u64| {
        if let Some(t) = span.take() {
            *busy += t.elapsed().as_nanos() as u64;
        }
    };
    // Counters must be flushed *before* any Sync/Snapshot response is
    // sent: the driver reads them right after the ack, and the "exact
    // after quiesce" contract holds only if everything processed ahead
    // of the ack is already visible.
    let flush = |items: &mut u64, batches: &mut u64, busy: &mut u64| {
        counters.items.fetch_add(*items, Ordering::Relaxed);
        counters.batches.fetch_add(*batches, Ordering::Relaxed);
        counters.busy_ns.fetch_add(*busy, Ordering::Relaxed);
        (*items, *batches, *busy) = (0, 0, 0);
    };
    for msg in msgs.drain(..) {
        match msg {
            ShardMsg::Batch(mut buf) => {
                if let Some(plan) = &shared.faults {
                    // Injection site: "the worker processing logical
                    // shard `shard_id`'s `seen`-th batch". Keyed to the
                    // shard's deterministic stream position, not the
                    // (timing-dependent) thread identity.
                    plan.fire_kill_worker(shard_id, core.seen);
                }
                core.seen += 1;
                if span.is_none() {
                    span = Some(Instant::now());
                }
                items += buf.len() as u64;
                core.sampler.observe_shard(&mut buf, &mut core.rng);
                buf.clear();
                done.push(buf);
                batches += 1;
            }
            ShardMsg::Snapshot => {
                close_span(&mut span, &mut busy);
                flush(&mut items, &mut batches, &mut busy);
                let _ = cell.resp.push(ShardResp::Snapshot(Box::new((
                    core.sampler.clone(),
                    core.rng.state(),
                ))));
            }
            ShardMsg::Barrier(epoch) => {
                // The fork is charged to the busy span: it is real
                // per-shard pipeline work, and the serving benchmark's
                // ingest-capacity gate must see the snapshot overhead.
                if span.is_none() {
                    span = Some(Instant::now());
                }
                let _ = merger.push(MergerMsg::Fork {
                    epoch,
                    shard: shard_id,
                    state: Box::new(core.sampler.fork_for_merge()),
                });
                // Refresh the recovery fork record at the same boundary:
                // barriers double as recovery points, bounding the
                // driver's replay log at the publication cadence.
                if let Some(slots) = &shared.recovery {
                    *slots[shard_id].lock() = Some(ForkRecord {
                        batches: core.seen,
                        sampler: core.sampler.clone(),
                        rng: core.rng.state(),
                    });
                }
            }
            ShardMsg::CheckpointFork { gen } => {
                if span.is_none() {
                    span = Some(Instant::now());
                }
                let state = (core.sampler.clone(), core.rng.state());
                if let Some(slots) = &shared.recovery {
                    *slots[shard_id].lock() = Some(ForkRecord {
                        batches: core.seen,
                        sampler: state.0.clone(),
                        rng: state.1,
                    });
                }
                let _ = merger.push(MergerMsg::CkptFork {
                    gen,
                    shard: shard_id,
                    state: Box::new(state),
                });
            }
            ShardMsg::Sync => {
                close_span(&mut span, &mut busy);
                flush(&mut items, &mut batches, &mut busy);
                let _ = cell.resp.push(ShardResp::Ack);
            }
        }
    }
    close_span(&mut span, &mut busy);
    flush(&mut items, &mut batches, &mut busy);
}

/// Execute one leaf of an epoch's merge tree and climb as far as
/// completed pairs allow. Returns the realized [`FrozenSample`] iff this
/// call finished the **root** (exactly one call per tree does).
///
/// Every node draws from its own precomputed RNG substream, so the
/// result is a pure function of the tree — not of which thread runs
/// this, or in what order siblings complete.
fn run_tree_task<S: MergeableSample>(
    tree: &EpochTree<S>,
    leaf: usize,
    spec: &ShardSpec,
) -> Option<FrozenSample<S::Item>> {
    let k = tree.plan.leaves();
    // INVARIANT: every leaf slot is filled at tree construction and each
    // leaf task is dispatched exactly once (queued, or executed inline by
    // the merger when the task queue is full — never both), so the first
    // and only execution finds its shard state present.
    let shard = tree.slots[leaf]
        .lock()
        .take()
        .expect("merge-tree leaf executed twice");
    let target = tree.scalars.leaf_targets.get(leaf).copied().unwrap_or(0.0);
    let mut rng = Xoshiro256PlusPlus::from_state(tree.node_rngs[leaf]);
    let mut node = leaf;
    let mut value = S::merge_leaf(shard, target, &mut rng);
    loop {
        let Some(parent) = tree.plan.parent(node) else {
            // Root complete: stamp the global scalars and realize on the
            // post-long_jump trajectory, exactly as the sequential
            // merge_replay + realize_into path would.
            let root = S::merge_finalize(value, &tree.scalars, spec);
            let mut rng = Xoshiro256PlusPlus::from_state(tree.realize_rng);
            let mut items = Vec::new();
            root.realize_into(&mut rng, &mut items);
            return Some(FrozenSample::new(
                tree.epoch,
                tree.batches,
                root.total_stream_weight(),
                root.expected_size(),
                items,
            ));
        };
        *tree.slots[node].lock() = Some(value);
        if tree.pending[parent - k].fetch_add(1, Ordering::AcqRel) == 0 {
            // First child to arrive: the sibling's finisher will merge.
            return None;
        }
        let (l, r) = tree.plan.pairs()[parent - k];
        // INVARIANT: the second child to bump `pending` merges the pair,
        // and each child stored its value *before* bumping — so by the
        // time this branch runs, both slots are filled.
        let left = tree.slots[l].lock().take().expect("left child ready");
        let right = tree.slots[r].lock().take().expect("right child ready");
        let mut rng = Xoshiro256PlusPlus::from_state(tree.node_rngs[parent]);
        value = S::merge_pair(left, right, spec, &mut rng);
        node = parent;
    }
}

/// The long-lived shard worker: serve the own cell's queue, then sweep
/// the other cells for stealable backlog, then help execute merge-tree
/// leaf tasks, then briefly wait for own work.
fn shard_worker<S: MergeableSample + Clone>(shard_id: usize, shared: &EngineShared<S>) {
    let k = shared.cells.len();
    let my = &shared.cells[shard_id];
    // If the worker unwinds (a sampler panic), close its driver-facing
    // queues: a driver blocked in pop_resp fails fast ("shard worker
    // terminated"), and one blocked on a full work queue in ingest()
    // wakes with a push error instead of waiting forever on a consumer
    // that no longer exists. On normal exit the engine is being dropped
    // and the closes are harmless.
    struct PanicCloser<'a, S: MergeableSample> {
        work: &'a BatchQueue<ShardMsg<S::Item>>,
        resp: &'a BatchQueue<ShardResp<S>>,
    }
    impl<S: MergeableSample> Drop for PanicCloser<'_, S> {
        fn drop(&mut self) {
            self.work.close();
            self.resp.close();
        }
    }
    let _closer = PanicCloser::<S> {
        work: &my.work,
        resp: &my.resp,
    };
    // Armed while this worker processes messages *stolen* from another
    // shard's cell; disarmed (forgotten) on success. See the steal sweep
    // below for why the victim's queues must close if the thief unwinds.
    struct StolenMsgsGuard<'a, S: MergeableSample> {
        victim: &'a ShardCell<S>,
    }
    impl<S: MergeableSample> Drop for StolenMsgsGuard<'_, S> {
        fn drop(&mut self) {
            self.victim.work.close();
            self.victim.resp.close();
        }
    }

    // A drained group holds at most `depth` messages (every work queue's
    // bound), so sizing the local buffers up front makes the loop
    // allocation-free from the first batch on — for own work and stolen
    // work alike.
    let mut msgs: Vec<ShardMsg<S::Item>> = Vec::with_capacity(shared.depth);
    let mut done: Vec<Vec<S::Item>> = Vec::with_capacity(shared.depth);
    loop {
        // 1. Serve the own cell. Lock-before-drain: draining only under
        //    the core lock is what keeps the logical shard FIFO when a
        //    thief and the owner race.
        let mut progressed = false;
        if !my.work.is_empty() {
            let mut core = my.core.lock();
            if my.work.try_drain_into(&mut msgs) > 0 {
                process_shard_msgs(shard_id, &mut core, my, shared, &mut msgs, &mut done);
                progressed = true;
            }
            drop(core);
            for buf in done.drain(..) {
                let _ = my.recycle.try_push(buf);
            }
        } else if my.work.is_closed() {
            // Closed and fully drained (any messages a thief drained are
            // the thief's to finish): this shard's stream has ended.
            return;
        }
        // 2. Steal sweep: drain any other cell's backlog we can lock
        //    without waiting. try_lock only — a sweeping worker must
        //    never sleep on another shard's cell.
        for off in 1..k {
            let j = (shard_id + off) % k;
            let victim = &shared.cells[j];
            if victim.work.is_empty() {
                continue;
            }
            let Some(mut core) = victim.core.try_lock() else {
                continue;
            };
            if victim.work.try_drain_into(&mut msgs) > 0 {
                // A thief dying mid-steal takes the victim's drained
                // messages (data batches, maybe a Sync or Barrier) to the
                // grave while the victim's own queues stay open and its
                // owner stays healthy — a driver blocked in pop_resp on
                // the victim would then wait forever, since only the
                // thief's own queues close on unwind. Closing the
                // *victim's* endpoints too makes the loss detectable, so
                // the supervisor fails typed or respawns from the barrier.
                let guard = StolenMsgsGuard { victim };
                process_shard_msgs(j, &mut core, victim, shared, &mut msgs, &mut done);
                std::mem::forget(guard);
                progressed = true;
            }
            drop(core);
            for buf in done.drain(..) {
                let _ = victim.recycle.try_push(buf);
            }
        }
        // 3. Help execute a merge-tree leaf task.
        if let Some((tree, leaf)) = shared.tasks.try_pop() {
            if let Some(frozen) = run_tree_task(&tree, leaf, &shared.spec) {
                let _ = shared.merger.push(MergerMsg::Publish {
                    frozen: Box::new(frozen),
                });
            }
            progressed = true;
        }
        // 4. Idle: briefly wait for own work (woken early by push or
        //    close), then rescan the steal targets and the task queue.
        if !progressed {
            my.work.wait_nonempty(Duration::from_millis(1));
        }
    }
}

/// Per-epoch assembly state on the merger thread.
struct PendingEpoch<S> {
    /// `(driver RNG position, batches stamp)` from the epoch's `Request`.
    header: Option<([u64; 4], u64)>,
    /// Forked shard states, indexed by shard id.
    forks: Vec<Option<S>>,
    received: usize,
}

impl<S> PendingEpoch<S> {
    fn new(shards: usize) -> Self {
        Self {
            header: None,
            forks: (0..shards).map(|_| None).collect(),
            received: 0,
        }
    }

    fn is_complete(&self, shards: usize) -> bool {
        self.header.is_some() && self.received == shards
    }
}

/// Per-generation checkpoint assembly state on the merger thread.
struct PendingCkpt<S> {
    /// `(driver RNG, split deviations, batches)` from the `CkptRequest`.
    header: Option<([u64; 4], Vec<f64>, u64)>,
    /// `(sampler, RNG state)` parts, indexed by shard id.
    parts: Vec<Option<(S, [u64; 4])>>,
    received: usize,
}

impl<S> PendingCkpt<S> {
    fn new(shards: usize) -> Self {
        Self {
            header: None,
            parts: (0..shards).map(|_| None).collect(),
            received: 0,
        }
    }

    fn is_complete(&self, shards: usize) -> bool {
        self.header.is_some() && self.received == shards
    }
}

/// Build one epoch's merge tree from its header and forks, deriving
/// every node's RNG substream from the recorded driver position with the
/// exact [`tbs_core::merge::merge_replay`] sequence (split into `2K`
/// streams without advancing, node `n` ← stream `n+1`, then one
/// `long_jump` for the realization trajectory).
fn build_tree<S: MergeableSample>(
    epoch: u64,
    batches: u64,
    rng_state: [u64; 4],
    forks: Vec<S>,
    spec: &ShardSpec,
) -> EpochTree<S> {
    let k = forks.len();
    let plan = MergePlan::new(k);
    let scalars = S::merge_targets(&forks, spec);
    let mut rng = Xoshiro256PlusPlus::from_state(rng_state);
    let streams = rng.split_streams(2 * k);
    rng.long_jump();
    let node_rngs = (0..plan.node_count())
        .map(|n| streams[n + 1].state())
        .collect();
    let realize_rng = rng.state();
    let mut slots: Vec<Mutex<Option<S>>> = forks.into_iter().map(|s| Mutex::new(Some(s))).collect();
    slots.resize_with(plan.node_count(), || Mutex::new(None));
    let pending = (0..k.saturating_sub(1))
        .map(|_| AtomicUsize::new(0))
        .collect();
    EpochTree {
        epoch,
        batches,
        plan,
        scalars,
        node_rngs,
        realize_rng,
        slots,
        pending,
    }
}

/// The background merge coordinator: collect each epoch's `Request`
/// header and K shard forks, build the epoch's merge tree, hand its leaf
/// tasks to the idle shard workers (executing inline whatever does not
/// fit — dispatch never blocks, which is what makes shutdown
/// deadlock-free), and publish completed epochs **strictly in order**.
fn merger_worker<S: MergeableSample + Clone>(
    shared: &EngineShared<S>,
    cell: &EpochCell<S::Item>,
    start_pub: u64,
) {
    // However this thread exits — queue closed on engine drop, or a
    // panic inside merge — close every merger-facing endpoint:
    //
    // * the cell, so readers blocked in wait_for_epoch wake instead of
    //   waiting on a publisher that no longer exists (published samples
    //   stay readable);
    // * the work queue, so shard workers pushing barrier forks (and the
    //   driver pushing epoch requests) fail fast instead of blocking
    //   forever on a bounded queue no one drains — a merger panic must
    //   not deadlock ingest, mirroring the shard workers' PanicCloser;
    // * the task queue, so no new tree work is admitted after the
    //   coordinator is gone.
    struct PanicCloser<'a, S: MergeableSample> {
        shared: &'a EngineShared<S>,
        cell: &'a EpochCell<S::Item>,
    }
    impl<S: MergeableSample> Drop for PanicCloser<'_, S> {
        fn drop(&mut self) {
            self.shared.merger.close();
            self.shared.tasks.close();
            self.cell.close();
        }
    }
    let _closer = PanicCloser { shared, cell };

    let spec = shared.spec;
    let cell_count = shared.cells.len();
    let mut pending: BTreeMap<u64, PendingEpoch<S>> = BTreeMap::new();
    let mut pending_ckpts: BTreeMap<u64, PendingCkpt<S>> = BTreeMap::new();
    // Completed-but-unpublished epochs, re-ordered for in-order
    // publication (trees of different epochs may finish out of order).
    let mut ready: BTreeMap<u64, FrozenSample<S::Item>> = BTreeMap::new();
    // Publication continues wherever the cell left off — 1 for a fresh
    // engine, published+1 for a recovery respawn.
    let mut next_pub: u64 = start_pub;
    // Messages processed by this merger incarnation (fault-site ordinal).
    let mut msg_seen: u64 = 0;
    // Trees dispatched but not yet completed. While nonzero the merger
    // must keep making progress itself (workers may all be busy with — or
    // already drained of — ingest), so it polls with a timeout and helps
    // execute leaf tasks instead of blocking.
    let mut inflight: usize = 0;
    let mut msgs: Vec<MergerMsg<S>> = Vec::new();
    loop {
        msgs.clear();
        if shared.merger.try_drain_into(&mut msgs) == 0 {
            if inflight == 0 {
                // Nothing running: block until something arrives. A 0
                // return means closed and fully drained — and with no
                // tree in flight there is nothing left to publish.
                if shared.merger.drain_into(&mut msgs) == 0 {
                    return;
                }
            } else if let Some((tree, leaf)) = shared.tasks.try_pop() {
                // Help execute the in-flight trees; after the workers
                // have exited (engine drop) this is what completes them.
                if let Some(frozen) = run_tree_task(&tree, leaf, &spec) {
                    inflight -= 1;
                    ready.insert(frozen.epoch(), frozen);
                }
            } else {
                let _ = shared
                    .merger
                    .drain_into_timeout(&mut msgs, Duration::from_millis(1));
            }
        }
        for msg in msgs.drain(..) {
            if let Some(plan) = &shared.faults {
                plan.fire_kill_merger(msg_seen);
            }
            msg_seen += 1;
            match msg {
                MergerMsg::Request {
                    epoch,
                    rng,
                    batches,
                } => {
                    pending
                        .entry(epoch)
                        .or_insert_with(|| PendingEpoch::new(cell_count))
                        .header = Some((rng, batches));
                }
                MergerMsg::Fork {
                    epoch,
                    shard,
                    state,
                } => {
                    let entry = pending
                        .entry(epoch)
                        .or_insert_with(|| PendingEpoch::new(cell_count));
                    if entry.forks[shard].replace(*state).is_none() {
                        entry.received += 1;
                    }
                }
                MergerMsg::Publish { frozen } => {
                    inflight -= 1;
                    ready.insert(frozen.epoch(), *frozen);
                }
                MergerMsg::CkptRequest {
                    gen,
                    driver_rng,
                    deviations,
                    batches,
                } => {
                    pending_ckpts
                        .entry(gen)
                        .or_insert_with(|| PendingCkpt::new(cell_count))
                        .header = Some((driver_rng, deviations, batches));
                }
                MergerMsg::CkptFork { gen, shard, state } => {
                    let entry = pending_ckpts
                        .entry(gen)
                        .or_insert_with(|| PendingCkpt::new(cell_count));
                    if entry.parts[shard].replace(*state).is_none() {
                        entry.received += 1;
                    }
                }
            }
        }
        // Assemble every complete checkpoint generation, oldest first.
        while let Some(entry) = pending_ckpts.first_entry() {
            if !entry.get().is_complete(cell_count) {
                break;
            }
            let (gen, state) = entry.remove_entry();
            // INVARIANT: `is_complete` just verified the header and all K
            // shard parts arrived, so the unwraps below cannot fire.
            let (driver_rng, deviations, batches) =
                state.header.expect("complete checkpoint has a header");
            let ckpt = EngineCheckpoint {
                shard_states: state
                    .parts
                    .into_iter()
                    .map(|p| p.expect("complete checkpoint has every shard"))
                    .collect(),
                driver_rng,
                split_deviations: deviations,
                batches,
            };
            if let Err(fresh) = shared.ckpts_done.try_push((gen, ckpt)) {
                // Ring full: evict the oldest unclaimed generation to
                // keep the newest — never block the merge pipeline on a
                // slow checkpoint consumer.
                let _ = shared.ckpts_done.try_pop();
                let _ = shared.ckpts_done.try_push(fresh);
            }
        }
        // Dispatch every complete epoch, oldest first (epochs complete in
        // order — barriers flow FIFO through every shard — but the loop
        // does not rely on it).
        while let Some(entry) = pending.first_entry() {
            if !entry.get().is_complete(cell_count) {
                break;
            }
            let (epoch, state) = entry.remove_entry();
            // INVARIANT: `is_complete` just verified the header and all K
            // fork states arrived, so the unwraps below cannot fire.
            let (rng_state, batches) = state.header.expect("complete epoch has a header");
            let forks: Vec<S> = state
                .forks
                .into_iter()
                .map(|f| f.expect("complete epoch has every fork"))
                .collect();
            let tree = Arc::new(build_tree(epoch, batches, rng_state, forks, &spec));
            inflight += 1;
            for leaf in 0..cell_count {
                if let Err((tree, leaf)) = shared.tasks.try_push((Arc::clone(&tree), leaf)) {
                    // Task queue full (or closed): execute inline rather
                    // than ever blocking — the workers draining the queue
                    // may be waiting on *this* thread at shutdown.
                    if let Some(frozen) = run_tree_task(&tree, leaf, &spec) {
                        inflight -= 1;
                        ready.insert(frozen.epoch(), frozen);
                    }
                }
            }
        }
        // Publish strictly in epoch order; later-finished older epochs
        // are never overtaken.
        while let Some(entry) = ready.first_entry() {
            if *entry.key() != next_pub {
                break;
            }
            cell.publish(Arc::new(entry.remove()));
            next_pub += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbs_core::{RTbs, TTbs};

    fn rtbs_engine(lambda: f64, n: usize, k: usize, seed: u64) -> ParallelIngestEngine<RTbs<u64>> {
        ParallelIngestEngine::new(EngineConfig::new(ShardSpec::rtbs(lambda, n, k), seed))
    }

    #[test]
    fn capacity_is_respected() {
        let mut engine = rtbs_engine(0.1, 100, 4, 1);
        for t in 0..50u64 {
            let b = [50u64, 0, 200, 10][t as usize % 4];
            engine.ingest((0..b).collect()).unwrap();
        }
        let sample = engine.sample().unwrap();
        assert!(sample.len() <= 100, "sample overflow: {}", sample.len());
    }

    #[test]
    fn weight_recursion_is_exact() {
        let schedule = [30u64, 0, 80, 5, 5, 0, 0, 120, 10];
        for k in [1usize, 2, 4, 8, 16] {
            let mut engine = rtbs_engine(0.1, 50, k, 7);
            let mut w = 0.0f64;
            for &b in &schedule {
                w = w * (-0.1f64).exp() + b as f64;
                engine.ingest((0..b).collect()).unwrap();
            }
            let merged = engine.snapshot_merged().unwrap();
            assert!(
                (merged.total_weight() - w).abs() < 1e-9,
                "k={k}: W {} vs {w}",
                merged.total_weight()
            );
            assert!((merged.sample_weight() - w.min(50.0)).abs() < 1e-9);
        }
    }

    #[test]
    fn stats_count_all_items() {
        let mut engine = rtbs_engine(0.1, 64, 4, 3);
        let mut total = 0u64;
        for t in 0..40u64 {
            let b = [17u64, 0, 93, 5][t as usize % 4];
            total += b;
            engine.ingest((0..b).collect()).unwrap();
        }
        engine.quiesce().unwrap();
        let stats = engine.shard_stats();
        assert_eq!(stats.iter().map(|s| s.items).sum::<u64>(), total);
        assert_eq!(stats.iter().map(|s| s.batches).sum::<u64>(), 40 * 4);
    }

    #[test]
    fn snapshot_leaves_shards_running() {
        let mut engine = rtbs_engine(0.1, 32, 2, 5);
        engine.ingest((0..100u64).collect()).unwrap();
        let first = engine.snapshot_merged().unwrap();
        engine.ingest((0..100u64).collect()).unwrap();
        let second = engine.snapshot_merged().unwrap();
        assert_eq!(first.batches_observed() + 1, second.batches_observed());
        assert!(second.total_weight() > first.total_weight());
    }

    #[test]
    fn ttbs_engine_tracks_target() {
        let spec = ShardSpec::ttbs(0.1, 200, 100.0, 4);
        let mut engine: ParallelIngestEngine<TTbs<u64>> =
            ParallelIngestEngine::new(EngineConfig::new(spec, 11));
        for t in 0..400u64 {
            engine
                .ingest((0..100).map(|i| t * 100 + i).collect())
                .unwrap();
        }
        let merged = engine.snapshot_merged().unwrap();
        let size = merged.len() as f64;
        assert!(
            (size / 200.0 - 1.0).abs() < 0.25,
            "merged T-TBS size {size} far from target 200"
        );
    }

    #[test]
    fn drop_is_clean_with_backlog() {
        let mut engine = rtbs_engine(0.5, 16, 2, 9);
        for _ in 0..100 {
            engine.ingest((0..50u64).collect()).unwrap();
        }
        drop(engine); // must not hang or panic
    }

    #[test]
    fn drop_is_clean_with_unclaimed_snapshots() {
        // Requests whose trees are still in flight at drop must be
        // completed (or abandoned) without deadlock, and the cell must
        // end up closed.
        let mut engine = rtbs_engine(0.2, 64, 4, 13);
        for t in 0..50u64 {
            engine
                .ingest((0..80).map(|i| t * 100 + i).collect())
                .unwrap();
            if t % 10 == 0 {
                engine.request_snapshot().unwrap();
            }
        }
        let cell = engine.snapshot_cell();
        drop(engine);
        assert!(cell.is_closed());
        assert_eq!(cell.published_epoch(), 5, "all requested epochs publish");
    }

    #[test]
    fn save_parts_resume_is_bit_identical() {
        // Run A: 60 batches straight through. Run B: 30 batches, checkpoint,
        // rebuild a fresh engine from the parts, 30 more. Samples must match
        // exactly — same items, same order.
        for k in [1usize, 2, 4, 8, 16] {
            let batch = |t: u64| -> Vec<u64> {
                let b = [40u64, 0, 150, 7][t as usize % 4];
                (0..b).map(|i| t * 1000 + i).collect()
            };
            let cfg = EngineConfig::new(ShardSpec::rtbs(0.1, 64, k), 42);
            let mut uninterrupted = ParallelIngestEngine::<RTbs<u64>>::new(cfg);
            for t in 0..60 {
                uninterrupted.ingest(batch(t)).unwrap();
            }
            let expect = uninterrupted.sample().unwrap();

            let mut first_half = ParallelIngestEngine::<RTbs<u64>>::new(cfg);
            for t in 0..30 {
                first_half.ingest(batch(t)).unwrap();
            }
            let parts = first_half.save_parts().unwrap();
            assert_eq!(parts.split_deviations.len(), k);
            drop(first_half);
            let mut resumed = ParallelIngestEngine::<RTbs<u64>>::from_parts(cfg, parts);
            for t in 30..60 {
                resumed.ingest(batch(t)).unwrap();
            }
            assert_eq!(resumed.sample().unwrap(), expect, "k={k}: resume diverged");
        }
    }

    #[test]
    fn save_parts_does_not_disturb_the_trajectory() {
        // Checkpointing mid-stream must consume no randomness: a run with a
        // checkpoint taken halfway equals a run without one.
        let cfg = EngineConfig::new(ShardSpec::rtbs(0.1, 32, 2), 5);
        let mut plain = ParallelIngestEngine::<RTbs<u64>>::new(cfg);
        let mut observed = ParallelIngestEngine::<RTbs<u64>>::new(cfg);
        for t in 0..40u64 {
            plain
                .ingest((0..50).map(|i| t * 100 + i).collect())
                .unwrap();
            observed
                .ingest((0..50).map(|i| t * 100 + i).collect())
                .unwrap();
            if t == 20 {
                let _ = observed.save_parts().unwrap();
            }
        }
        assert_eq!(plain.sample().unwrap(), observed.sample().unwrap());
    }

    #[test]
    fn stealing_never_changes_the_sample() {
        // Slam a 16-shard engine with a shallow queue (maximizing steal
        // opportunities and backpressure stalls) and compare against a
        // second run with a deep queue (little stealing): same seed ⇒
        // bit-identical samples, whatever the thread interleaving did.
        let spec = ShardSpec::rtbs(0.1, 200, 16);
        let shallow = EngineConfig {
            spec,
            queue_depth: 2,
            seed: 77,
            recovery: RecoveryPolicy::Fail,
        };
        let deep = EngineConfig {
            spec,
            queue_depth: 256,
            seed: 77,
            recovery: RecoveryPolicy::Fail,
        };
        let drive = |cfg: EngineConfig| -> Vec<u64> {
            let mut engine = ParallelIngestEngine::<RTbs<u64>>::new(cfg);
            for t in 0..300u64 {
                let b = [331u64, 0, 97, 1200, 16][t as usize % 5];
                engine
                    .ingest((0..b).map(|i| t * 10_000 + i).collect())
                    .unwrap();
            }
            engine.sample().unwrap()
        };
        assert_eq!(drive(shallow), drive(deep));
    }

    fn drive_schedule(cfg: EngineConfig) -> Vec<u64> {
        let mut engine = ParallelIngestEngine::<RTbs<u64>>::new(cfg);
        for t in 0..120u64 {
            let b = [45u64, 0, 130, 7, 330][t as usize % 5];
            engine
                .ingest((0..b).map(|i| t * 1000 + i).collect())
                .unwrap();
        }
        engine.sample().unwrap()
    }

    #[test]
    fn grouped_engine_matches_equivalent_cell_count_engine() {
        // 64 declared shards grouped down to 4 cells must equal a
        // 4-shard engine bit-for-bit: every stream-visible structure
        // (RNG substreams, split, samplers, merge tree) is cell-indexed,
        // and the engine spawns one worker per cell.
        let spec = ShardSpec::rtbs(0.1, 100, 64).with_group_threshold(24);
        assert_eq!(spec.cells(), 4);
        let grouped = EngineConfig::new(spec, 21);
        let plain = EngineConfig::new(ShardSpec::rtbs(0.1, 100, 4), 21);
        assert_eq!(drive_schedule(grouped), drive_schedule(plain));
    }

    #[test]
    fn grouped_engine_checkpoint_resumes_bit_identically() {
        let spec = ShardSpec::rtbs(0.1, 100, 32).with_group_threshold(24);
        assert_eq!(spec.cells(), 4);
        let cfg = EngineConfig::new(spec, 33);
        let batch = |t: u64| -> Vec<u64> {
            let b = [40u64, 0, 150, 7][t as usize % 4];
            (0..b).map(|i| t * 1000 + i).collect()
        };
        let mut uninterrupted = ParallelIngestEngine::<RTbs<u64>>::new(cfg);
        for t in 0..60 {
            uninterrupted.ingest(batch(t)).unwrap();
        }
        let expect = uninterrupted.sample().unwrap();

        let mut first_half = ParallelIngestEngine::<RTbs<u64>>::new(cfg);
        for t in 0..30 {
            first_half.ingest(batch(t)).unwrap();
        }
        let parts = first_half.save_parts().unwrap();
        assert_eq!(parts.shard_states.len(), 4, "checkpoint is cell-indexed");
        assert_eq!(parts.split_deviations.len(), 4);
        drop(first_half);
        let mut resumed = ParallelIngestEngine::<RTbs<u64>>::from_parts(cfg, parts);
        for t in 30..60 {
            resumed.ingest(batch(t)).unwrap();
        }
        assert_eq!(resumed.sample().unwrap(), expect, "grouped resume diverged");
    }

    #[test]
    fn deferred_downsampling_engine_is_deterministic() {
        // Batch-granular downsampling in the shards must keep the engine
        // a pure function of (seed, cells, batches): two runs with the
        // same θ agree, and θ > e^{-λ} degenerates to the eager result.
        let lazy = ShardSpec::rtbs(0.1, 400, 4).with_defer_threshold(1e-6);
        let a = drive_schedule(EngineConfig::new(lazy, 55));
        let b = drive_schedule(EngineConfig::new(lazy, 55));
        assert_eq!(a, b, "lazy engine not deterministic");
        let near_eager = ShardSpec::rtbs(0.1, 400, 4).with_defer_threshold(0.99);
        let eager = ShardSpec::rtbs(0.1, 400, 4);
        assert_eq!(
            drive_schedule(EngineConfig::new(near_eager, 55)),
            drive_schedule(EngineConfig::new(eager, 55)),
            "θ > e^{{-λ}} must match the eager path bit-for-bit"
        );
    }
}
