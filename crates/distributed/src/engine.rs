//! Multi-core sharded ingest engine: persistent worker pipeline over
//! mergeable sampler shards.
//!
//! Where [`crate::drtbs`] *simulates* a distributed cluster (with a cost
//! model standing in for the network), this module is the real thing at
//! single-machine scale: **N long-lived shard threads**, each owning a
//! monomorphized sampler ([`tbs_core::merge::MergeableSample`]) and a
//! jump-ahead RNG substream, fed through bounded blocking queues
//! ([`crate::queue::BatchQueue`]) by a driver thread. This is the paper's
//! `Dist,CP` insight (§5: distributed decisions over co-partitioned data
//! need no per-item coordination) applied to cores instead of cluster
//! nodes: ingest runs with **zero cross-shard coordination**, and shard
//! states are only merged — exactly, via the weight algebra of
//! [`tbs_core::merge`] — when a sample is requested.
//!
//! ## Pipeline anatomy
//!
//! ```text
//!              ┌────────────┐   work: BatchQueue<ShardMsg>   ┌──────────┐
//!  ingest() ──▶│  driver:   │ ─────────────────────────────▶ │ shard 0  │
//!              │ partition  │ ◀───────────────────────────── │ R-TBS +  │
//!              │  + enqueue │   recycle: BatchQueue<Vec<T>>  │ own RNG  │
//!              └────────────┘            …× N                └──────────┘
//! ```
//!
//! * Batches are split deterministically ([`tbs_core::merge::partition_batch`])
//!   so runs are reproducible regardless of thread interleaving: same seed
//!   + same shard count ⇒ identical merged sample.
//! * Consumed batch buffers flow back to the driver through a recycle
//!   queue, so steady-state ingest performs **zero heap allocations**
//!   beyond the caller-provided batch (verified by the engine's
//!   counting-allocator test).
//! * [`ParallelIngestEngine::sample`] quiesces the pipeline (queues are
//!   FIFO, so a snapshot request naturally drains each shard), merges the
//!   shard states in shard-id order, and realizes the unified sample.
//! * Workers are spawned **once** at construction — no per-batch thread
//!   spawn anywhere (contrast with the pre-PR-3 `WorkerPool`, which paid
//!   a `thread::spawn` per job per batch).
//!
//! ## Serving without stopping: the snapshot barrier
//!
//! `sample()` is *exact but synchronous*: the caller blocks through
//! quiesce + merge + realize, and no one else can read meanwhile. The
//! epoch-publication path removes both limits:
//!
//! ```text
//!  request_snapshot() ──▶ Barrier(e) ──▶ shard k: fork_for_merge() ─┐
//!        │                (FIFO, so the fork lands exactly at the    │
//!        │                 batch boundary of the request)            ▼
//!        └── Request{e, driver-RNG state} ──────────────▶ ┌───────────────┐
//!                                                         │ merger thread │
//!                       Arc<FrozenSample> ◀── merge+realize│  (background) │
//!                            │                             └───────────────┘
//!                            ▼
//!                    EpochCell ◀── SampleReader::latest()  (lock-free poll)
//! ```
//!
//! [`ParallelIngestEngine::request_snapshot`] consumes **no** driver
//! randomness — it records the driver RNG *position* and lets the merger
//! replay the exact merge + realization sequence `sample()` would have
//! run from that position. The published [`FrozenSample`] is therefore
//! **bit-identical** to what `quiesce()` + `sample()` would have returned
//! at the same barrier point (the engine-snapshot tests pin this down),
//! while ingest never stops: shards pause only for the `O(n_k)` state
//! fork, and the merge runs concurrently on the merger thread.
//!
//! ## Choosing a shard count
//!
//! Shard capacity is `⌈n/K⌉` plus a decay-dependent skew headroom, and a
//! shard stays on R-TBS's cheap saturated transition only while its
//! sub-stream weight `W/K` exceeds that capacity. Rule of thumb: scale K
//! up to the core count **while `b/(K(1−e^{−λ})) > n/K + 1/(1−e^{−λ})`**
//! (i.e. per-shard equilibrium weight stays above per-shard capacity);
//! past that point shards fall out of saturation and per-shard cost rises
//! from O(b·n/W) to O(C) per batch. The committed `BENCH_scaling.json`
//! quantifies both regimes.

use crate::queue::BatchQueue;
use crate::snapshot::EpochCell;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;
use tbs_core::frozen::FrozenSample;
use tbs_core::merge::{partition_batch, MergeableSample, ShardSpec};
use tbs_stats::rng::Xoshiro256PlusPlus;

/// Configuration of a [`ParallelIngestEngine`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// The single-node sampler the merged output must be equivalent to,
    /// plus the shard count.
    pub spec: ShardSpec,
    /// Bounded depth of each shard's work queue, in batches. Deeper queues
    /// smooth bursty producers; shallower ones bound in-flight memory.
    pub queue_depth: usize,
    /// Master seed; the driver and every shard derive non-overlapping
    /// jump-ahead substreams from it.
    pub seed: u64,
}

impl EngineConfig {
    /// An engine config with the default queue depth (64 batches).
    pub fn new(spec: ShardSpec, seed: u64) -> Self {
        Self {
            spec,
            queue_depth: 64,
            seed,
        }
    }
}

/// Steady-state ingest counters for one shard, read with
/// [`ParallelIngestEngine::shard_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardStats {
    /// Items ingested by this shard.
    pub items: u64,
    /// Sub-batches processed by this shard.
    pub batches: u64,
    /// Nanoseconds spent inside `observe` calls (excludes queue waits —
    /// this is the shard's *busy* time, the basis of the scaling bench's
    /// aggregate-capacity metric).
    pub busy_ns: u64,
}

#[derive(Debug, Default)]
struct ShardCounters {
    items: AtomicU64,
    batches: AtomicU64,
    busy_ns: AtomicU64,
}

enum ShardMsg<T> {
    /// One sub-batch to ingest (possibly empty — empty batches still
    /// advance the shard's decay clock).
    Batch(Vec<T>),
    /// Reply with a clone of the shard sampler plus the shard RNG's
    /// current 256-bit position (quiesces: FIFO order guarantees all
    /// prior batches are absorbed first).
    Snapshot,
    /// Reply with an ack once everything queued ahead has been processed.
    Sync,
    /// Epoch-snapshot barrier: fork the shard state off to the merger
    /// thread (no driver round-trip — the shard keeps ingesting).
    Barrier(u64),
}

enum ShardResp<S> {
    Snapshot(Box<(S, [u64; 4])>),
    Ack,
}

/// Messages flowing into the background merger thread. FIFO causality
/// makes the per-epoch protocol race-free: the driver enqueues the
/// `Request` *before* any shard can see the matching `Barrier`, so the
/// merger always learns the replay RNG state before the forks arrive.
enum MergerMsg<S: MergeableSample> {
    /// Driver-side epoch header: the RNG position the merge must replay
    /// from (bit-identity with the exact path) and the batches-ingested
    /// staleness stamp for the published metadata.
    Request {
        epoch: u64,
        rng: [u64; 4],
        batches: u64,
    },
    /// One shard's forked state at the barrier.
    Fork {
        epoch: u64,
        shard: usize,
        state: Box<S>,
    },
}

/// The complete durable state of a quiesced [`ParallelIngestEngine`]:
/// every shard's sampler and RNG position, the driver's RNG position, and
/// the batch-split rotation counter. Feeding it back through
/// [`ParallelIngestEngine::from_parts`] (same spec, shard count, and
/// queue depth) resumes the stream **bit-identically** to an
/// uninterrupted run — the engine-determinism tests pin this down.
#[derive(Debug, Clone)]
pub struct EngineCheckpoint<S> {
    /// Per-shard `(sampler, RNG state)`, in shard-id order.
    pub shard_states: Vec<(S, [u64; 4])>,
    /// The driver's merge/realization RNG position.
    pub driver_rng: [u64; 4],
    /// The remainder-rotation counter of the deterministic batch split.
    pub rotation: u64,
    /// Batches ingested so far — the staleness stamp future snapshot
    /// publications continue from.
    pub batches: u64,
}

struct ShardHandle<S: MergeableSample> {
    work: Arc<BatchQueue<ShardMsg<S::Item>>>,
    resp: Arc<BatchQueue<ShardResp<S>>>,
    recycle: Arc<BatchQueue<Vec<S::Item>>>,
    counters: Arc<ShardCounters>,
    join: Option<JoinHandle<()>>,
}

/// Everything a shard worker communicates through, bundled for the spawn.
struct ShardChannels<S: MergeableSample> {
    work: Arc<BatchQueue<ShardMsg<S::Item>>>,
    resp: Arc<BatchQueue<ShardResp<S>>>,
    recycle: Arc<BatchQueue<Vec<S::Item>>>,
    merger: Arc<BatchQueue<MergerMsg<S>>>,
    counters: Arc<ShardCounters>,
}

/// A sharded, multi-threaded ingest front-end over any
/// [`MergeableSample`] sampler (R-TBS, T-TBS).
///
/// See the [module docs](self) for the pipeline anatomy. The engine is
/// deterministic: the realized sample is a pure function of
/// `(seed, shard count, batch sequence)`.
pub struct ParallelIngestEngine<S: MergeableSample + Clone + Send + 'static>
where
    S::Item: Send + Sync + 'static,
{
    shards: Vec<ShardHandle<S>>,
    spec: ShardSpec,
    /// The background merge/publish thread of the snapshot protocol.
    merger_work: Arc<BatchQueue<MergerMsg<S>>>,
    merger_join: Option<JoinHandle<()>>,
    /// Epoch-publication cell shared with every reader handle.
    cell: Arc<EpochCell<S::Item>>,
    /// Epoch assigned to the next snapshot request (first epoch is 1).
    next_epoch: u64,
    /// Batches fed through [`ParallelIngestEngine::ingest`] — the
    /// staleness stamp carried by published snapshots.
    batches_ingested: u64,
    /// Remainder-rotation counter for the deterministic batch split.
    rotation: usize,
    /// Largest per-shard chunk seen so far. Recycled split buffers are
    /// reserved up to this before filling, so every circulating buffer
    /// converges to the high-water capacity after one population cycle —
    /// making steady-state ingest deterministically allocation-free
    /// instead of "once every buffer has happened to carry a big chunk".
    chunk_high_water: usize,
    /// Driver-side substream: merge randomization + sample realization.
    driver_rng: Xoshiro256PlusPlus,
    /// Per-shard split buffers, refilled from the recycle queues.
    split: Vec<Vec<S::Item>>,
    /// Responses are popped into this scratch vector (capacity 1).
    resp_scratch: Vec<ShardResp<S>>,
}

impl<S: MergeableSample + Clone + Send + 'static> ParallelIngestEngine<S>
where
    S::Item: Send + Sync + 'static,
{
    /// Spawn the shard worker threads and return the ready engine.
    pub fn new(cfg: EngineConfig) -> Self {
        let mut substreams =
            Xoshiro256PlusPlus::seed_from_u64(cfg.seed).split_streams(cfg.spec.shards + 1);
        let driver_rng = substreams.remove(0);
        let shard_samplers = S::make_shards(&cfg.spec);
        Self::spawn(cfg, shard_samplers, substreams, driver_rng, 0)
    }

    /// Rebuild an engine from a quiesced checkpoint (see
    /// [`ParallelIngestEngine::save_parts`]). The config must describe the
    /// same sharding the checkpoint was taken under; `cfg.seed` is ignored
    /// — every RNG resumes from its checkpointed position.
    ///
    /// # Panics
    ///
    /// Panics if the checkpoint's shard count disagrees with `cfg.spec`.
    pub fn from_parts(cfg: EngineConfig, parts: EngineCheckpoint<S>) -> Self {
        assert_eq!(
            parts.shard_states.len(),
            cfg.spec.shards,
            "checkpoint has {} shards, config wants {}",
            parts.shard_states.len(),
            cfg.spec.shards
        );
        let mut samplers = Vec::with_capacity(parts.shard_states.len());
        let mut rngs = Vec::with_capacity(parts.shard_states.len());
        for (sampler, state) in parts.shard_states {
            samplers.push(sampler);
            rngs.push(Xoshiro256PlusPlus::from_state(state));
        }
        let driver_rng = Xoshiro256PlusPlus::from_state(parts.driver_rng);
        let mut engine = Self::spawn(cfg, samplers, rngs, driver_rng, parts.rotation as usize);
        engine.batches_ingested = parts.batches;
        engine
    }

    fn spawn(
        cfg: EngineConfig,
        shard_samplers: Vec<S>,
        substreams: Vec<Xoshiro256PlusPlus>,
        driver_rng: Xoshiro256PlusPlus,
        rotation: usize,
    ) -> Self {
        let spec = cfg.spec;
        // Room for a few epochs in flight (each is 1 request + K forks);
        // beyond that the snapshot path exerts backpressure on whoever
        // requests faster than the merger can merge.
        let merger_work: Arc<BatchQueue<MergerMsg<S>>> =
            Arc::new(BatchQueue::with_capacity(4 * (spec.shards + 1)));
        let cell = Arc::new(EpochCell::new());
        let merger_join = std::thread::Builder::new()
            .name("tbs-merger".into())
            .spawn({
                let work = Arc::clone(&merger_work);
                let cell = Arc::clone(&cell);
                move || merger_worker(spec, &work, &cell)
            })
            .expect("spawn merger worker");
        let shards: Vec<ShardHandle<S>> = shard_samplers
            .into_iter()
            .zip(substreams)
            .enumerate()
            .map(|(i, (sampler, rng))| {
                let work = Arc::new(BatchQueue::with_capacity(cfg.queue_depth.max(1)));
                let resp = Arc::new(BatchQueue::with_capacity(2));
                // The recycle queue is created at its full buffer
                // population, 2·depth + 2: at most depth buffers sit in
                // the work queue, at most depth in the worker's unflushed
                // done-list, and one in the driver — so at least one is
                // always available, the driver's try_pop never misses,
                // the worker's try_push never drops a warm buffer, and
                // steady-state ingest never calls the allocator for a
                // buffer (the counting-allocator test pins this down).
                let population = 2 * cfg.queue_depth.max(1) + 2;
                let recycle = Arc::new(BatchQueue::with_capacity(population));
                for _ in 0..population {
                    let _ = recycle.try_push(Vec::new());
                }
                let counters = Arc::new(ShardCounters::default());
                let channels = ShardChannels {
                    work: Arc::clone(&work),
                    resp: Arc::clone(&resp),
                    recycle: Arc::clone(&recycle),
                    merger: Arc::clone(&merger_work),
                    counters: Arc::clone(&counters),
                };
                let depth = cfg.queue_depth.max(1);
                let join = std::thread::Builder::new()
                    .name(format!("tbs-shard-{i}"))
                    .spawn(move || shard_worker(i, sampler, rng, depth, &channels))
                    .expect("spawn shard worker");
                ShardHandle {
                    work,
                    resp,
                    recycle,
                    counters,
                    join: Some(join),
                }
            })
            .collect();
        Self {
            split: (0..spec.shards).map(|_| Vec::new()).collect(),
            shards,
            spec,
            merger_work,
            merger_join: Some(merger_join),
            cell,
            next_epoch: 1,
            batches_ingested: 0,
            rotation,
            chunk_high_water: 0,
            driver_rng,
            resp_scratch: Vec::with_capacity(1),
        }
    }

    /// The shard count K.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The single-node-equivalent spec this engine maintains.
    pub fn spec(&self) -> &ShardSpec {
        &self.spec
    }

    /// Feed one arriving batch. The batch is split deterministically
    /// across the shard queues (blocking only when a queue is full —
    /// backpressure, not data loss); empty batches are delivered too,
    /// since every shard's decay clock must advance.
    pub fn ingest(&mut self, mut batch: Vec<S::Item>) {
        self.batches_ingested += 1;
        if self.shards.len() == 1 {
            // Single shard: hand the caller's buffer over untouched.
            let _ = self.shards[0].work.push(ShardMsg::Batch(batch));
            return;
        }
        self.chunk_high_water = self
            .chunk_high_water
            .max(batch.len().div_ceil(self.shards.len()));
        for (slot, shard) in self.split.iter_mut().zip(&self.shards) {
            *slot = shard.recycle.try_pop().unwrap_or_default();
            slot.reserve(self.chunk_high_water);
        }
        partition_batch(&mut batch, self.rotation, &mut self.split);
        self.rotation = self.rotation.wrapping_add(1);
        for (slot, shard) in self.split.iter_mut().zip(&self.shards) {
            let _ = shard.work.push(ShardMsg::Batch(std::mem::take(slot)));
        }
    }

    /// Block until every shard has absorbed everything queued so far.
    pub fn quiesce(&mut self) {
        for shard in &self.shards {
            let _ = shard.work.push(ShardMsg::Sync);
        }
        for shard in &self.shards {
            let _ = pop_resp(shard, &mut self.resp_scratch);
        }
    }

    /// Quiesce and clone out every shard's `(sampler, RNG state)`, in
    /// shard-id order (shards keep running; their live state is
    /// untouched).
    fn snapshot_shards(&mut self) -> Vec<(S, [u64; 4])> {
        for shard in &self.shards {
            let _ = shard.work.push(ShardMsg::Snapshot);
        }
        let mut snapshots = Vec::with_capacity(self.shards.len());
        for shard in &self.shards {
            match pop_resp(shard, &mut self.resp_scratch) {
                ShardResp::Snapshot(s) => snapshots.push(*s),
                ShardResp::Ack => unreachable!("snapshot request acked without payload"),
            }
        }
        snapshots
    }

    /// Quiesce, snapshot every shard, and merge the snapshots into a
    /// single-node-equivalent sampler (shards keep running; their live
    /// state is untouched).
    pub fn snapshot_merged(&mut self) -> S {
        let snapshots = self
            .snapshot_shards()
            .into_iter()
            .map(|(sampler, _)| sampler)
            .collect();
        S::merge_shards(snapshots, &self.spec, &mut self.driver_rng)
    }

    /// Quiesce and capture the engine's complete durable state: every
    /// shard's sampler and RNG position, the driver RNG position, and the
    /// batch-split rotation. Unlike [`ParallelIngestEngine::sample`], this
    /// consumes **no** randomness, so checkpointing mid-stream leaves the
    /// trajectory untouched; [`ParallelIngestEngine::from_parts`] resumes
    /// bit-identically.
    pub fn save_parts(&mut self) -> EngineCheckpoint<S> {
        EngineCheckpoint {
            shard_states: self.snapshot_shards(),
            driver_rng: self.driver_rng.state(),
            rotation: self.rotation as u64,
            batches: self.batches_ingested,
        }
    }

    /// Request publication of an epoch snapshot and return its epoch
    /// number, **without stopping ingest or blocking on the result**.
    ///
    /// A barrier marker is enqueued after everything ingested so far, so
    /// the snapshot reflects exactly the batches fed before this call.
    /// Each shard forks its state at the barrier (an `O(n_k)` copy) and
    /// keeps ingesting; the background merger folds the forks with the
    /// exact `tbs_core::merge` algebra and publishes an
    /// `Arc<FrozenSample>` into the engine's [`EpochCell`].
    ///
    /// Consumes **no** driver randomness: the merger replays the merge +
    /// realization from the driver RNG's current *position*, so the
    /// published sample is bit-identical to what
    /// [`ParallelIngestEngine::sample`] would have returned here, and the
    /// engine's own trajectory is untouched (like
    /// [`ParallelIngestEngine::save_parts`]).
    ///
    /// The only blocking is backpressure: if a queue is full the push
    /// waits, exactly as `ingest` does.
    ///
    /// If a shard worker has died (its panic guard closes its queue),
    /// the barrier cannot reach every shard and the epoch can never
    /// complete; the cell is closed so `wait_for_epoch` callers observe
    /// publisher death (`None`) instead of blocking forever. Epochs
    /// already published stay readable.
    pub fn request_snapshot(&mut self) -> u64 {
        let epoch = self.next_epoch;
        self.next_epoch += 1;
        // Request before barriers: FIFO causality guarantees the merger
        // sees the epoch header before any fork for it.
        let mut delivered = self
            .merger_work
            .push(MergerMsg::Request {
                epoch,
                rng: self.driver_rng.state(),
                batches: self.batches_ingested,
            })
            .is_ok();
        for shard in &self.shards {
            delivered &= shard.work.push(ShardMsg::Barrier(epoch)).is_ok();
        }
        if !delivered {
            self.cell.close();
        }
        epoch
    }

    /// The epoch-publication cell snapshots are served through. Clone the
    /// `Arc` into as many reader threads as you like; readers never touch
    /// the ingest path's queues or locks.
    pub fn snapshot_cell(&self) -> Arc<EpochCell<S::Item>> {
        Arc::clone(&self.cell)
    }

    /// Highest epoch published so far (0 until the first
    /// [`ParallelIngestEngine::request_snapshot`] completes).
    pub fn published_epoch(&self) -> u64 {
        self.cell.published_epoch()
    }

    /// Highest epoch requested so far (0 if none). The gap to
    /// [`ParallelIngestEngine::published_epoch`] is the number of
    /// snapshots still in flight.
    pub fn requested_epoch(&self) -> u64 {
        self.next_epoch - 1
    }

    /// Batches fed through [`ParallelIngestEngine::ingest`] so far.
    pub fn batches_ingested(&self) -> u64 {
        self.batches_ingested
    }

    /// Quiesce, merge, and realize the unified sample.
    pub fn sample(&mut self) -> Vec<S::Item> {
        let merged = self.snapshot_merged();
        let mut out = Vec::new();
        merged.realize_into(&mut self.driver_rng, &mut out);
        out
    }

    /// Per-shard ingest counters (items, batches, busy nanoseconds).
    /// Exact after a [`ParallelIngestEngine::quiesce`]; otherwise a
    /// point-in-time reading.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .map(|s| ShardStats {
                items: s.counters.items.load(Ordering::Relaxed),
                batches: s.counters.batches.load(Ordering::Relaxed),
                busy_ns: s.counters.busy_ns.load(Ordering::Relaxed),
            })
            .collect()
    }
}

/// Blocking single-response pop from a shard's response queue.
///
/// A closed-and-empty response queue means the worker terminated (its
/// panic guard closes the queue on unwind); fail fast with a clear panic
/// instead of blocking forever.
fn pop_resp<S: MergeableSample>(
    shard: &ShardHandle<S>,
    scratch: &mut Vec<ShardResp<S>>,
) -> ShardResp<S> {
    scratch.clear();
    let n = shard.resp.drain_into(scratch);
    assert!(
        n == 1,
        "shard worker terminated (panicked?) before responding"
    );
    scratch.pop().expect("response")
}

impl<S: MergeableSample + Clone + Send + 'static> Drop for ParallelIngestEngine<S>
where
    S::Item: Send + Sync + 'static,
{
    fn drop(&mut self) {
        // Closing the work queue lets each worker drain its backlog and
        // exit; join propagates worker panics.
        for shard in &mut self.shards {
            shard.work.close();
        }
        for shard in &mut self.shards {
            if let Some(join) = shard.join.take() {
                let result = join.join();
                // Re-raising a worker panic while already unwinding (e.g.
                // after pop_resp's fail-fast) would abort the process;
                // the first panic is the one worth reporting.
                if !std::thread::panicking() {
                    result.expect("shard worker panicked");
                }
            }
        }
        // Shards first, merger second: a draining shard backlog may still
        // push barrier forks, which the merger must be alive to absorb.
        // After the close it merges whatever epochs completed, closes the
        // cell (waking any wait_for_epoch blockers), and exits.
        self.merger_work.close();
        if let Some(join) = self.merger_join.take() {
            let result = join.join();
            if !std::thread::panicking() {
                result.expect("merger worker panicked");
            }
        }
    }
}

/// The long-lived per-shard worker: drain the work queue in bulk, ingest
/// batches on the monomorphized fast path, recycle buffers, answer
/// snapshot/sync requests, fork state at epoch barriers.
fn shard_worker<S: MergeableSample + Clone>(
    shard_id: usize,
    mut sampler: S,
    mut rng: Xoshiro256PlusPlus,
    depth: usize,
    channels: &ShardChannels<S>,
) {
    let ShardChannels {
        work,
        resp,
        recycle,
        merger,
        counters,
    } = channels;
    // If the worker unwinds (a sampler panic), close both driver-facing
    // queues: a driver blocked in pop_resp fails fast ("shard worker
    // terminated"), and one blocked on a full work queue in ingest()
    // wakes with a push error instead of waiting forever on a consumer
    // that no longer exists. On normal exit the engine is being dropped
    // and the closes are harmless.
    struct PanicCloser<'a, S: MergeableSample> {
        work: &'a BatchQueue<ShardMsg<S::Item>>,
        resp: &'a BatchQueue<ShardResp<S>>,
    }
    impl<S: MergeableSample> Drop for PanicCloser<'_, S> {
        fn drop(&mut self) {
            self.work.close();
            self.resp.close();
        }
    }
    let _closer = PanicCloser {
        work: work.as_ref(),
        resp: resp.as_ref(),
    };

    // A drained group holds at most `depth` messages (the work queue's
    // bound), so sizing the local buffers up front makes the loop
    // allocation-free from the first batch on.
    let mut msgs: Vec<ShardMsg<S::Item>> = Vec::with_capacity(depth);
    let mut done: Vec<Vec<S::Item>> = Vec::with_capacity(depth);
    loop {
        if work.drain_into(&mut msgs) == 0 {
            return; // queue closed and fully drained
        }
        let mut items = 0u64;
        let mut batches = 0u64;
        let mut busy = 0u64;
        // One timed span per contiguous run of batches: with a fast
        // producer the drain delivers work in large groups, so the two
        // clock reads amortize to nothing per batch.
        let mut span: Option<Instant> = None;
        let close_span = |span: &mut Option<Instant>, busy: &mut u64| {
            if let Some(t) = span.take() {
                *busy += t.elapsed().as_nanos() as u64;
            }
        };
        // Counters must be flushed *before* any Sync/Snapshot response is
        // sent: the driver reads them right after the ack, and the
        // "exact after quiesce" contract holds only if everything
        // processed ahead of the ack is already visible.
        let flush = |items: &mut u64, batches: &mut u64, busy: &mut u64| {
            counters.items.fetch_add(*items, Ordering::Relaxed);
            counters.batches.fetch_add(*batches, Ordering::Relaxed);
            counters.busy_ns.fetch_add(*busy, Ordering::Relaxed);
            (*items, *batches, *busy) = (0, 0, 0);
        };
        for msg in msgs.drain(..) {
            match msg {
                ShardMsg::Batch(mut buf) => {
                    if span.is_none() {
                        span = Some(Instant::now());
                    }
                    items += buf.len() as u64;
                    sampler.observe_shard(&mut buf, &mut rng);
                    buf.clear();
                    done.push(buf);
                    batches += 1;
                }
                ShardMsg::Snapshot => {
                    close_span(&mut span, &mut busy);
                    flush(&mut items, &mut batches, &mut busy);
                    let _ = resp.push(ShardResp::Snapshot(Box::new((
                        sampler.clone(),
                        rng.state(),
                    ))));
                }
                ShardMsg::Barrier(epoch) => {
                    // The fork is charged to the busy span: it is real
                    // per-shard pipeline work, and the serving benchmark's
                    // ingest-capacity gate must see the snapshot overhead.
                    if span.is_none() {
                        span = Some(Instant::now());
                    }
                    let _ = merger.push(MergerMsg::Fork {
                        epoch,
                        shard: shard_id,
                        state: Box::new(sampler.fork_for_merge()),
                    });
                }
                ShardMsg::Sync => {
                    close_span(&mut span, &mut busy);
                    flush(&mut items, &mut batches, &mut busy);
                    let _ = resp.push(ShardResp::Ack);
                }
            }
        }
        close_span(&mut span, &mut busy);
        flush(&mut items, &mut batches, &mut busy);
        // Hand consumed buffers back outside the timed span; a full
        // recycle queue (single-shard mode) just drops them.
        for buf in done.drain(..) {
            let _ = recycle.try_push(buf);
        }
    }
}

/// Per-epoch assembly state on the merger thread.
struct PendingEpoch<S> {
    /// `(driver RNG position, batches stamp)` from the epoch's `Request`.
    header: Option<([u64; 4], u64)>,
    /// Forked shard states, indexed by shard id.
    forks: Vec<Option<S>>,
    received: usize,
}

impl<S> PendingEpoch<S> {
    fn new(shards: usize) -> Self {
        Self {
            header: None,
            forks: (0..shards).map(|_| None).collect(),
            received: 0,
        }
    }

    fn is_complete(&self, shards: usize) -> bool {
        self.header.is_some() && self.received == shards
    }
}

/// The background merge/publish worker: collect each epoch's `Request`
/// header and K shard forks, fold the forks with the exact merge algebra
/// (replaying the driver RNG position recorded at request time, so the
/// result is bit-identical to the synchronous `sample()` path), realize,
/// and publish into the [`EpochCell`]. Epochs complete in order because
/// every queue involved is FIFO.
fn merger_worker<S: MergeableSample + Clone>(
    spec: ShardSpec,
    work: &BatchQueue<MergerMsg<S>>,
    cell: &EpochCell<S::Item>,
) {
    // However this thread exits — queue closed on engine drop, or a
    // panic inside merge — close both merger-facing endpoints:
    //
    // * the cell, so readers blocked in wait_for_epoch wake instead of
    //   waiting on a publisher that no longer exists (published samples
    //   stay readable);
    // * the work queue, so shard workers pushing barrier forks (and the
    //   driver pushing epoch requests) fail fast instead of blocking
    //   forever on a bounded queue no one drains — a merger panic must
    //   not deadlock ingest, mirroring the shard workers' PanicCloser.
    struct PanicCloser<'a, S: MergeableSample> {
        work: &'a BatchQueue<MergerMsg<S>>,
        cell: &'a EpochCell<S::Item>,
    }
    impl<S: MergeableSample> Drop for PanicCloser<'_, S> {
        fn drop(&mut self) {
            self.work.close();
            self.cell.close();
        }
    }
    let _closer = PanicCloser { work, cell };

    let mut pending: BTreeMap<u64, PendingEpoch<S>> = BTreeMap::new();
    let mut msgs: Vec<MergerMsg<S>> = Vec::new();
    loop {
        msgs.clear();
        if work.drain_into(&mut msgs) == 0 {
            return; // queue closed and fully drained
        }
        for msg in msgs.drain(..) {
            match msg {
                MergerMsg::Request {
                    epoch,
                    rng,
                    batches,
                } => {
                    pending
                        .entry(epoch)
                        .or_insert_with(|| PendingEpoch::new(spec.shards))
                        .header = Some((rng, batches));
                }
                MergerMsg::Fork {
                    epoch,
                    shard,
                    state,
                } => {
                    let entry = pending
                        .entry(epoch)
                        .or_insert_with(|| PendingEpoch::new(spec.shards));
                    if entry.forks[shard].replace(*state).is_none() {
                        entry.received += 1;
                    }
                }
            }
        }
        // Publish every complete epoch, oldest first (completion is
        // naturally in epoch order — barriers flow FIFO through every
        // shard — but the loop does not rely on it).
        while let Some(entry) = pending.first_entry() {
            if !entry.get().is_complete(spec.shards) {
                break;
            }
            let (epoch, state) = entry.remove_entry();
            let (rng_state, batches) = state.header.expect("complete epoch has a header");
            let forks: Vec<S> = state
                .forks
                .into_iter()
                .map(|f| f.expect("complete epoch has every fork"))
                .collect();
            // Replay exactly what the synchronous path would do from the
            // recorded RNG position: merge in shard-id order, realize.
            let mut rng = Xoshiro256PlusPlus::from_state(rng_state);
            let merged = S::merge_shards(forks, &spec, &mut rng);
            let mut items = Vec::new();
            merged.realize_into(&mut rng, &mut items);
            cell.publish(Arc::new(FrozenSample::new(
                epoch,
                batches,
                merged.total_stream_weight(),
                merged.expected_size(),
                items,
            )));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbs_core::{RTbs, TTbs};

    fn rtbs_engine(lambda: f64, n: usize, k: usize, seed: u64) -> ParallelIngestEngine<RTbs<u64>> {
        ParallelIngestEngine::new(EngineConfig::new(ShardSpec::rtbs(lambda, n, k), seed))
    }

    #[test]
    fn capacity_is_respected() {
        let mut engine = rtbs_engine(0.1, 100, 4, 1);
        for t in 0..50u64 {
            let b = [50u64, 0, 200, 10][t as usize % 4];
            engine.ingest((0..b).collect());
        }
        let sample = engine.sample();
        assert!(sample.len() <= 100, "sample overflow: {}", sample.len());
    }

    #[test]
    fn weight_recursion_is_exact() {
        let schedule = [30u64, 0, 80, 5, 5, 0, 0, 120, 10];
        for k in [1usize, 2, 4] {
            let mut engine = rtbs_engine(0.1, 50, k, 7);
            let mut w = 0.0f64;
            for &b in &schedule {
                w = w * (-0.1f64).exp() + b as f64;
                engine.ingest((0..b).collect());
            }
            let merged = engine.snapshot_merged();
            assert!(
                (merged.total_weight() - w).abs() < 1e-9,
                "k={k}: W {} vs {w}",
                merged.total_weight()
            );
            assert!((merged.sample_weight() - w.min(50.0)).abs() < 1e-9);
        }
    }

    #[test]
    fn stats_count_all_items() {
        let mut engine = rtbs_engine(0.1, 64, 4, 3);
        let mut total = 0u64;
        for t in 0..40u64 {
            let b = [17u64, 0, 93, 5][t as usize % 4];
            total += b;
            engine.ingest((0..b).collect());
        }
        engine.quiesce();
        let stats = engine.shard_stats();
        assert_eq!(stats.iter().map(|s| s.items).sum::<u64>(), total);
        assert_eq!(stats.iter().map(|s| s.batches).sum::<u64>(), 40 * 4);
    }

    #[test]
    fn snapshot_leaves_shards_running() {
        let mut engine = rtbs_engine(0.1, 32, 2, 5);
        engine.ingest((0..100u64).collect());
        let first = engine.snapshot_merged();
        engine.ingest((0..100u64).collect());
        let second = engine.snapshot_merged();
        assert_eq!(first.batches_observed() + 1, second.batches_observed());
        assert!(second.total_weight() > first.total_weight());
    }

    #[test]
    fn ttbs_engine_tracks_target() {
        let spec = ShardSpec::ttbs(0.1, 200, 100.0, 4);
        let mut engine: ParallelIngestEngine<TTbs<u64>> =
            ParallelIngestEngine::new(EngineConfig::new(spec, 11));
        for t in 0..400u64 {
            engine.ingest((0..100).map(|i| t * 100 + i).collect());
        }
        let merged = engine.snapshot_merged();
        let size = merged.len() as f64;
        assert!(
            (size / 200.0 - 1.0).abs() < 0.25,
            "merged T-TBS size {size} far from target 200"
        );
    }

    #[test]
    fn drop_is_clean_with_backlog() {
        let mut engine = rtbs_engine(0.5, 16, 2, 9);
        for _ in 0..100 {
            engine.ingest((0..50u64).collect());
        }
        drop(engine); // must not hang or panic
    }

    #[test]
    fn save_parts_resume_is_bit_identical() {
        // Run A: 60 batches straight through. Run B: 30 batches, checkpoint,
        // rebuild a fresh engine from the parts, 30 more. Samples must match
        // exactly — same items, same order.
        for k in [1usize, 2, 4] {
            let batch = |t: u64| -> Vec<u64> {
                let b = [40u64, 0, 150, 7][t as usize % 4];
                (0..b).map(|i| t * 1000 + i).collect()
            };
            let cfg = EngineConfig::new(ShardSpec::rtbs(0.1, 64, k), 42);
            let mut uninterrupted = ParallelIngestEngine::<RTbs<u64>>::new(cfg);
            for t in 0..60 {
                uninterrupted.ingest(batch(t));
            }
            let expect = uninterrupted.sample();

            let mut first_half = ParallelIngestEngine::<RTbs<u64>>::new(cfg);
            for t in 0..30 {
                first_half.ingest(batch(t));
            }
            let parts = first_half.save_parts();
            drop(first_half);
            let mut resumed = ParallelIngestEngine::<RTbs<u64>>::from_parts(cfg, parts);
            for t in 30..60 {
                resumed.ingest(batch(t));
            }
            assert_eq!(resumed.sample(), expect, "k={k}: resume diverged");
        }
    }

    #[test]
    fn save_parts_does_not_disturb_the_trajectory() {
        // Checkpointing mid-stream must consume no randomness: a run with a
        // checkpoint taken halfway equals a run without one.
        let cfg = EngineConfig::new(ShardSpec::rtbs(0.1, 32, 2), 5);
        let mut plain = ParallelIngestEngine::<RTbs<u64>>::new(cfg);
        let mut observed = ParallelIngestEngine::<RTbs<u64>>::new(cfg);
        for t in 0..40u64 {
            plain.ingest((0..50).map(|i| t * 100 + i).collect());
            observed.ingest((0..50).map(|i| t * 100 + i).collect());
            if t == 20 {
                let _ = observed.save_parts();
            }
        }
        assert_eq!(plain.sample(), observed.sample());
    }
}
