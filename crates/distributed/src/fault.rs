//! Deterministic fault injection for the parallel ingest engine.
//!
//! §5 of the paper assumes "both D-T-TBS and D-R-TBS periodically
//! checkpoint … to ensure fault tolerance" — which is only worth anything
//! if the failure paths are actually exercised. A [`FaultPlan`] describes,
//! at *precise* positions in the deterministic pipeline, where to kill a
//! shard worker, kill the merger, or drop/delay a queue push. Because the
//! engine's splits, RNG substreams, and batch numbering are all
//! deterministic per `(seed, K)`, a plan names exact events — "kill the
//! worker processing shard 2's 37th batch" — and every run of the same
//! plan fails in exactly the same place. The fault-matrix suite drives
//! plans against the supervisor in [`crate::engine`] and asserts typed
//! errors, bounded time, and bit-identical recovery.
//!
//! Injection sites are checked with [`FaultPlan::fire_kill_worker`] &
//! friends from inside the engine; an engine built without a plan (the
//! only way production code builds one) pays a single always-false branch
//! per *batch group*, nothing per item. Each fault fires at most once —
//! after supervised recovery replays the stream past the injection point,
//! the plan stays quiet so tests converge.
//!
//! Checkpoint-blob corruption ([`bit_flip`], [`truncate`]) is data-level,
//! not position-level, so those helpers operate on byte buffers and are
//! paired with the CRC framing in `tbs_core::checkpoint`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Panic message used by every injected kill. The engine's supervisor
/// treats worker panics carrying this marker as injected (tests silence
/// them via [`silence_injected_panics`]); real bugs keep their own
/// messages and still propagate loudly.
pub const INJECTED_PANIC: &str = "tbs-fault: injected failure";

/// One scheduled fault at a precise pipeline position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// Panic the worker thread that is about to process logical shard
    /// `shard`'s `batch_index`-th data batch (0-based). With work
    /// stealing the *thread* that dies varies, but the position in the
    /// shard's deterministic stream does not.
    KillWorker {
        /// Logical shard whose stream carries the fault.
        shard: usize,
        /// 0-based index into that shard's batch sequence.
        batch_index: u64,
    },
    /// Panic the merger thread just before it processes its
    /// `msg_index`-th message (0-based, counted per merger incarnation).
    KillMerger {
        /// 0-based message ordinal.
        msg_index: u64,
    },
    /// Silently drop the driver→shard push of `shard`'s chunk of global
    /// batch `batch_no` (1-based, the engine's `batches_ingested` after
    /// the ingest). Models a lost enqueue; the supervisor must restore
    /// the chunk from its replay log or fail typed.
    DropPush {
        /// Destination shard of the dropped chunk.
        shard: usize,
        /// 1-based global batch number.
        batch_no: u64,
    },
    /// Stall the driver for `millis` before pushing `shard`'s chunk of
    /// global batch `batch_no` — a hung/slow queue, exercising timeout
    /// paths without killing anything.
    DelayPush {
        /// Destination shard of the delayed chunk.
        shard: usize,
        /// 1-based global batch number.
        batch_no: u64,
        /// Stall length in milliseconds.
        millis: u64,
    },
    /// Tear down serving connection `conn` (0-based accept order) just
    /// before the server writes its `frame`-th response frame (0-based) —
    /// the peer sees a clean EOF/reset at an exact frame boundary.
    DropConnection {
        /// 0-based connection ordinal in accept order.
        conn: u64,
        /// 0-based response-frame ordinal on that connection.
        frame: u64,
    },
    /// Leave serving connection `conn` half-open before its `frame`-th
    /// response frame: the socket stays up but the server goes silent,
    /// exercising client read-timeout paths.
    HalfOpenSocket {
        /// 0-based connection ordinal in accept order.
        conn: u64,
        /// 0-based response-frame ordinal on that connection.
        frame: u64,
    },
}

#[derive(Debug)]
struct Entry {
    site: FaultSite,
    fired: AtomicBool,
}

/// A deterministic schedule of injected faults (see module docs).
///
/// Build with the chaining constructors, wrap in an `Arc`, and hand to
/// `ParallelIngestEngine::with_fault_plan`. Plans are write-once: every
/// site fires at most one time.
#[derive(Debug, Default)]
pub struct FaultPlan {
    entries: Vec<Entry>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule a [`FaultSite::KillWorker`].
    pub fn kill_worker(mut self, shard: usize, batch_index: u64) -> Self {
        self.entries.push(Entry {
            site: FaultSite::KillWorker { shard, batch_index },
            fired: AtomicBool::new(false),
        });
        self
    }

    /// Schedule a [`FaultSite::KillMerger`].
    pub fn kill_merger(mut self, msg_index: u64) -> Self {
        self.entries.push(Entry {
            site: FaultSite::KillMerger { msg_index },
            fired: AtomicBool::new(false),
        });
        self
    }

    /// Schedule a [`FaultSite::DropPush`].
    pub fn drop_push(mut self, shard: usize, batch_no: u64) -> Self {
        self.entries.push(Entry {
            site: FaultSite::DropPush { shard, batch_no },
            fired: AtomicBool::new(false),
        });
        self
    }

    /// Schedule a [`FaultSite::DelayPush`].
    pub fn delay_push(mut self, shard: usize, batch_no: u64, millis: u64) -> Self {
        self.entries.push(Entry {
            site: FaultSite::DelayPush {
                shard,
                batch_no,
                millis,
            },
            fired: AtomicBool::new(false),
        });
        self
    }

    /// Schedule a [`FaultSite::DropConnection`].
    pub fn drop_connection(mut self, conn: u64, frame: u64) -> Self {
        self.entries.push(Entry {
            site: FaultSite::DropConnection { conn, frame },
            fired: AtomicBool::new(false),
        });
        self
    }

    /// Schedule a [`FaultSite::HalfOpenSocket`].
    pub fn half_open_socket(mut self, conn: u64, frame: u64) -> Self {
        self.entries.push(Entry {
            site: FaultSite::HalfOpenSocket { conn, frame },
            fired: AtomicBool::new(false),
        });
        self
    }

    /// Number of scheduled faults that have fired so far.
    pub fn fired_count(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| e.fired.load(Ordering::Relaxed))
            .count()
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn claim(&self, want: impl Fn(&FaultSite) -> bool) -> Option<FaultSite> {
        for e in &self.entries {
            if want(&e.site)
                && e.fired
                    .compare_exchange(false, true, Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok()
            {
                return Some(e.site);
            }
        }
        None
    }

    /// Engine hook: called by whichever thread is about to process
    /// logical shard `shard`'s `batch_index`-th data batch. Panics with
    /// [`INJECTED_PANIC`] if a matching [`FaultSite::KillWorker`] is
    /// scheduled and has not fired yet.
    pub fn fire_kill_worker(&self, shard: usize, batch_index: u64) {
        if self
            .claim(|s| matches!(s, FaultSite::KillWorker { shard: sh, batch_index: b } if *sh == shard && *b == batch_index))
            .is_some()
        {
            panic!("{INJECTED_PANIC} (worker at shard {shard}, batch {batch_index})");
        }
    }

    /// Engine hook: called by the merger before its `msg_index`-th
    /// message. Panics with [`INJECTED_PANIC`] on a scheduled
    /// [`FaultSite::KillMerger`].
    pub fn fire_kill_merger(&self, msg_index: u64) {
        if self
            .claim(|s| matches!(s, FaultSite::KillMerger { msg_index: m } if *m == msg_index))
            .is_some()
        {
            panic!("{INJECTED_PANIC} (merger at message {msg_index})");
        }
    }

    /// Engine hook: what the driver should do with the push of `shard`'s
    /// chunk of global batch `batch_no`.
    pub fn push_action(&self, shard: usize, batch_no: u64) -> PushAction {
        match self.claim(|s| match s {
            FaultSite::DropPush {
                shard: sh,
                batch_no: b,
            }
            | FaultSite::DelayPush {
                shard: sh,
                batch_no: b,
                ..
            } => *sh == shard && *b == batch_no,
            _ => false,
        }) {
            Some(FaultSite::DropPush { .. }) => PushAction::Drop,
            Some(FaultSite::DelayPush { millis, .. }) => {
                PushAction::Delay(Duration::from_millis(millis))
            }
            _ => PushAction::Deliver,
        }
    }
}

/// Verdict of [`FaultPlan::push_action`] for one driver→shard push.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushAction {
    /// Push normally.
    Deliver,
    /// Pretend the push was lost: do not enqueue the chunk.
    Drop,
    /// Sleep, then push normally.
    Delay(Duration),
}

impl FaultPlan {
    /// Serving-tier hook: what the server should do with response frame
    /// `frame` (0-based) on connection `conn` (0-based accept order).
    /// Called at exact frame boundaries — after the request was handled,
    /// before its reply frame hits the socket.
    pub fn wire_action(&self, conn: u64, frame: u64) -> WireAction {
        match self.claim(|s| match s {
            FaultSite::DropConnection { conn: c, frame: f }
            | FaultSite::HalfOpenSocket { conn: c, frame: f } => *c == conn && *f == frame,
            _ => false,
        }) {
            Some(FaultSite::DropConnection { .. }) => WireAction::DropConnection,
            Some(FaultSite::HalfOpenSocket { .. }) => WireAction::HalfOpen,
            _ => WireAction::Deliver,
        }
    }
}

/// Verdict of [`FaultPlan::wire_action`] for one server response frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireAction {
    /// Write the frame normally.
    Deliver,
    /// Close the connection instead of writing the frame.
    DropConnection,
    /// Keep the socket open but never write this frame (or anything
    /// after it) — a half-open peer.
    HalfOpen,
}

/// Whether a worker-thread panic payload is an injected kill (carries
/// [`INJECTED_PANIC`]). The engine's drop path uses this to avoid
/// re-propagating panics that the fault harness caused on purpose.
pub fn is_injected_panic(payload: &(dyn std::any::Any + Send)) -> bool {
    payload
        .downcast_ref::<&str>()
        .map(|s| s.contains(INJECTED_PANIC))
        .or_else(|| {
            payload
                .downcast_ref::<String>()
                .map(|s| s.contains(INJECTED_PANIC))
        })
        .unwrap_or(false)
}

/// Install a process-wide panic hook that suppresses the default
/// stderr backtrace spew for injected panics only; everything else
/// still prints through the previously installed hook. Idempotent
/// enough for tests (each call chains, but injected panics stay
/// silent). Call once at the top of a fault test binary.
pub fn silence_injected_panics() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !is_injected_panic(info.payload()) {
                previous(info);
            }
        }));
    });
}

/// Flip bit `bit` (counted from the buffer's first byte, LSB first) of a
/// copy of `blob` — torn-checkpoint material for the CRC frame to catch.
pub fn bit_flip(blob: &[u8], bit: usize) -> Vec<u8> {
    let mut out = blob.to_vec();
    if !out.is_empty() {
        let byte = (bit / 8) % out.len();
        out[byte] ^= 1 << (bit % 8);
    }
    out
}

/// A copy of `blob` truncated to `len` bytes (a torn write that lost its
/// tail).
pub fn truncate(blob: &[u8], len: usize) -> Vec<u8> {
    blob[..len.min(blob.len())].to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faults_fire_exactly_once() {
        let plan = FaultPlan::new().drop_push(1, 10).delay_push(0, 3, 5);
        assert_eq!(plan.push_action(1, 10), PushAction::Drop);
        assert_eq!(plan.push_action(1, 10), PushAction::Deliver);
        assert_eq!(
            plan.push_action(0, 3),
            PushAction::Delay(Duration::from_millis(5))
        );
        assert_eq!(plan.push_action(0, 3), PushAction::Deliver);
        assert_eq!(plan.fired_count(), 2);
    }

    #[test]
    fn unmatched_positions_do_nothing() {
        let plan = FaultPlan::new().kill_worker(2, 7).kill_merger(4);
        plan.fire_kill_worker(2, 6);
        plan.fire_kill_worker(1, 7);
        plan.fire_kill_merger(3);
        assert_eq!(plan.fired_count(), 0);
    }

    #[test]
    fn kill_worker_panics_with_marker() {
        let plan = FaultPlan::new().kill_worker(0, 0);
        let err =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| plan.fire_kill_worker(0, 0)))
                .unwrap_err();
        assert!(is_injected_panic(err.as_ref()));
        // One-shot: a second pass at the same position is quiet.
        plan.fire_kill_worker(0, 0);
        assert_eq!(plan.fired_count(), 1);
    }

    #[test]
    fn wire_faults_fire_exactly_once_at_exact_frames() {
        let plan = FaultPlan::new()
            .drop_connection(0, 2)
            .half_open_socket(1, 0);
        // Wrong connection or frame: nothing fires.
        assert_eq!(plan.wire_action(0, 1), WireAction::Deliver);
        assert_eq!(plan.wire_action(1, 2), WireAction::Deliver);
        assert_eq!(plan.fired_count(), 0);
        // Exact positions fire once, then stay quiet.
        assert_eq!(plan.wire_action(0, 2), WireAction::DropConnection);
        assert_eq!(plan.wire_action(0, 2), WireAction::Deliver);
        assert_eq!(plan.wire_action(1, 0), WireAction::HalfOpen);
        assert_eq!(plan.wire_action(1, 0), WireAction::Deliver);
        assert_eq!(plan.fired_count(), 2);
    }

    #[test]
    fn blob_corruption_helpers() {
        let blob = vec![0u8; 8];
        let flipped = bit_flip(&blob, 17);
        assert_eq!(flipped[2], 0b10);
        assert_eq!(truncate(&blob, 3).len(), 3);
        assert_eq!(truncate(&blob, 99).len(), 8);
    }
}
