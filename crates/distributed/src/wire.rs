//! Wire encoding for items shipped across the simulated network.
//!
//! The key-value-store reservoir (Memcached/Redis stand-in, §5.2) stores
//! *serialized* values, and the network cost model charges for the actual
//! encoded bytes — so item types must say how they go on the wire.

/// The [`Wire`] trait itself (and its impls for the experiment item
/// types) moved to its shared home in [`tbs_core::checkpoint`] in PR 4 —
/// the same encoding now backs both the simulated network and the
/// sampler checkpoints; this re-export keeps existing `crate::wire::Wire`
/// paths working.
pub use tbs_core::checkpoint::Wire;

/// Fixed per-message envelope (framing, key, opcode) charged by the cost
/// model on top of the payload, mirroring the Memcached binary protocol's
/// 24-byte header plus key.
pub const WIRE_ENVELOPE_BYTES: usize = 32;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_covers_header_for_every_type() {
        // The envelope must at least cover each payload's framing overhead
        // assumption used by the cost model.
        for size in [
            0u64.wire_size(),
            (0u32, 0u32).wire_size(),
            [0.0f64; 2].wire_size(),
        ] {
            assert!(size <= WIRE_ENVELOPE_BYTES + 256);
        }
    }
}
