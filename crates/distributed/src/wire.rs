//! Wire encoding for items shipped across the simulated network.
//!
//! The key-value-store reservoir (Memcached/Redis stand-in, §5.2) stores
//! *serialized* values, and the network cost model charges for the actual
//! encoded bytes — so item types must say how they go on the wire.

use bytes::{BufMut, Bytes, BytesMut};

/// Fixed per-message envelope (framing, key, opcode) charged by the cost
/// model on top of the payload, mirroring the Memcached binary protocol's
/// 24-byte header plus key.
pub const WIRE_ENVELOPE_BYTES: usize = 32;

/// A value that can be encoded to / decoded from bytes.
pub trait Wire: Clone {
    /// Encode to a byte buffer.
    fn encode(&self) -> Bytes;
    /// Decode from a byte buffer (must round-trip `encode`).
    fn decode(data: &[u8]) -> Self;
    /// Payload size on the wire.
    fn wire_size(&self) -> usize {
        self.encode().len()
    }
}

impl Wire for u64 {
    fn encode(&self) -> Bytes {
        Bytes::copy_from_slice(&self.to_le_bytes())
    }
    fn decode(data: &[u8]) -> Self {
        u64::from_le_bytes(data[..8].try_into().expect("8 bytes"))
    }
    fn wire_size(&self) -> usize {
        8
    }
}

impl Wire for (u32, u32) {
    fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(8);
        b.put_u32_le(self.0);
        b.put_u32_le(self.1);
        b.freeze()
    }
    fn decode(data: &[u8]) -> Self {
        (
            u32::from_le_bytes(data[..4].try_into().expect("4 bytes")),
            u32::from_le_bytes(data[4..8].try_into().expect("4 bytes")),
        )
    }
    fn wire_size(&self) -> usize {
        8
    }
}

impl Wire for [f64; 2] {
    fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(16);
        b.put_f64_le(self[0]);
        b.put_f64_le(self[1]);
        b.freeze()
    }
    fn decode(data: &[u8]) -> Self {
        [
            f64::from_le_bytes(data[..8].try_into().expect("8 bytes")),
            f64::from_le_bytes(data[8..16].try_into().expect("8 bytes")),
        ]
    }
    fn wire_size(&self) -> usize {
        16
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_roundtrip() {
        for v in [0u64, 1, u64::MAX, 0xDEAD_BEEF] {
            assert_eq!(u64::decode(&v.encode()), v);
            assert_eq!(v.wire_size(), 8);
        }
    }

    #[test]
    fn pair_roundtrip() {
        let v = (7u32, 99u32);
        assert_eq!(<(u32, u32)>::decode(&v.encode()), v);
    }

    #[test]
    fn f64_pair_roundtrip() {
        let v = [1.5f64, -2.25];
        assert_eq!(<[f64; 2]>::decode(&v.encode()), v);
        assert_eq!(v.wire_size(), 16);
    }

    #[test]
    fn envelope_covers_header_for_every_type() {
        // The envelope must at least cover each payload's framing overhead
        // assumption used by the cost model.
        for size in [
            0u64.wire_size(),
            (0u32, 0u32).wire_size(),
            [0.0f64; 2].wire_size(),
        ] {
            assert!(size <= WIRE_ENVELOPE_BYTES + 256);
        }
    }
}
