//! D-R-TBS — distributed reservoir-based time-biased sampling (§5).
//!
//! The driver (master) holds the scalar state — total weight `W`, sample
//! weight `C`, and the single partial item — while the full items live in a
//! distributed reservoir. Each batch requires coordinated delete/insert
//! decisions; the four strategies benchmarked in Figure 7 are:
//!
//! | Strategy | Reservoir | Decisions | Insert-item retrieval |
//! |---|---|---|---|
//! | [`Strategy::CentKvRepartitionJoin`] | key-value store | master picks slots | repartition join (ships the whole batch) |
//! | [`Strategy::CentKvCoLocatedJoin`]   | key-value store | master picks slots | co-located join (ships only locations) |
//! | [`Strategy::CentCoPartitioned`]     | co-partitioned  | master picks slots | co-located, items never move |
//! | [`Strategy::DistCoPartitioned`]     | co-partitioned  | master picks per-worker *counts* (multivariate hypergeometric); workers choose locally with jump-ahead RNG streams | local |
//!
//! Every strategy computes the *same distribution* over samples as
//! single-node R-TBS — the statistical-equivalence tests in this module
//! verify it — they differ only in data movement and coordination, which
//! the [`CostTracker`] accounts.

use crate::checkpoint::CheckpointError;
use crate::cluster::WorkerPool;
use crate::copart::CoPartitionedReservoir;
use crate::cost::{CostModel, CostTracker};
use crate::kvstore::KvReservoir;
use crate::partition::Partitioned;
use crate::wire::{Wire, WIRE_ENVELOPE_BYTES};
use rand::{Rng, RngCore, SeedableRng};
use tbs_core::traits::BatchSampler;
use tbs_core::util::draw_without_replacement;
use tbs_stats::multivariate::multivariate_hypergeometric;
use tbs_stats::rng::Xoshiro256PlusPlus;
use tbs_stats::rounding::stochastic_round;

/// The four implementation strategies of Figure 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Centralized decisions, key-value store, repartition join.
    CentKvRepartitionJoin,
    /// Centralized decisions, key-value store, co-located join.
    CentKvCoLocatedJoin,
    /// Centralized decisions, co-partitioned reservoir.
    CentCoPartitioned,
    /// Distributed decisions, co-partitioned reservoir.
    DistCoPartitioned,
}

impl Strategy {
    /// All four strategies in Figure 7's bar order.
    pub fn all() -> [Strategy; 4] {
        [
            Strategy::CentKvRepartitionJoin,
            Strategy::CentKvCoLocatedJoin,
            Strategy::CentCoPartitioned,
            Strategy::DistCoPartitioned,
        ]
    }

    /// Figure 7's bar label.
    pub fn label(&self) -> &'static str {
        match self {
            Strategy::CentKvRepartitionJoin => "D-R-TBS (Cent,KV,RJ)",
            Strategy::CentKvCoLocatedJoin => "D-R-TBS (Cent,KV,CJ)",
            Strategy::CentCoPartitioned => "D-R-TBS (Cent,CP)",
            Strategy::DistCoPartitioned => "D-R-TBS (Dist,CP)",
        }
    }

    fn uses_kv(&self) -> bool {
        matches!(
            self,
            Strategy::CentKvRepartitionJoin | Strategy::CentKvCoLocatedJoin
        )
    }
}

/// Configuration of a D-R-TBS instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DrtbsConfig {
    /// Decay rate λ.
    pub lambda: f64,
    /// Reservoir capacity n.
    pub capacity: usize,
    /// Number of workers k.
    pub workers: usize,
    /// Number of key-value store nodes (KV strategies only).
    pub kv_nodes: usize,
    /// Which Figure-7 strategy to run.
    pub strategy: Strategy,
    /// Cluster cost constants.
    pub cost_model: CostModel,
    /// Run worker phases on real threads.
    pub threaded: bool,
}

impl DrtbsConfig {
    /// Reasonable laptop-scale defaults mirroring §6.1 (scaled down).
    pub fn new(lambda: f64, capacity: usize, workers: usize, strategy: Strategy) -> Self {
        Self {
            lambda,
            capacity,
            workers,
            kv_nodes: workers,
            strategy,
            cost_model: CostModel::default(),
            threaded: false,
        }
    }
}

enum Store<T: Wire> {
    Kv(KvReservoir<T>),
    Cp(CoPartitionedReservoir<T>),
}

/// Distributed R-TBS instance.
pub struct DRTbs<T: Wire + Send + 'static> {
    cfg: DrtbsConfig,
    store: Store<T>,
    /// Driver-held partial item of the latent sample.
    partial: Option<T>,
    /// Sample weight C (expected realized size).
    sample_weight: f64,
    /// Total decayed weight W.
    total_weight: f64,
    master_rng: Xoshiro256PlusPlus,
    worker_rngs: Vec<Xoshiro256PlusPlus>,
    pool: WorkerPool,
    steps: u64,
    last_cost: CostTracker,
    cumulative_cost: CostTracker,
}

impl<T: Wire + Send + 'static> DRTbs<T> {
    /// Create an empty distributed sampler.
    ///
    /// # Panics
    ///
    /// Panics on non-positive capacity/worker counts or invalid λ.
    pub fn new(cfg: DrtbsConfig, seed: u64) -> Self {
        assert!(cfg.capacity > 0, "capacity must be positive");
        assert!(cfg.workers > 0, "need at least one worker");
        assert!(
            cfg.lambda.is_finite() && cfg.lambda >= 0.0,
            "decay rate must be finite and non-negative"
        );
        let master_rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        // Worker substreams: jump-ahead offsets 1..=k of the master stream.
        let mut cursor = master_rng.clone();
        cursor.jump();
        let worker_rngs = cursor.split_streams(cfg.workers);
        let store = if cfg.strategy.uses_kv() {
            Store::Kv(KvReservoir::new(cfg.kv_nodes))
        } else {
            Store::Cp(CoPartitionedReservoir::new(cfg.workers))
        };
        Self {
            pool: if cfg.threaded {
                WorkerPool::threaded()
            } else {
                WorkerPool::sequential()
            },
            cfg,
            store,
            partial: None,
            sample_weight: 0.0,
            total_weight: 0.0,
            master_rng,
            worker_rngs,
            steps: 0,
            last_cost: CostTracker::new(),
            cumulative_cost: CostTracker::new(),
        }
    }

    /// Total decayed weight `W_t`.
    pub fn total_weight(&self) -> f64 {
        self.total_weight
    }

    /// Sample weight `C_t = min(n, W_t)`.
    pub fn sample_weight(&self) -> f64 {
        self.sample_weight
    }

    /// Simulated cost of the most recent batch.
    pub fn last_cost(&self) -> CostTracker {
        self.last_cost
    }

    /// Simulated cost accumulated over all batches.
    pub fn cumulative_cost(&self) -> CostTracker {
        self.cumulative_cost
    }

    /// Number of full items currently stored.
    pub fn stored_full_items(&self) -> usize {
        match &self.store {
            Store::Kv(kv) => kv.len() as usize,
            Store::Cp(cp) => cp.len(),
        }
    }

    /// Process one arriving batch, returning its simulated cost.
    ///
    /// The only error source is a reservoir value that no longer decodes
    /// as `T` — impossible for state built through this API, and caught
    /// at [`DRTbs::restore`] time for checkpointed state, but surfaced
    /// here as a typed [`CheckpointError`] instead of a panic so a
    /// serving tier fed hostile blobs degrades into an error response.
    pub fn observe_batch(&mut self, batch: Vec<T>) -> Result<CostTracker, CheckpointError> {
        let model = self.cfg.cost_model;
        let mut cost = CostTracker::new();
        let k = self.cfg.workers;
        let n = self.cfg.capacity as f64;
        let decay = (-self.cfg.lambda).exp();
        let batch = Partitioned::from_items(batch, k);
        let b = batch.len();

        // Phase 0: ingest the batch (every worker reads its partition from
        // the streaming receiver) and report local sizes to the master.
        let ingest: Vec<u64> = batch.sizes().iter().map(|&s| s as u64).collect();
        cost.parallel_phase(&model, &ingest);
        cost.network(&model, k as u64, 8 * k as u64);

        if self.total_weight < n {
            // ——— Previously unsaturated (C = W). ———
            self.total_weight *= decay;
            if self.total_weight > 0.0 && self.sample_weight > 0.0 {
                self.dist_downsample(self.total_weight, &mut cost)?;
            } else if self.total_weight == 0.0 {
                self.clear_all(&mut cost)?;
            }
            self.insert_batch_full(&batch, &mut cost);
            self.total_weight += b as f64;
            self.sample_weight = self.total_weight;
            if self.total_weight > n {
                self.dist_downsample(n, &mut cost)?;
            }
        } else {
            // ——— Previously saturated (C = n, no partial). ———
            debug_assert!(self.partial.is_none());
            let new_weight = self.total_weight * decay + b as f64;
            if new_weight >= n {
                let m_exact = b as f64 * n / new_weight;
                let m = (stochastic_round(&mut self.master_rng, m_exact) as usize)
                    .min(b)
                    .min(self.cfg.capacity);
                let inserts = self.select_inserts(&batch, m, &mut cost);
                self.replace_full(inserts, &mut cost);
            } else {
                self.dist_downsample(new_weight - b as f64, &mut cost)?;
                self.insert_batch_full(&batch, &mut cost);
            }
            self.total_weight = new_weight;
            self.sample_weight = new_weight.min(n);
        }

        self.steps += 1;
        self.last_cost = cost;
        self.cumulative_cost.merge(&cost);
        debug_assert_eq!(
            self.stored_full_items(),
            self.sample_weight.floor() as usize,
            "full-item count diverged from floor(C)"
        );
        Ok(cost)
    }

    /// Select `m` insert items from the batch, returned grouped per worker.
    ///
    /// Charges master work and control/shuffle network traffic; the worker
    /// phase that physically touches the picks is charged by
    /// [`DRTbs::replace_full`], where it fuses with the deletes/inserts
    /// (one Spark stage over the co-partitioned data).
    fn select_inserts(
        &mut self,
        batch: &Partitioned<T>,
        m: usize,
        cost: &mut CostTracker,
    ) -> Vec<Vec<T>> {
        let model = self.cfg.cost_model;
        let k = self.cfg.workers;
        match self.cfg.strategy {
            Strategy::CentKvRepartitionJoin => {
                // Master generates m batch slot numbers…
                cost.master_ops(&model, m as u64);
                let locations = batch.choose_locations(m, &mut self.master_rng);
                // …and retrieves the items with a standard repartition join:
                // BOTH the location set Q and the whole batch are shuffled,
                // paying serialize/write/read per item plus the wire bytes.
                let batch_bytes: u64 = (0..k)
                    .map(|j| {
                        batch
                            .partition(j)
                            .iter()
                            .map(|x| (x.wire_size() + WIRE_ENVELOPE_BYTES) as u64)
                            .sum::<u64>()
                    })
                    .sum();
                cost.network(&model, 2 * k as u64, 16 * m as u64);
                cost.bulk(&model, batch_bytes);
                let sizes: Vec<u64> = batch.sizes().iter().map(|&s| s as u64).collect();
                cost.parallel_phase_at(&model, &sizes, model.shuffle_per_item);
                let mut per_worker = vec![Vec::new(); k];
                for loc in locations {
                    per_worker[loc.partition]
                        .push(batch.partition(loc.partition)[loc.position].clone());
                }
                per_worker
            }
            Strategy::CentKvCoLocatedJoin | Strategy::CentCoPartitioned => {
                // Master generates m slot numbers, ships only the (small)
                // co-partitioned location set Q (Figure 6(a)); the
                // co-located join itself happens in the apply phase.
                cost.master_ops(&model, m as u64);
                let locations = batch.choose_locations(m, &mut self.master_rng);
                cost.network(&model, k as u64, 16 * m as u64);
                let mut per_worker = vec![Vec::new(); k];
                for loc in locations {
                    per_worker[loc.partition]
                        .push(batch.partition(loc.partition)[loc.position].clone());
                }
                per_worker
            }
            Strategy::DistCoPartitioned => {
                // Master draws only per-worker counts (Figure 6(b)) and
                // ships k tiny messages; workers select locally with their
                // own jump-ahead RNG substreams (work charged in apply).
                cost.master_ops(&model, k as u64);
                let sizes: Vec<u64> = batch.sizes().iter().map(|&s| s as u64).collect();
                let counts = multivariate_hypergeometric(&mut self.master_rng, &sizes, m as u64);
                cost.network(&model, k as u64, 8 * k as u64);
                let mut rngs = std::mem::take(&mut self.worker_rngs);
                let mut jobs: Vec<(Vec<T>, Xoshiro256PlusPlus, u64)> = batch
                    .sizes()
                    .iter()
                    .enumerate()
                    .map(|(j, _)| {
                        (
                            batch.partition(j).to_vec(),
                            std::mem::replace(&mut rngs[j], Xoshiro256PlusPlus::seed_from_u64(0)),
                            counts[j],
                        )
                    })
                    .collect();
                let picked: Vec<Vec<T>> =
                    self.pool.run_over(&mut jobs, |_, (items, rng, count)| {
                        draw_without_replacement(items, *count as usize, rng)
                    });
                for (j, (_, rng, _)) in jobs.into_iter().enumerate() {
                    rngs[j] = rng;
                }
                self.worker_rngs = rngs;
                picked
            }
        }
    }

    /// Saturated→saturated replacement: delete `m` uniform victims, insert
    /// the `m` selected batch items.
    fn replace_full(&mut self, inserts: Vec<Vec<T>>, cost: &mut CostTracker) {
        let model = self.cfg.cost_model;
        let m: usize = inserts.iter().map(Vec::len).sum();
        let pick_counts: Vec<u64> = inserts.iter().map(|v| v.len() as u64).collect();
        match &mut self.store {
            Store::Kv(kv) => {
                // Workers retrieve their picks (co-located probe); for RJ
                // the shuffle phase was already charged in select_inserts.
                if self.cfg.strategy == Strategy::CentKvCoLocatedJoin {
                    cost.parallel_phase(&model, &pick_counts);
                }
                // Master picks companion destination slots; each insert item
                // then crosses the network to its KV node, overwriting a
                // victim (delete + insert in one op).
                cost.master_ops(&model, m as u64);
                let flat: Vec<T> = inserts.into_iter().flatten().collect();
                kv.replace_random(&flat, &mut self.master_rng, &model, cost);
            }
            Store::Cp(cp) => {
                // One fused stage over the co-partitioned reservoir: each
                // worker retrieves its picks, deletes its victims, appends
                // its inserts — no data items cross the network.
                let delete_counts: Vec<u64> = match self.cfg.strategy {
                    Strategy::DistCoPartitioned => {
                        cost.master_ops(&model, self.cfg.workers as u64);
                        let sizes: Vec<u64> = cp.sizes().iter().map(|&s| s as u64).collect();
                        let counts =
                            multivariate_hypergeometric(&mut self.master_rng, &sizes, m as u64);
                        cp.delete_counts(&counts, &mut self.worker_rngs, &model, cost);
                        counts
                    }
                    _ => {
                        let (_, counts) = cp.delete_slots(m, &mut self.master_rng, &model, cost);
                        counts
                    }
                };
                let fused: Vec<u64> = pick_counts
                    .iter()
                    .zip(&delete_counts)
                    .map(|(&a, &b)| 2 * a + b)
                    .collect();
                cost.parallel_phase(&model, &fused);
                cp.insert_local(inserts);
            }
        }
    }

    /// Accept an entire batch as full items (unsaturated transitions).
    fn insert_batch_full(&mut self, batch: &Partitioned<T>, cost: &mut CostTracker) {
        let model = self.cfg.cost_model;
        let sizes: Vec<u64> = batch.sizes().iter().map(|&s| s as u64).collect();
        cost.parallel_phase(&model, &sizes);
        match &mut self.store {
            Store::Kv(kv) => {
                let flat: Vec<T> = batch.collect();
                kv.append(&flat, &model, cost);
            }
            Store::Cp(cp) => {
                let per_worker: Vec<Vec<T>> = (0..batch.num_partitions())
                    .map(|j| batch.partition(j).to_vec())
                    .collect();
                cp.insert_local(per_worker);
            }
        }
    }

    /// Remove `count` uniformly chosen full items, returning them. Only
    /// the KV strategies can fail (they decode stored bytes); the
    /// co-partitioned reservoir holds `T` directly.
    fn remove_random_full(
        &mut self,
        count: usize,
        cost: &mut CostTracker,
    ) -> Result<Vec<T>, CheckpointError> {
        if count == 0 {
            return Ok(Vec::new());
        }
        let model = self.cfg.cost_model;
        match &mut self.store {
            Store::Kv(kv) => {
                cost.master_ops(&model, count as u64);
                kv.shrink_random(count, &mut self.master_rng, &model, cost)
            }
            Store::Cp(cp) => match self.cfg.strategy {
                Strategy::DistCoPartitioned => {
                    cost.master_ops(&model, self.cfg.workers as u64);
                    let sizes: Vec<u64> = cp.sizes().iter().map(|&s| s as u64).collect();
                    let counts =
                        multivariate_hypergeometric(&mut self.master_rng, &sizes, count as u64);
                    let removed = cp.delete_counts(&counts, &mut self.worker_rngs, &model, cost);
                    cost.parallel_phase(&model, &counts);
                    Ok(removed)
                }
                _ => {
                    let (removed, counts) =
                        cp.delete_slots(count, &mut self.master_rng, &model, cost);
                    cost.parallel_phase(&model, &counts);
                    Ok(removed)
                }
            },
        }
    }

    /// Push an item back into the distributed full set (a swap's displaced
    /// partial item).
    fn add_full(&mut self, item: T, cost: &mut CostTracker) {
        let model = self.cfg.cost_model;
        match &mut self.store {
            Store::Kv(kv) => kv.append(&[item], &model, cost),
            Store::Cp(cp) => {
                // One control+data message to a uniformly chosen worker.
                cost.network(&model, 1, (item.wire_size() + WIRE_ENVELOPE_BYTES) as u64);
                let j = self.master_rng.gen_range(0..cp.num_partitions());
                cp.insert_local({
                    let mut v: Vec<Vec<T>> = (0..cp.num_partitions()).map(|_| Vec::new()).collect();
                    v[j].push(item);
                    v
                });
            }
        }
    }

    /// Drop every stored full item (total weight decayed to zero).
    fn clear_all(&mut self, cost: &mut CostTracker) -> Result<(), CheckpointError> {
        let count = self.stored_full_items();
        if count > 0 {
            self.remove_random_full(count, cost)?;
        }
        self.partial = None;
        self.sample_weight = 0.0;
        Ok(())
    }

    /// Distributed mirror of Algorithm 3: downsample the latent sample from
    /// weight `C = sample_weight` to `target`, master-driven. Statistically
    /// identical to `tbs_core::downsample::downsample`.
    fn dist_downsample(
        &mut self,
        target: f64,
        cost: &mut CostTracker,
    ) -> Result<(), CheckpointError> {
        let c = self.sample_weight;
        let c_prime = target;
        assert!(
            c_prime > 0.0 && c_prime <= c,
            "downsample target must lie in (0, C]; target={c_prime}, C={c}"
        );
        let frac_c = c - c.floor();
        let frac_cp = c_prime - c_prime.floor();
        let floor_c = c.floor() as usize;
        let floor_cp = c_prime.floor() as usize;
        let u: f64 = self.master_rng.gen();

        if floor_cp == 0 {
            let keep_partial_prob = if c > 0.0 { frac_c / c } else { 0.0 };
            if u > keep_partial_prob {
                // Swap1 then clear: a uniform full item becomes the partial;
                // the old partial is discarded with the cleared set.
                let swapped = self.remove_random_full(1, cost)?.pop();
                self.partial = swapped;
            }
            let remaining = self.stored_full_items();
            if remaining > 0 {
                self.remove_random_full(remaining, cost)?;
            }
        } else if floor_cp == floor_c {
            // INVARIANT (this and both branches below): ⌊C′⌋ ≥ 1 here, and
            // a latent sample of weight C stores exactly ⌊C⌋ ≥ ⌊C′⌋ full
            // items — so after retaining ⌊C′⌋ (or ⌊C′⌋ + 1) of them, at
            // least one full item always remains for the Swap1/Move1 pop.
            let rho = (1.0 - (c_prime / c) * frac_c) / (1.0 - frac_cp);
            if u > rho {
                let swapped = self.remove_random_full(1, cost)?.pop().expect("full item");
                if let Some(old) = self.partial.replace(swapped) {
                    self.add_full(old, cost);
                }
            }
        } else if u <= (c_prime / c) * frac_c {
            // Retain ⌊C′⌋ full items, then Swap1.
            self.remove_random_full(floor_c - floor_cp, cost)?;
            let swapped = self.remove_random_full(1, cost)?.pop().expect("full item");
            if let Some(old) = self.partial.replace(swapped) {
                self.add_full(old, cost);
            }
        } else {
            // Retain ⌊C′⌋ + 1 full items, then Move1 (old partial dropped).
            self.remove_random_full(floor_c - floor_cp - 1, cost)?;
            let swapped = self.remove_random_full(1, cost)?.pop().expect("full item");
            self.partial = Some(swapped);
        }

        self.sample_weight = c_prime;
        if frac_cp == 0.0 {
            self.partial = None;
        }
        Ok(())
    }

    /// Serialize the full sampler state — configuration, weights, RNG
    /// substream positions, partial item, reservoir contents — into a
    /// self-contained checkpoint blob (§5.1 fault tolerance). Restoring
    /// with [`DRTbs::restore`] continues the stream bit-identically.
    pub fn checkpoint(&self) -> bytes::Bytes {
        use crate::checkpoint::Writer;
        let mut w = Writer::new();
        // Configuration.
        w.put_f64(self.cfg.lambda);
        w.put_u64(self.cfg.capacity as u64);
        w.put_u64(self.cfg.workers as u64);
        w.put_u64(self.cfg.kv_nodes as u64);
        w.put_u8(match self.cfg.strategy {
            Strategy::CentKvRepartitionJoin => 0,
            Strategy::CentKvCoLocatedJoin => 1,
            Strategy::CentCoPartitioned => 2,
            Strategy::DistCoPartitioned => 3,
        });
        w.put_u8(u8::from(self.cfg.threaded));
        let m = &self.cfg.cost_model;
        for v in [
            m.net_latency_per_msg,
            m.net_bytes_per_sec,
            m.master_per_slot,
            m.worker_per_item,
            m.shuffle_per_item,
            m.per_phase_overhead,
            m.kv_per_op,
        ] {
            w.put_f64(v);
        }
        // Scalar sampler state.
        w.put_f64(self.total_weight);
        w.put_f64(self.sample_weight);
        w.put_u64(self.steps);
        // RNG substream positions.
        w.put_rng_state(self.master_rng.state());
        w.put_u32(self.worker_rngs.len() as u32);
        for rng in &self.worker_rngs {
            w.put_rng_state(rng.state());
        }
        // Partial item.
        match &self.partial {
            Some(p) => {
                w.put_u8(1);
                w.put_bytes(&p.encode());
            }
            None => w.put_u8(0),
        }
        // Reservoir contents.
        match &self.store {
            Store::Kv(kv) => {
                w.put_u8(0);
                let entries = kv.snapshot();
                w.put_u64(entries.len() as u64);
                for (slot, value) in entries {
                    w.put_u64(slot);
                    w.put_bytes(&value);
                }
            }
            Store::Cp(cp) => {
                w.put_u8(1);
                w.put_u32(cp.num_partitions() as u32);
                for j in 0..cp.num_partitions() {
                    let part = cp.partition(j);
                    w.put_u32(part.len() as u32);
                    for item in part {
                        w.put_bytes(&item.encode());
                    }
                }
            }
        }
        w.finish()
    }

    /// Rebuild a sampler from a checkpoint blob created by
    /// [`DRTbs::checkpoint`].
    pub fn restore(blob: bytes::Bytes) -> Result<Self, crate::checkpoint::CheckpointError> {
        use crate::checkpoint::{CheckpointError, Reader};
        let mut r = Reader::new(blob)?;
        let lambda = r.get_f64()?;
        let capacity = r.get_u64()? as usize;
        let workers = r.get_u64()? as usize;
        let kv_nodes = r.get_u64()? as usize;
        let strategy = match r.get_u8()? {
            0 => Strategy::CentKvRepartitionJoin,
            1 => Strategy::CentKvCoLocatedJoin,
            2 => Strategy::CentCoPartitioned,
            3 => Strategy::DistCoPartitioned,
            _ => return Err(CheckpointError::Corrupt("strategy tag")),
        };
        let threaded = r.get_u8()? == 1;
        let cost_model = CostModel {
            net_latency_per_msg: r.get_f64()?,
            net_bytes_per_sec: r.get_f64()?,
            master_per_slot: r.get_f64()?,
            worker_per_item: r.get_f64()?,
            shuffle_per_item: r.get_f64()?,
            per_phase_overhead: r.get_f64()?,
            kv_per_op: r.get_f64()?,
        };
        let cfg = DrtbsConfig {
            lambda,
            capacity,
            workers,
            kv_nodes,
            strategy,
            cost_model,
            threaded,
        };

        let total_weight = r.get_f64()?;
        let sample_weight = r.get_f64()?;
        let steps = r.get_u64()?;

        let master_rng = Xoshiro256PlusPlus::from_state(r.get_rng_state()?);
        let n_rngs = r.get_u32()? as usize;
        if n_rngs != workers {
            return Err(CheckpointError::Corrupt("worker rng count"));
        }
        let mut worker_rngs = Vec::with_capacity(n_rngs);
        for _ in 0..n_rngs {
            worker_rngs.push(Xoshiro256PlusPlus::from_state(r.get_rng_state()?));
        }

        let partial = match r.get_u8()? {
            0 => None,
            1 => Some(r.get_item()?),
            _ => return Err(CheckpointError::Corrupt("partial tag")),
        };

        let store = match r.get_u8()? {
            0 => {
                let count = r.get_u64()? as usize;
                let mut entries = Vec::with_capacity(count);
                for _ in 0..count {
                    let slot = r.get_u64()?;
                    let value = r.get_bytes()?;
                    // Reject undecodable reservoir payloads here, at the
                    // trust boundary, so a hostile blob cannot smuggle
                    // bytes that only fail later inside the ingest path.
                    if T::try_decode(&value).is_none() {
                        return Err(CheckpointError::Corrupt("kv item payload"));
                    }
                    entries.push((slot, value));
                }
                Store::Kv(KvReservoir::restore(kv_nodes, entries))
            }
            1 => {
                let k = r.get_u32()? as usize;
                if k != workers {
                    return Err(CheckpointError::Corrupt("partition count"));
                }
                let mut cp = CoPartitionedReservoir::new(k);
                let mut per_worker = Vec::with_capacity(k);
                for _ in 0..k {
                    let count = r.get_u32()? as usize;
                    let mut part = Vec::with_capacity(count);
                    for _ in 0..count {
                        part.push(r.get_item()?);
                    }
                    per_worker.push(part);
                }
                cp.insert_local(per_worker);
                Store::Cp(cp)
            }
            _ => return Err(CheckpointError::Corrupt("store tag")),
        };

        Ok(Self {
            pool: if cfg.threaded {
                WorkerPool::threaded()
            } else {
                WorkerPool::sequential()
            },
            cfg,
            store,
            partial,
            sample_weight,
            total_weight,
            master_rng,
            worker_rngs,
            steps,
            last_cost: CostTracker::new(),
            cumulative_cost: CostTracker::new(),
        })
    }

    /// Collect and realize the current sample (driver-side). Fails only
    /// when a KV-stored value no longer decodes as `T` — see
    /// [`DRTbs::observe_batch`] for when that can happen.
    pub fn realize_sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<Vec<T>, CheckpointError> {
        let model = self.cfg.cost_model;
        let mut cost = CostTracker::new();
        let mut out = match &self.store {
            Store::Kv(kv) => kv.collect(&model, &mut cost)?,
            Store::Cp(cp) => cp.collect(&model, &mut cost),
        };
        if let Some(p) = &self.partial {
            let frac = self.sample_weight - self.sample_weight.floor();
            if rng.gen::<f64>() < frac {
                out.push(p.clone());
            }
        }
        Ok(out)
    }
}

impl<T: Wire + Send + 'static> BatchSampler<T> for DRTbs<T> {
    fn observe(&mut self, batch: Vec<T>, _rng: &mut dyn RngCore) {
        // Randomness comes from the instance's own master/worker streams so
        // distributed runs stay reproducible; the harness RNG is unused.
        // The trait has no error channel; decode failures are impossible
        // here because `restore` validates every stored payload — the
        // fallible typed path is `observe_batch` itself.
        self.observe_batch(batch)
            .expect("restore-validated reservoir payload decodes");
    }

    fn sample(&self, rng: &mut dyn RngCore) -> Vec<T> {
        self.realize_sample(rng)
            .expect("restore-validated reservoir payload decodes")
    }

    fn expected_size(&self) -> f64 {
        self.sample_weight
    }

    fn max_size(&self) -> Option<usize> {
        Some(self.cfg.capacity)
    }

    fn decay_rate(&self) -> f64 {
        self.cfg.lambda
    }

    fn batches_observed(&self) -> u64 {
        self.steps
    }

    fn name(&self) -> &'static str {
        self.cfg.strategy.label()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_schedule(strategy: Strategy, schedule: &[u64], seed: u64) -> DRTbs<u64> {
        let cfg = DrtbsConfig::new(0.1, 50, 4, strategy);
        let mut d = DRTbs::new(cfg, seed);
        let mut next = 0u64;
        for &b in schedule {
            let batch: Vec<u64> = (0..b)
                .map(|_| {
                    next += 1;
                    next
                })
                .collect();
            d.observe_batch(batch).unwrap();
        }
        d
    }

    #[test]
    fn weight_recursion_matches_all_strategies() {
        let schedule = [30u64, 0, 80, 5, 5, 0, 0, 120, 10];
        for strategy in Strategy::all() {
            let d = run_schedule(strategy, &schedule, 7);
            let mut w = 0.0f64;
            for &b in &schedule {
                w = w * (-0.1f64).exp() + b as f64;
            }
            assert!(
                (d.total_weight() - w).abs() < 1e-6,
                "{strategy:?}: weight {} vs {w}",
                d.total_weight()
            );
            assert!(
                (d.sample_weight() - w.min(50.0)).abs() < 1e-6,
                "{strategy:?}: C {} vs {}",
                d.sample_weight(),
                w.min(50.0)
            );
        }
    }

    #[test]
    fn sample_never_exceeds_capacity() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        for strategy in Strategy::all() {
            let d = run_schedule(strategy, &[10, 200, 0, 0, 37, 90, 1, 0, 0, 0, 0, 250], 11);
            for _ in 0..20 {
                assert!(
                    d.realize_sample(&mut rng).unwrap().len() <= 50,
                    "{strategy:?}"
                );
            }
        }
    }

    #[test]
    fn full_item_count_tracks_floor_of_weight() {
        for strategy in Strategy::all() {
            let d = run_schedule(strategy, &[8, 0, 0, 3, 0, 60, 0, 0, 0, 0], 3);
            assert_eq!(
                d.stored_full_items(),
                d.sample_weight().floor() as usize,
                "{strategy:?}"
            );
        }
    }

    #[test]
    fn matches_single_node_rtbs_size_trajectory() {
        // C_t is a deterministic function of the batch sizes, so the
        // distributed and single-node samplers must agree exactly.
        let schedule = [20u64, 20, 0, 0, 100, 0, 5, 5, 5, 0, 0, 0, 0, 40];
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(5);
        let mut single: tbs_core::RTbs<u64> = tbs_core::RTbs::new(0.1, 50);
        let cfg = DrtbsConfig::new(0.1, 50, 4, Strategy::DistCoPartitioned);
        let mut dist = DRTbs::new(cfg, 9);
        for (t, &b) in schedule.iter().enumerate() {
            let batch: Vec<u64> = (0..b).map(|i| t as u64 * 1000 + i).collect();
            single.observe(batch.clone(), &mut rng);
            dist.observe_batch(batch).unwrap();
            assert!(
                (single.sample_weight() - dist.sample_weight()).abs() < 1e-9,
                "diverged at t={t}"
            );
            assert!((single.total_weight() - dist.total_weight()).abs() < 1e-9);
        }
    }

    #[test]
    fn inclusion_probabilities_match_theory() {
        // Monte-Carlo check of Pr[i ∈ S_t] = (C_t/W_t)·w_t(i) for the
        // distributed sampler (DistCP exercises multivariate-hypergeometric
        // decisions).
        let lambda = 0.4f64;
        let n = 6usize;
        let schedule: &[u64] = &[4, 4, 0, 8, 3];
        let trials = 40_000usize;
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(13);
        let mut appear = vec![0u64; schedule.len()];
        let mut w_final = 0.0;
        let mut c_final = 0.0;
        for trial in 0..trials {
            let cfg = DrtbsConfig::new(lambda, n, 3, Strategy::DistCoPartitioned);
            let mut d: DRTbs<(u32, u32)> = DRTbs::new(cfg, trial as u64);
            for (bi, &b) in schedule.iter().enumerate() {
                d.observe_batch((0..b as u32).map(|i| (bi as u32, i)).collect())
                    .unwrap();
            }
            w_final = d.total_weight();
            c_final = d.sample_weight();
            for (bi, _) in d.realize_sample(&mut rng).unwrap() {
                appear[bi as usize] += 1;
            }
        }
        let t_final = schedule.len() as f64 - 1.0;
        for (bi, &b) in schedule.iter().enumerate() {
            if b == 0 {
                continue;
            }
            let w_item = (-lambda * (t_final - bi as f64)).exp();
            let expect = (c_final / w_final) * w_item;
            let phat = appear[bi] as f64 / (trials as f64 * b as f64);
            let tol = 4.5 * (expect * (1.0 - expect) / (trials as f64 * b as f64)).sqrt() + 0.004;
            assert!(
                (phat - expect).abs() < tol,
                "batch {bi}: phat {phat} vs expect {expect}"
            );
        }
    }

    #[test]
    fn kv_strategies_ship_items_cp_strategies_do_not() {
        // Steady saturated state: KV pays item bytes per batch; CP only
        // control bytes.
        let mut costs = std::collections::HashMap::new();
        for strategy in Strategy::all() {
            let cfg = DrtbsConfig::new(0.07, 1000, 4, strategy);
            let mut d = DRTbs::new(cfg, 21);
            // Saturate.
            d.observe_batch((0..2000u64).collect()).unwrap();
            // Measure one steady-state batch.
            let cost = d.observe_batch((0..1000u64).collect()).unwrap();
            costs.insert(strategy.label(), cost.bytes_shipped);
        }
        let rj = costs["D-R-TBS (Cent,KV,RJ)"];
        let cj = costs["D-R-TBS (Cent,KV,CJ)"];
        let cp = costs["D-R-TBS (Cent,CP)"];
        let dist = costs["D-R-TBS (Dist,CP)"];
        assert!(rj > cj, "RJ ({rj}) must ship more than CJ ({cj})");
        assert!(cj > cp, "CJ ({cj}) must ship more than CP ({cp})");
        assert!(cp > dist, "CP ({cp}) must ship more than Dist ({dist})");
    }

    #[test]
    fn figure7_cost_ordering() {
        // Simulated per-batch times must reproduce Figure 7's ordering:
        // RJ > CJ > CP > Dist.
        let mut elapsed = Vec::new();
        for strategy in Strategy::all() {
            let cfg = DrtbsConfig::new(0.07, 20_000, 8, strategy);
            let mut d = DRTbs::new(cfg, 33);
            d.observe_batch((0..30_000u64).collect()).unwrap(); // saturate
            let mut total = 0.0;
            for _ in 0..5 {
                total += d.observe_batch((0..10_000u64).collect()).unwrap().elapsed;
            }
            elapsed.push((strategy.label(), total / 5.0));
        }
        for pair in elapsed.windows(2) {
            assert!(
                pair[0].1 > pair[1].1,
                "expected {} ({:.4}s) slower than {} ({:.4}s)",
                pair[0].0,
                pair[0].1,
                pair[1].0,
                pair[1].1
            );
        }
    }

    #[test]
    fn threaded_matches_capacity_invariants() {
        let mut cfg = DrtbsConfig::new(0.1, 100, 4, Strategy::DistCoPartitioned);
        cfg.threaded = true;
        let mut d = DRTbs::new(cfg, 17);
        for t in 0..30u64 {
            let b = [50u64, 0, 200, 10][t as usize % 4];
            d.observe_batch((0..b).collect()).unwrap();
            assert!(d.sample_weight() <= 100.0 + 1e-9);
            assert_eq!(d.stored_full_items(), d.sample_weight().floor() as usize);
        }
    }

    #[test]
    fn empty_stream_decays_to_empty() {
        let cfg = DrtbsConfig::new(1.0, 10, 2, Strategy::CentCoPartitioned);
        let mut d = DRTbs::new(cfg, 2);
        d.observe_batch((0..10u64).collect()).unwrap();
        for _ in 0..60 {
            d.observe_batch(Vec::new()).unwrap();
        }
        assert!(d.total_weight() < 1e-6);
        assert!(d.stored_full_items() <= 1);
    }
}

#[cfg(test)]
mod checkpoint_tests {
    use super::*;

    fn feed(d: &mut DRTbs<u64>, schedule: &[u64], offset: u64) {
        for (t, &b) in schedule.iter().enumerate() {
            let base = (offset + t as u64) * 1000;
            d.observe_batch((base..base + b).collect()).unwrap();
        }
    }

    #[test]
    fn restore_resumes_bit_identically_for_all_strategies() {
        // Run A: 8 batches straight through. Run B: 4 batches, checkpoint,
        // restore, 4 more. Final reservoir contents must be identical sets
        // and all scalar state equal.
        let first = [30u64, 0, 80, 5];
        let second = [12u64, 90, 0, 7];
        for strategy in Strategy::all() {
            let cfg = DrtbsConfig::new(0.2, 40, 3, strategy);
            let mut a: DRTbs<u64> = DRTbs::new(cfg, 99);
            feed(&mut a, &first, 0);
            feed(&mut a, &second, 4);

            let mut b: DRTbs<u64> = DRTbs::new(cfg, 99);
            feed(&mut b, &first, 0);
            let blob = b.checkpoint();
            let mut b: DRTbs<u64> = DRTbs::restore(blob).expect("restore");
            feed(&mut b, &second, 4);

            assert_eq!(a.batches_observed(), b.batches_observed(), "{strategy:?}");
            assert!((a.total_weight() - b.total_weight()).abs() < 1e-12);
            assert!((a.sample_weight() - b.sample_weight()).abs() < 1e-12);
            let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
            let mut sa = a.realize_sample(&mut rng).unwrap();
            let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
            let mut sb = b.realize_sample(&mut rng).unwrap();
            sa.sort_unstable();
            sb.sort_unstable();
            assert_eq!(sa, sb, "{strategy:?}: samples diverged after restore");
        }
    }

    #[test]
    fn checkpoint_preserves_partial_item() {
        // Drive into an unsaturated fractional state so the partial item
        // exists, then round-trip.
        let cfg = DrtbsConfig::new(0.5, 50, 2, Strategy::CentCoPartitioned);
        let mut d: DRTbs<u64> = DRTbs::new(cfg, 7);
        d.observe_batch((0..10).collect()).unwrap();
        d.observe_batch(Vec::new()).unwrap(); // decay → fractional weight
        assert!(d.sample_weight().fract() > 0.0, "need a fractional state");
        let blob = d.checkpoint();
        let restored: DRTbs<u64> = DRTbs::restore(blob).expect("restore");
        assert_eq!(
            restored.stored_full_items(),
            restored.sample_weight().floor() as usize
        );
        assert!((restored.sample_weight() - d.sample_weight()).abs() < 1e-12);
    }

    #[test]
    fn corrupted_blob_is_rejected() {
        let cfg = DrtbsConfig::new(0.1, 10, 2, Strategy::DistCoPartitioned);
        let mut d: DRTbs<u64> = DRTbs::new(cfg, 7);
        d.observe_batch((0..20).collect()).unwrap();
        let blob = d.checkpoint();
        // Flip the magic.
        let mut bad = blob.to_vec();
        bad[0] ^= 0xFF;
        assert!(DRTbs::<u64>::restore(bytes::Bytes::from(bad)).is_err());
        // Truncate mid-stream.
        let truncated = blob.slice(0..blob.len() / 2);
        assert!(DRTbs::<u64>::restore(truncated).is_err());
    }

    #[test]
    fn restore_rejects_undecodable_reservoir_payloads() {
        // Structurally valid blob, wrong item width: the stored 8-byte
        // u64 values cannot be [f64; 2] (16 bytes). Restore must reject
        // the blob with a typed error at the trust boundary instead of
        // letting the mismatch panic later inside the ingest path.
        let cfg = DrtbsConfig::new(0.1, 10, 2, Strategy::CentKvCoLocatedJoin);
        let mut d: DRTbs<u64> = DRTbs::new(cfg, 7);
        d.observe_batch((0..20).collect()).unwrap();
        let blob = d.checkpoint();
        assert!(matches!(
            DRTbs::<[f64; 2]>::restore(blob),
            Err(CheckpointError::Corrupt(_))
        ));
    }

    #[test]
    fn checkpoint_is_deterministic() {
        let cfg = DrtbsConfig::new(0.1, 20, 2, Strategy::CentKvCoLocatedJoin);
        let mut d: DRTbs<u64> = DRTbs::new(cfg, 3);
        d.observe_batch((0..50).collect()).unwrap();
        // KV snapshots iterate hash maps — order may vary between calls in
        // principle, so compare restored state rather than raw bytes.
        let r1: DRTbs<u64> = DRTbs::restore(d.checkpoint()).unwrap();
        let r2: DRTbs<u64> = DRTbs::restore(d.checkpoint()).unwrap();
        assert_eq!(r1.stored_full_items(), r2.stored_full_items());
        assert_eq!(r1.total_weight(), r2.total_weight());
    }
}
