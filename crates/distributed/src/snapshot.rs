//! Epoch-published snapshot cell: the handoff point between the ingest
//! pipeline and concurrent sample readers.
//!
//! The serving problem (Velox's split, see PAPERS.md): model retraining
//! and other consumers need a *consistent* sample while ingest keeps
//! running. The pre-snapshot engine solved consistency by quiescing —
//! every reader stalled every writer. An [`EpochCell`] inverts that: the
//! pipeline *publishes* immutable [`FrozenSample`]s into the cell, tagged
//! with a monotonically increasing **epoch**, and any number of readers
//! pull the latest publication without ever touching the ingest path's
//! queues or locks.
//!
//! ## Read path cost
//!
//! [`EpochCell::published_epoch`] is a single atomic load — the intended
//! hot-poll check ("anything newer than what I hold?"). Only when the
//! epoch moved does a reader call [`EpochCell::latest`], which clones an
//! `Arc` out of the vendored arc-swap slot (a refcount bump under a
//! nanoseconds-scale critical section that no ingest thread ever enters).
//! `temporal_sampling::api::SampleReader` packages exactly this pattern.
//!
//! ## Write path
//!
//! Publishers ([`EpochCell::publish`]) store the new `Arc`, advance the
//! epoch counter (monotonically — a late-arriving older publication can
//! never roll it back), and wake every waiter. When the publisher goes
//! away (engine drop, merger panic) it calls [`EpochCell::close`] so
//! waiters return instead of blocking forever; already-published samples
//! remain readable afterwards.
//!
//! ## Blocking and async waiters
//!
//! Waiting is built on `tbs_core::notify::Notify`, which wakes blocked
//! *threads* and parked async *tasks* from the same generation counter.
//! Every blocking variant ([`EpochCell::wait_for_epoch`],
//! [`EpochCell::wait_for_epoch_timeout`]) routes through one shared
//! closed-checked loop, and [`EpochCell::poll_epoch`] /
//! [`EpochCell::wait_for_epoch_owned`] expose the identical semantics to
//! futures — the network serving tier's `SUBSCRIBE_EPOCH` long-poll parks
//! a connection task here instead of a thread.

use arc_swap::ArcSwapOption;
use parking_lot::Mutex;
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::task::{Context, Poll};
use std::time::Instant;
use tbs_core::frozen::FrozenSample;
use tbs_core::notify::{Notify, WaitOutcome};

/// A shared slot publishing epoch-stamped [`FrozenSample`]s from one
/// producer pipeline to any number of concurrent readers.
#[derive(Debug)]
pub struct EpochCell<T> {
    /// Highest epoch published so far; 0 = nothing published yet.
    published: AtomicU64,
    /// The latest publication.
    slot: ArcSwapOption<FrozenSample<T>>,
    /// Set when the publisher is gone for good.
    closed: AtomicBool,
    /// Serializes publishers so stale-check + store + counter-advance is
    /// atomic with respect to other publishers. Readers never take it.
    publish_lock: Mutex<()>,
    /// Wakes blocked threads and parked connection tasks alike.
    notify: Notify,
}

impl<T> Default for EpochCell<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EpochCell<T> {
    /// An empty cell: no publication, epoch 0, open.
    pub fn new() -> Self {
        Self {
            published: AtomicU64::new(0),
            slot: ArcSwapOption::empty(),
            closed: AtomicBool::new(false),
            publish_lock: Mutex::new(()),
            notify: Notify::new(),
        }
    }

    /// The highest published epoch (0 until the first publication). One
    /// atomic load — the cheap poll for "is there anything newer?".
    pub fn published_epoch(&self) -> u64 {
        self.published.load(Ordering::Acquire)
    }

    /// The most recent publication, if any. Never blocks on ingest: the
    /// only synchronization is the arc-swap slot's refcount bump.
    pub fn latest(&self) -> Option<Arc<FrozenSample<T>>> {
        self.slot.load_full()
    }

    /// Whether the publisher has shut down ([`EpochCell::close`]). The
    /// last publication, if any, remains readable.
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Acquire)
    }

    /// Publish `frozen` as the newest sample and wake every waiter —
    /// blocked threads and parked async tasks alike. The epoch counter
    /// advances monotonically to `frozen.epoch()`; a **stale**
    /// publication (epoch not newer than the counter) is discarded, so
    /// the slot can never hold an older sample than the counter
    /// advertises.
    pub fn publish(&self, frozen: Arc<FrozenSample<T>>) {
        let epoch = frozen.epoch();
        let _guard = self.publish_lock.lock();
        if epoch <= self.published.load(Ordering::Acquire) {
            return;
        }
        // Store the payload before advancing the counter: a reader that
        // observes the new epoch is guaranteed to load a sample at least
        // that new (epochs only move forward in the slot too).
        self.slot.store(Some(frozen));
        self.published.store(epoch, Ordering::Release);
        self.notify.notify_all();
    }

    /// Mark the publisher gone and wake all waiters. Idempotent.
    pub fn close(&self) {
        self.closed.store(true, Ordering::Release);
        self.notify.notify_all();
    }

    /// Re-arm a closed cell for a replacement publisher. The supervised
    /// engine's recovery path respawns its merger and keeps serving the
    /// *same* cell, so reader handles created before the fault keep
    /// working across it; published history is untouched.
    pub fn reopen(&self) {
        self.closed.store(false, Ordering::Release);
    }

    /// The shared wait loop every blocking variant routes through: check
    /// published, check closed, sleep until the notify generation moves
    /// or the deadline passes. Reading the generation *before* the
    /// condition checks closes the lost-wakeup window — a publish/close
    /// landing after the checks bumps the generation, so the sleep
    /// returns immediately and the loop re-checks.
    fn wait_inner(&self, epoch: u64, deadline: Option<Instant>) -> EpochWait<T> {
        loop {
            let seen = self.notify.generation();
            if self.published.load(Ordering::Acquire) >= epoch {
                return match self.latest() {
                    Some(frozen) => EpochWait::Published(frozen),
                    // INVARIANT: the slot is stored before the counter
                    // advances past 0, and never cleared.
                    None => EpochWait::PublisherGone,
                };
            }
            if self.closed.load(Ordering::Acquire) {
                return EpochWait::PublisherGone;
            }
            if self.notify.wait_past(seen, deadline) == WaitOutcome::TimedOut {
                return EpochWait::TimedOut;
            }
        }
    }

    /// Block until a sample of epoch ≥ `epoch` is published, then return
    /// the latest publication (which may be even newer). Returns `None`
    /// if the publisher closed the cell before reaching `epoch` — e.g.
    /// the engine was dropped with the request still in flight. Routed
    /// through the same closed-check path as
    /// [`EpochCell::wait_for_epoch_timeout`], so a publisher dying at any
    /// point relative to the wait never strands the caller.
    pub fn wait_for_epoch(&self, epoch: u64) -> Option<Arc<FrozenSample<T>>> {
        self.wait_inner(epoch, None).published()
    }

    /// [`EpochCell::wait_for_epoch`] with a deadline: never blocks past
    /// `timeout`, so a consumer facing a dead **or stalled** publisher
    /// gets control back in bounded time (the closed flag only covers
    /// publishers that died cleanly enough to run their closers).
    pub fn wait_for_epoch_timeout(&self, epoch: u64, timeout: std::time::Duration) -> EpochWait<T> {
        self.wait_inner(epoch, Some(Instant::now() + timeout))
    }

    /// Async-task counterpart of the wait loop: resolve immediately when
    /// a sample of epoch ≥ `epoch` is published (or the publisher is
    /// gone), otherwise park `cx`'s waker for the next publication.
    /// Never returns [`EpochWait::TimedOut`] — deadline handling belongs
    /// to the caller's timer (race this against a sleep future).
    pub fn poll_epoch(&self, epoch: u64, cx: &mut Context<'_>) -> Poll<EpochWait<T>> {
        loop {
            let seen = self.notify.generation();
            if self.published.load(Ordering::Acquire) >= epoch {
                return Poll::Ready(match self.latest() {
                    Some(frozen) => EpochWait::Published(frozen),
                    None => EpochWait::PublisherGone,
                });
            }
            if self.closed.load(Ordering::Acquire) {
                return Poll::Ready(EpochWait::PublisherGone);
            }
            match self.notify.register(seen, cx.waker()) {
                Ok(()) => return Poll::Pending,
                // Notification slipped in between the checks and the
                // registration: re-check rather than park.
                Err(_) => continue,
            }
        }
    }

    /// An owned future resolving when a sample of epoch ≥ `epoch` lands
    /// (or the publisher dies). Owned (`Arc<Self>`) rather than borrowed
    /// so connection tasks — which must be `'static` — can hold it.
    pub fn wait_for_epoch_owned(self: &Arc<Self>, epoch: u64) -> EpochWaitFuture<T> {
        EpochWaitFuture {
            cell: Arc::clone(self),
            epoch,
        }
    }
}

/// Future returned by [`EpochCell::wait_for_epoch_owned`].
#[derive(Debug)]
pub struct EpochWaitFuture<T> {
    cell: Arc<EpochCell<T>>,
    epoch: u64,
}

impl<T> Future for EpochWaitFuture<T> {
    type Output = EpochWait<T>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        self.cell.poll_epoch(self.epoch, cx)
    }
}

/// Outcome of [`EpochCell::wait_for_epoch_timeout`].
#[derive(Debug, Clone)]
pub enum EpochWait<T> {
    /// A sample of at least the requested epoch was published.
    Published(Arc<FrozenSample<T>>),
    /// The publisher closed the cell before reaching the epoch.
    PublisherGone,
    /// The deadline elapsed with the epoch still unpublished and the
    /// publisher nominally alive.
    TimedOut,
}

impl<T> EpochWait<T> {
    /// The published sample, if this outcome carries one.
    pub fn published(self) -> Option<Arc<FrozenSample<T>>> {
        match self {
            EpochWait::Published(frozen) => Some(frozen),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::task::{Wake, Waker};

    fn frozen(epoch: u64, items: Vec<u32>) -> Arc<FrozenSample<u32>> {
        let expected = items.len() as f64;
        Arc::new(FrozenSample::new(epoch, epoch * 10, None, expected, items))
    }

    #[test]
    fn starts_empty_and_publishes_monotonically() {
        let cell: EpochCell<u32> = EpochCell::new();
        assert_eq!(cell.published_epoch(), 0);
        assert!(cell.latest().is_none());
        cell.publish(frozen(1, vec![1]));
        cell.publish(frozen(2, vec![1, 2]));
        assert_eq!(cell.published_epoch(), 2);
        assert_eq!(cell.latest().unwrap().len(), 2);
    }

    #[test]
    fn stale_publications_are_discarded() {
        // The counter and the slot must stay coherent even if a caller
        // publishes out of order: the older sample is dropped, never
        // served under the newer counter.
        let cell: EpochCell<u32> = EpochCell::new();
        cell.publish(frozen(5, vec![1, 2, 3, 4, 5]));
        cell.publish(frozen(3, vec![1, 2, 3]));
        assert_eq!(cell.published_epoch(), 5);
        assert_eq!(cell.latest().unwrap().epoch(), 5);
        assert_eq!(cell.wait_for_epoch(5).unwrap().len(), 5);
    }

    #[test]
    fn wait_returns_immediately_for_past_epochs() {
        let cell: EpochCell<u32> = EpochCell::new();
        cell.publish(frozen(3, vec![7]));
        let got = cell.wait_for_epoch(2).unwrap();
        assert_eq!(got.epoch(), 3);
    }

    #[test]
    fn wait_blocks_until_published() {
        let cell = Arc::new(EpochCell::<u32>::new());
        let cell2 = Arc::clone(&cell);
        let waiter = std::thread::spawn(move || cell2.wait_for_epoch(1));
        std::thread::sleep(std::time::Duration::from_millis(10));
        cell.publish(frozen(1, vec![9]));
        let got = waiter.join().unwrap().unwrap();
        assert_eq!(got.epoch(), 1);
    }

    #[test]
    fn close_unblocks_waiters_with_none() {
        let cell = Arc::new(EpochCell::<u32>::new());
        let cell2 = Arc::clone(&cell);
        let waiter = std::thread::spawn(move || cell2.wait_for_epoch(5));
        std::thread::sleep(std::time::Duration::from_millis(10));
        cell.close();
        assert!(waiter.join().unwrap().is_none());
        assert!(cell.is_closed());
    }

    #[test]
    fn untimed_wait_never_hangs_on_a_publisher_dying_mid_wait() {
        // Regression: the no-timeout wait must route through the same
        // closed-check path as the timeout variant, so a close() landing
        // at *any* point relative to the epoch check — including between
        // the epoch load and the sleep — unblocks it. Hammer the race
        // window: a publisher that closes after a staggered delay while
        // the waiter enters wait_for_epoch.
        for delay_us in [0u64, 50, 200, 1000] {
            let cell = Arc::new(EpochCell::<u32>::new());
            let cell2 = Arc::clone(&cell);
            let closer = std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_micros(delay_us));
                cell2.close();
            });
            // Must return None promptly — never hang — whichever side of
            // the epoch/closed checks the close landed on.
            assert!(cell.wait_for_epoch(1).is_none(), "delay {delay_us}µs");
            closer.join().unwrap();
        }
    }

    #[test]
    fn wait_timeout_reports_all_three_outcomes() {
        let cell: EpochCell<u32> = EpochCell::new();
        cell.publish(frozen(2, vec![1, 2]));
        let short = std::time::Duration::from_millis(10);
        assert!(matches!(
            cell.wait_for_epoch_timeout(1, short),
            EpochWait::Published(_)
        ));
        let start = std::time::Instant::now();
        assert!(matches!(
            cell.wait_for_epoch_timeout(3, short),
            EpochWait::TimedOut
        ));
        assert!(start.elapsed() >= std::time::Duration::from_millis(5));
        cell.close();
        assert!(matches!(
            cell.wait_for_epoch_timeout(3, short),
            EpochWait::PublisherGone
        ));
    }

    #[test]
    fn timeout_wait_wakes_on_publish_and_close() {
        let cell = Arc::new(EpochCell::<u32>::new());
        let long = std::time::Duration::from_secs(30);
        let cell2 = Arc::clone(&cell);
        let waiter = std::thread::spawn(move || cell2.wait_for_epoch_timeout(1, long).published());
        std::thread::sleep(std::time::Duration::from_millis(10));
        cell.publish(frozen(1, vec![3]));
        assert_eq!(waiter.join().unwrap().unwrap().epoch(), 1);
        // Publisher killed mid-wait: the waiter returns well before the
        // 30s deadline because close() wakes it.
        let cell2 = Arc::clone(&cell);
        let waiter = std::thread::spawn(move || {
            let start = std::time::Instant::now();
            let out = cell2.wait_for_epoch_timeout(9, long);
            (start.elapsed(), out)
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        cell.close();
        let (elapsed, out) = waiter.join().unwrap();
        assert!(matches!(out, EpochWait::PublisherGone));
        assert!(elapsed < std::time::Duration::from_secs(5));
    }

    #[test]
    fn reopen_rearms_a_closed_cell() {
        let cell: EpochCell<u32> = EpochCell::new();
        cell.publish(frozen(1, vec![1]));
        cell.close();
        assert!(cell.is_closed());
        cell.reopen();
        assert!(!cell.is_closed());
        cell.publish(frozen(2, vec![1, 2]));
        assert_eq!(cell.wait_for_epoch(2).unwrap().epoch(), 2);
    }

    #[test]
    fn closed_cell_still_serves_the_last_publication() {
        let cell: EpochCell<u32> = EpochCell::new();
        cell.publish(frozen(1, vec![4, 5]));
        cell.close();
        assert_eq!(cell.latest().unwrap().items(), &[4, 5]);
        // Epoch 1 was reached before the close, so the wait succeeds.
        assert!(cell.wait_for_epoch(1).is_some());
        assert!(cell.wait_for_epoch(2).is_none());
    }

    struct CountingWake(AtomicUsize);
    impl Wake for CountingWake {
        fn wake(self: Arc<Self>) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    fn counting_waker() -> (Arc<CountingWake>, Waker) {
        let counter = Arc::new(CountingWake(AtomicUsize::new(0)));
        let waker = Waker::from(Arc::clone(&counter));
        (counter, waker)
    }

    #[test]
    fn poll_epoch_parks_then_wakes_on_publish() {
        let cell = Arc::new(EpochCell::<u32>::new());
        let (counter, waker) = counting_waker();
        let mut cx = Context::from_waker(&waker);
        let mut fut = cell.wait_for_epoch_owned(1);
        assert!(matches!(Pin::new(&mut fut).poll(&mut cx), Poll::Pending));
        assert_eq!(counter.0.load(Ordering::SeqCst), 0);
        cell.publish(frozen(1, vec![8]));
        // The publish fired the parked waker; re-polling resolves.
        assert_eq!(counter.0.load(Ordering::SeqCst), 1);
        match Pin::new(&mut fut).poll(&mut cx) {
            Poll::Ready(EpochWait::Published(f)) => assert_eq!(f.epoch(), 1),
            other => panic!("expected Published, got {other:?}"),
        }
    }

    #[test]
    fn poll_epoch_resolves_gone_on_close_and_immediately_when_satisfied() {
        let cell = Arc::new(EpochCell::<u32>::new());
        let (_, waker) = counting_waker();
        let mut cx = Context::from_waker(&waker);
        let mut fut = cell.wait_for_epoch_owned(2);
        assert!(matches!(Pin::new(&mut fut).poll(&mut cx), Poll::Pending));
        cell.close();
        assert!(matches!(
            Pin::new(&mut fut).poll(&mut cx),
            Poll::Ready(EpochWait::PublisherGone)
        ));
        // A satisfied wait never parks at all.
        cell.reopen();
        cell.publish(frozen(5, vec![1]));
        let mut fut = cell.wait_for_epoch_owned(3);
        assert!(matches!(
            Pin::new(&mut fut).poll(&mut cx),
            Poll::Ready(EpochWait::Published(_))
        ));
    }
}
