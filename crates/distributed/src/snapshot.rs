//! Epoch-published snapshot cell: the handoff point between the ingest
//! pipeline and concurrent sample readers.
//!
//! The serving problem (Velox's split, see PAPERS.md): model retraining
//! and other consumers need a *consistent* sample while ingest keeps
//! running. The pre-snapshot engine solved consistency by quiescing —
//! every reader stalled every writer. An [`EpochCell`] inverts that: the
//! pipeline *publishes* immutable [`FrozenSample`]s into the cell, tagged
//! with a monotonically increasing **epoch**, and any number of readers
//! pull the latest publication without ever touching the ingest path's
//! queues or locks.
//!
//! ## Read path cost
//!
//! [`EpochCell::published_epoch`] is a single atomic load — the intended
//! hot-poll check ("anything newer than what I hold?"). Only when the
//! epoch moved does a reader call [`EpochCell::latest`], which clones an
//! `Arc` out of the vendored arc-swap slot (a refcount bump under a
//! nanoseconds-scale critical section that no ingest thread ever enters).
//! `temporal_sampling::api::SampleReader` packages exactly this pattern.
//!
//! ## Write path
//!
//! Publishers ([`EpochCell::publish`]) store the new `Arc`, advance the
//! epoch counter (monotonically — a late-arriving older publication can
//! never roll it back), and wake [`EpochCell::wait_for_epoch`] blockers.
//! When the publisher goes away (engine drop, merger panic) it calls
//! [`EpochCell::close`] so waiters return instead of blocking forever;
//! already-published samples remain readable afterwards.

use arc_swap::ArcSwapOption;
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use tbs_core::frozen::FrozenSample;

/// A shared slot publishing epoch-stamped [`FrozenSample`]s from one
/// producer pipeline to any number of concurrent readers.
#[derive(Debug)]
pub struct EpochCell<T> {
    /// Highest epoch published so far; 0 = nothing published yet.
    published: AtomicU64,
    /// The latest publication.
    slot: ArcSwapOption<FrozenSample<T>>,
    /// Set when the publisher is gone for good.
    closed: AtomicBool,
    /// Pairs with `wait_cv`; held only inside `publish`'s notify and
    /// `wait_for_epoch` — never by pollers.
    wait_lock: Mutex<()>,
    wait_cv: Condvar,
}

impl<T> Default for EpochCell<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EpochCell<T> {
    /// An empty cell: no publication, epoch 0, open.
    pub fn new() -> Self {
        Self {
            published: AtomicU64::new(0),
            slot: ArcSwapOption::empty(),
            closed: AtomicBool::new(false),
            wait_lock: Mutex::new(()),
            wait_cv: Condvar::new(),
        }
    }

    /// The highest published epoch (0 until the first publication). One
    /// atomic load — the cheap poll for "is there anything newer?".
    pub fn published_epoch(&self) -> u64 {
        self.published.load(Ordering::Acquire)
    }

    /// The most recent publication, if any. Never blocks on ingest: the
    /// only synchronization is the arc-swap slot's refcount bump.
    pub fn latest(&self) -> Option<Arc<FrozenSample<T>>> {
        self.slot.load_full()
    }

    /// Whether the publisher has shut down ([`EpochCell::close`]). The
    /// last publication, if any, remains readable.
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Acquire)
    }

    /// Publish `frozen` as the newest sample and wake every
    /// [`EpochCell::wait_for_epoch`] blocker. The epoch counter advances
    /// monotonically to `frozen.epoch()`; a **stale** publication (epoch
    /// not newer than the counter) is discarded, so the slot can never
    /// hold an older sample than the counter advertises.
    pub fn publish(&self, frozen: Arc<FrozenSample<T>>) {
        let epoch = frozen.epoch();
        // Publishers are serialized by `wait_lock`, which makes the
        // stale-check + store + counter-advance sequence atomic with
        // respect to other publishers. Readers never take this lock.
        let _guard = self.wait_lock.lock();
        if epoch <= self.published.load(Ordering::Acquire) {
            return;
        }
        // Store the payload before advancing the counter: a reader that
        // observes the new epoch is guaranteed to load a sample at least
        // that new (epochs only move forward in the slot too).
        self.slot.store(Some(frozen));
        self.published.store(epoch, Ordering::Release);
        self.wait_cv.notify_all();
    }

    /// Mark the publisher gone and wake all waiters. Idempotent.
    pub fn close(&self) {
        self.closed.store(true, Ordering::Release);
        let _guard = self.wait_lock.lock();
        self.wait_cv.notify_all();
    }

    /// Re-arm a closed cell for a replacement publisher. The supervised
    /// engine's recovery path respawns its merger and keeps serving the
    /// *same* cell, so reader handles created before the fault keep
    /// working across it; published history is untouched.
    pub fn reopen(&self) {
        self.closed.store(false, Ordering::Release);
    }

    /// Block until a sample of epoch ≥ `epoch` is published, then return
    /// the latest publication (which may be even newer). Returns `None`
    /// if the publisher closed the cell before reaching `epoch` — e.g.
    /// the engine was dropped with the request still in flight.
    pub fn wait_for_epoch(&self, epoch: u64) -> Option<Arc<FrozenSample<T>>> {
        let mut guard = self.wait_lock.lock();
        loop {
            if self.published.load(Ordering::Acquire) >= epoch {
                drop(guard);
                return self.latest();
            }
            if self.closed.load(Ordering::Acquire) {
                return None;
            }
            // No lost wakeup: `publish`/`close` notify while holding
            // `wait_lock`, and we hold it across the re-check → wait edge.
            guard = self.wait_cv.wait(guard);
        }
    }

    /// [`EpochCell::wait_for_epoch`] with a deadline: never blocks past
    /// `timeout`, so a consumer facing a dead **or stalled** publisher
    /// gets control back in bounded time (the closed flag only covers
    /// publishers that died cleanly enough to run their closers).
    pub fn wait_for_epoch_timeout(&self, epoch: u64, timeout: std::time::Duration) -> EpochWait<T> {
        let deadline = std::time::Instant::now() + timeout;
        let mut guard = self.wait_lock.lock();
        loop {
            if self.published.load(Ordering::Acquire) >= epoch {
                drop(guard);
                return match self.latest() {
                    Some(frozen) => EpochWait::Published(frozen),
                    // INVARIANT: the slot is stored before the counter
                    // advances past 0, and never cleared.
                    None => EpochWait::PublisherGone,
                };
            }
            if self.closed.load(Ordering::Acquire) {
                return EpochWait::PublisherGone;
            }
            let Some(left) = deadline
                .checked_duration_since(std::time::Instant::now())
                .filter(|d| !d.is_zero())
            else {
                return EpochWait::TimedOut;
            };
            guard = self.wait_cv.wait_timeout(guard, left).0;
        }
    }
}

/// Outcome of [`EpochCell::wait_for_epoch_timeout`].
#[derive(Debug, Clone)]
pub enum EpochWait<T> {
    /// A sample of at least the requested epoch was published.
    Published(Arc<FrozenSample<T>>),
    /// The publisher closed the cell before reaching the epoch.
    PublisherGone,
    /// The deadline elapsed with the epoch still unpublished and the
    /// publisher nominally alive.
    TimedOut,
}

impl<T> EpochWait<T> {
    /// The published sample, if this outcome carries one.
    pub fn published(self) -> Option<Arc<FrozenSample<T>>> {
        match self {
            EpochWait::Published(frozen) => Some(frozen),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frozen(epoch: u64, items: Vec<u32>) -> Arc<FrozenSample<u32>> {
        let expected = items.len() as f64;
        Arc::new(FrozenSample::new(epoch, epoch * 10, None, expected, items))
    }

    #[test]
    fn starts_empty_and_publishes_monotonically() {
        let cell: EpochCell<u32> = EpochCell::new();
        assert_eq!(cell.published_epoch(), 0);
        assert!(cell.latest().is_none());
        cell.publish(frozen(1, vec![1]));
        cell.publish(frozen(2, vec![1, 2]));
        assert_eq!(cell.published_epoch(), 2);
        assert_eq!(cell.latest().unwrap().len(), 2);
    }

    #[test]
    fn stale_publications_are_discarded() {
        // The counter and the slot must stay coherent even if a caller
        // publishes out of order: the older sample is dropped, never
        // served under the newer counter.
        let cell: EpochCell<u32> = EpochCell::new();
        cell.publish(frozen(5, vec![1, 2, 3, 4, 5]));
        cell.publish(frozen(3, vec![1, 2, 3]));
        assert_eq!(cell.published_epoch(), 5);
        assert_eq!(cell.latest().unwrap().epoch(), 5);
        assert_eq!(cell.wait_for_epoch(5).unwrap().len(), 5);
    }

    #[test]
    fn wait_returns_immediately_for_past_epochs() {
        let cell: EpochCell<u32> = EpochCell::new();
        cell.publish(frozen(3, vec![7]));
        let got = cell.wait_for_epoch(2).unwrap();
        assert_eq!(got.epoch(), 3);
    }

    #[test]
    fn wait_blocks_until_published() {
        let cell = Arc::new(EpochCell::<u32>::new());
        let cell2 = Arc::clone(&cell);
        let waiter = std::thread::spawn(move || cell2.wait_for_epoch(1));
        std::thread::sleep(std::time::Duration::from_millis(10));
        cell.publish(frozen(1, vec![9]));
        let got = waiter.join().unwrap().unwrap();
        assert_eq!(got.epoch(), 1);
    }

    #[test]
    fn close_unblocks_waiters_with_none() {
        let cell = Arc::new(EpochCell::<u32>::new());
        let cell2 = Arc::clone(&cell);
        let waiter = std::thread::spawn(move || cell2.wait_for_epoch(5));
        std::thread::sleep(std::time::Duration::from_millis(10));
        cell.close();
        assert!(waiter.join().unwrap().is_none());
        assert!(cell.is_closed());
    }

    #[test]
    fn wait_timeout_reports_all_three_outcomes() {
        let cell: EpochCell<u32> = EpochCell::new();
        cell.publish(frozen(2, vec![1, 2]));
        let short = std::time::Duration::from_millis(10);
        assert!(matches!(
            cell.wait_for_epoch_timeout(1, short),
            EpochWait::Published(_)
        ));
        let start = std::time::Instant::now();
        assert!(matches!(
            cell.wait_for_epoch_timeout(3, short),
            EpochWait::TimedOut
        ));
        assert!(start.elapsed() >= std::time::Duration::from_millis(5));
        cell.close();
        assert!(matches!(
            cell.wait_for_epoch_timeout(3, short),
            EpochWait::PublisherGone
        ));
    }

    #[test]
    fn timeout_wait_wakes_on_publish_and_close() {
        let cell = Arc::new(EpochCell::<u32>::new());
        let long = std::time::Duration::from_secs(30);
        let cell2 = Arc::clone(&cell);
        let waiter = std::thread::spawn(move || cell2.wait_for_epoch_timeout(1, long).published());
        std::thread::sleep(std::time::Duration::from_millis(10));
        cell.publish(frozen(1, vec![3]));
        assert_eq!(waiter.join().unwrap().unwrap().epoch(), 1);
        // Publisher killed mid-wait: the waiter returns well before the
        // 30s deadline because close() wakes it.
        let cell2 = Arc::clone(&cell);
        let waiter = std::thread::spawn(move || {
            let start = std::time::Instant::now();
            let out = cell2.wait_for_epoch_timeout(9, long);
            (start.elapsed(), out)
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        cell.close();
        let (elapsed, out) = waiter.join().unwrap();
        assert!(matches!(out, EpochWait::PublisherGone));
        assert!(elapsed < std::time::Duration::from_secs(5));
    }

    #[test]
    fn reopen_rearms_a_closed_cell() {
        let cell: EpochCell<u32> = EpochCell::new();
        cell.publish(frozen(1, vec![1]));
        cell.close();
        assert!(cell.is_closed());
        cell.reopen();
        assert!(!cell.is_closed());
        cell.publish(frozen(2, vec![1, 2]));
        assert_eq!(cell.wait_for_epoch(2).unwrap().epoch(), 2);
    }

    #[test]
    fn closed_cell_still_serves_the_last_publication() {
        let cell: EpochCell<u32> = EpochCell::new();
        cell.publish(frozen(1, vec![4, 5]));
        cell.close();
        assert_eq!(cell.latest().unwrap().items(), &[4, 5]);
        // Epoch 1 was reached before the close, so the wait succeeds.
        assert!(cell.wait_for_epoch(1).is_some());
        assert!(cell.wait_for_epoch(2).is_none());
    }
}
