//! Checkpoint / restore for the distributed samplers (§5.1).
//!
//! The byte codec (writer, reader, error type, magic/version constants)
//! moved to its shared home in [`tbs_core::checkpoint`] in PR 4 so the
//! core samplers can serialize themselves without depending on this
//! crate; everything is re-exported here for existing callers. See the
//! core module docs for the format description.

pub use tbs_core::checkpoint::{CheckpointError, Reader, Writer, MAGIC, VERSION};
