//! Checkpoint / restore for the distributed samplers (§5.1).
//!
//! "Both D-T-TBS and D-R-TBS periodically checkpoint the sample as well as
//! other system state variables to ensure fault tolerance." A checkpoint
//! here is a self-contained binary blob: configuration, scalar weights,
//! every RNG substream position, the driver-held partial item, and the full
//! reservoir contents. Restoring yields a sampler that continues the
//! stream **bit-identically** to an uninterrupted run — verified by the
//! round-trip tests.
//!
//! Format: little-endian, length-prefixed, versioned (`MAGIC`, `VERSION`
//! leading). No external serialization framework — the item payloads reuse
//! the [`crate::wire::Wire`] encoding the store already requires.

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Magic tag identifying a D-R-TBS checkpoint blob.
pub const MAGIC: u32 = 0x5442_5343; // "TBSC"
/// Current checkpoint format version.
pub const VERSION: u32 = 1;

/// Errors raised when decoding a checkpoint blob.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The blob does not start with the checkpoint magic.
    BadMagic,
    /// The format version is not supported by this build.
    UnsupportedVersion(u32),
    /// The blob ended before all declared fields were read.
    Truncated,
    /// A field held an invalid value (tag or enum out of range).
    Corrupt(&'static str),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::BadMagic => write!(f, "not a TBS checkpoint (bad magic)"),
            CheckpointError::UnsupportedVersion(v) => {
                write!(f, "unsupported checkpoint version {v}")
            }
            CheckpointError::Truncated => write!(f, "checkpoint truncated"),
            CheckpointError::Corrupt(what) => write!(f, "corrupt checkpoint field: {what}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Little-endian writer over a growable buffer.
#[derive(Debug, Default)]
pub struct Writer {
    buf: BytesMut,
}

impl Writer {
    /// Start a checkpoint blob with magic + version.
    pub fn new() -> Self {
        let mut w = Writer {
            buf: BytesMut::with_capacity(1024),
        };
        w.put_u32(MAGIC);
        w.put_u32(VERSION);
        w
    }

    /// Append a u32.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.put_u32_le(v);
    }

    /// Append a u64.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.put_u64_le(v);
    }

    /// Append an f64.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.put_f64_le(v);
    }

    /// Append a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.put_u8(v);
    }

    /// Append a length-prefixed byte string.
    pub fn put_bytes(&mut self, b: &[u8]) {
        self.put_u32(b.len() as u32);
        self.buf.put_slice(b);
    }

    /// Append a 256-bit RNG state.
    pub fn put_rng_state(&mut self, s: [u64; 4]) {
        for word in s {
            self.put_u64(word);
        }
    }

    /// Finish and return the blob.
    pub fn finish(self) -> Bytes {
        self.buf.freeze()
    }
}

/// Little-endian reader with truncation checks.
#[derive(Debug)]
pub struct Reader {
    buf: Bytes,
}

impl Reader {
    /// Open a blob, validating magic and version.
    pub fn new(blob: Bytes) -> Result<Self, CheckpointError> {
        let mut r = Reader { buf: blob };
        if r.get_u32()? != MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let version = r.get_u32()?;
        if version != VERSION {
            return Err(CheckpointError::UnsupportedVersion(version));
        }
        Ok(r)
    }

    fn need(&self, n: usize) -> Result<(), CheckpointError> {
        if self.buf.remaining() < n {
            Err(CheckpointError::Truncated)
        } else {
            Ok(())
        }
    }

    /// Read a u32.
    pub fn get_u32(&mut self) -> Result<u32, CheckpointError> {
        self.need(4)?;
        Ok(self.buf.get_u32_le())
    }

    /// Read a u64.
    pub fn get_u64(&mut self) -> Result<u64, CheckpointError> {
        self.need(8)?;
        Ok(self.buf.get_u64_le())
    }

    /// Read an f64.
    pub fn get_f64(&mut self) -> Result<f64, CheckpointError> {
        self.need(8)?;
        Ok(self.buf.get_f64_le())
    }

    /// Read one byte.
    pub fn get_u8(&mut self) -> Result<u8, CheckpointError> {
        self.need(1)?;
        Ok(self.buf.get_u8())
    }

    /// Read a length-prefixed byte string.
    pub fn get_bytes(&mut self) -> Result<Bytes, CheckpointError> {
        let len = self.get_u32()? as usize;
        self.need(len)?;
        Ok(self.buf.copy_to_bytes(len))
    }

    /// Read a 256-bit RNG state.
    pub fn get_rng_state(&mut self) -> Result<[u64; 4], CheckpointError> {
        Ok([
            self.get_u64()?,
            self.get_u64()?,
            self.get_u64()?,
            self.get_u64()?,
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars_and_bytes() {
        let mut w = Writer::new();
        w.put_u32(7);
        w.put_u64(u64::MAX);
        w.put_f64(3.25);
        w.put_u8(1);
        w.put_bytes(b"hello");
        w.put_rng_state([1, 2, 3, 4]);
        let blob = w.finish();

        let mut r = Reader::new(blob).unwrap();
        assert_eq!(r.get_u32().unwrap(), 7);
        assert_eq!(r.get_u64().unwrap(), u64::MAX);
        assert_eq!(r.get_f64().unwrap(), 3.25);
        assert_eq!(r.get_u8().unwrap(), 1);
        assert_eq!(&r.get_bytes().unwrap()[..], b"hello");
        assert_eq!(r.get_rng_state().unwrap(), [1, 2, 3, 4]);
    }

    #[test]
    fn rejects_bad_magic() {
        let blob = Bytes::from_static(&[0u8; 16]);
        assert_eq!(Reader::new(blob).unwrap_err(), CheckpointError::BadMagic);
    }

    #[test]
    fn rejects_future_version() {
        let mut w = BytesMut::new();
        w.put_u32_le(MAGIC);
        w.put_u32_le(99);
        assert_eq!(
            Reader::new(w.freeze()).unwrap_err(),
            CheckpointError::UnsupportedVersion(99)
        );
    }

    #[test]
    fn detects_truncation() {
        let mut w = Writer::new();
        w.put_u64(5);
        let blob = w.finish();
        let truncated = blob.slice(0..blob.len() - 2);
        let mut r = Reader::new(truncated).unwrap();
        assert_eq!(r.get_u64().unwrap_err(), CheckpointError::Truncated);
    }

    #[test]
    fn error_messages_render() {
        assert!(CheckpointError::BadMagic.to_string().contains("magic"));
        assert!(CheckpointError::Corrupt("store tag")
            .to_string()
            .contains("store tag"));
    }
}
