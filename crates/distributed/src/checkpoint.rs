//! **Deprecated compatibility shim** — the checkpoint codec lives in
//! [`tbs_core::checkpoint`].
//!
//! The byte codec (writer, reader, error type, magic/version constants)
//! moved to its shared home in `tbs_core` in PR 4 so the core samplers
//! can serialize themselves without depending on this crate. Every
//! in-repo caller now imports from `tbs_core::checkpoint` directly;
//! these re-exports remain only so external code written against the old
//! paths keeps compiling, and they are hidden from the documentation.
//! Migrate by replacing `tbs_distributed::checkpoint::…` with
//! `tbs_core::checkpoint::…` — the items are identical.

#[doc(hidden)]
pub use tbs_core::checkpoint::{CheckpointError, Reader, Writer, MAGIC, VERSION};
