//! Partitioned datasets — the RDD-like substrate (§5.2).
//!
//! Incoming batches arrive as `k` partitions (one per worker, mirroring
//! Spark Streaming's opaque partitioning); the algorithms address items by
//! *slot number* `1..=len`, which maps to a `(partition, position)` pair
//! exactly as Figure 6 illustrates.

use rand::Rng;

/// A dataset split across `k` worker partitions.
#[derive(Debug, Clone, PartialEq)]
pub struct Partitioned<T> {
    partitions: Vec<Vec<T>>,
}

/// A slot's physical location: which partition and which position inside.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Location {
    /// Partition id (0-based).
    pub partition: usize,
    /// Position within the partition (0-based).
    pub position: usize,
}

impl<T> Partitioned<T> {
    /// Create an empty dataset with `k` partitions.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn empty(k: usize) -> Self {
        assert!(k > 0, "need at least one partition");
        Self {
            partitions: (0..k).map(|_| Vec::new()).collect(),
        }
    }

    /// Distribute `items` round-robin across `k` partitions (the balanced
    /// layout a streaming receiver produces).
    pub fn from_items(items: Vec<T>, k: usize) -> Self {
        let mut p = Self::empty(k);
        for (i, item) in items.into_iter().enumerate() {
            p.partitions[i % k].push(item);
        }
        p
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Total item count.
    pub fn len(&self) -> usize {
        self.partitions.iter().map(Vec::len).sum()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Per-partition sizes.
    pub fn sizes(&self) -> Vec<usize> {
        self.partitions.iter().map(Vec::len).collect()
    }

    /// Borrow a partition.
    pub fn partition(&self, i: usize) -> &[T] {
        &self.partitions[i]
    }

    /// Mutably borrow a partition.
    pub fn partition_mut(&mut self, i: usize) -> &mut Vec<T> {
        &mut self.partitions[i]
    }

    /// Mutably borrow all partitions (for parallel per-worker operations).
    pub fn partitions_mut(&mut self) -> &mut [Vec<T>] {
        &mut self.partitions
    }

    /// Map a 0-based global slot index to its physical location, counting
    /// through partitions in order.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn locate(&self, slot: usize) -> Location {
        let mut remaining = slot;
        for (partition, p) in self.partitions.iter().enumerate() {
            if remaining < p.len() {
                return Location {
                    partition,
                    position: remaining,
                };
            }
            remaining -= p.len();
        }
        panic!("slot {slot} out of range for {} items", self.len());
    }

    /// Flatten into one vector (driver-side collect).
    pub fn collect(&self) -> Vec<T>
    where
        T: Clone,
    {
        self.partitions.iter().flatten().cloned().collect()
    }

    /// Remove the items at the given locations (grouped by partition,
    /// positions resolved before any removal — `swap_remove` order safe).
    pub fn remove_locations(&mut self, locations: &[Location]) -> Vec<T> {
        // Group positions per partition and remove from the highest
        // position down so earlier removals don't shift later ones.
        let mut per_part: Vec<Vec<usize>> = vec![Vec::new(); self.partitions.len()];
        for loc in locations {
            per_part[loc.partition].push(loc.position);
        }
        let mut removed = Vec::with_capacity(locations.len());
        for (pi, mut positions) in per_part.into_iter().enumerate() {
            positions.sort_unstable_by(|a, b| b.cmp(a));
            positions.dedup();
            for pos in positions {
                removed.push(self.partitions[pi].swap_remove(pos));
            }
        }
        removed
    }

    /// Uniformly choose `m` distinct global slots and return their
    /// locations (master-side centralized decision).
    pub fn choose_locations<R: Rng + ?Sized>(&self, m: usize, rng: &mut R) -> Vec<Location> {
        let slots = tbs_core::util::sample_indices(self.len(), m, rng);
        slots.into_iter().map(|s| self.locate(s)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use tbs_stats::rng::Xoshiro256PlusPlus;

    #[test]
    fn round_robin_balance() {
        let p = Partitioned::from_items((0..10u32).collect(), 3);
        assert_eq!(p.sizes(), vec![4, 3, 3]);
        assert_eq!(p.len(), 10);
        assert_eq!(p.partition(0), &[0, 3, 6, 9]);
    }

    #[test]
    fn locate_walks_partitions_in_order() {
        let p = Partitioned::from_items((0..7u32).collect(), 3);
        // partitions: [0,3,6], [1,4], [2,5]
        assert_eq!(
            p.locate(0),
            Location {
                partition: 0,
                position: 0
            }
        );
        assert_eq!(
            p.locate(2),
            Location {
                partition: 0,
                position: 2
            }
        );
        assert_eq!(
            p.locate(3),
            Location {
                partition: 1,
                position: 0
            }
        );
        assert_eq!(
            p.locate(6),
            Location {
                partition: 2,
                position: 1
            }
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn locate_rejects_overflow() {
        let p = Partitioned::from_items((0..3u32).collect(), 2);
        p.locate(3);
    }

    #[test]
    fn remove_locations_returns_the_right_items() {
        let mut p = Partitioned::from_items((0..9u32).collect(), 3);
        // partitions: [0,3,6], [1,4,7], [2,5,8]
        let removed = p.remove_locations(&[
            Location {
                partition: 0,
                position: 1,
            }, // item 3
            Location {
                partition: 2,
                position: 0,
            }, // item 2
        ]);
        let set: std::collections::HashSet<u32> = removed.into_iter().collect();
        assert_eq!(set, [3u32, 2].into_iter().collect());
        assert_eq!(p.len(), 7);
    }

    #[test]
    fn remove_multiple_from_same_partition_is_stable() {
        let mut p = Partitioned::from_items((0..6u32).collect(), 2);
        // partitions: [0,2,4], [1,3,5]
        let removed = p.remove_locations(&[
            Location {
                partition: 0,
                position: 0,
            },
            Location {
                partition: 0,
                position: 2,
            },
        ]);
        let set: std::collections::HashSet<u32> = removed.into_iter().collect();
        assert_eq!(set, [0u32, 4].into_iter().collect());
        assert_eq!(p.partition(0), &[2]);
    }

    #[test]
    fn choose_locations_are_distinct_and_valid() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        let p = Partitioned::from_items((0..50u32).collect(), 4);
        let locs = p.choose_locations(20, &mut rng);
        assert_eq!(locs.len(), 20);
        let set: std::collections::HashSet<_> = locs.iter().collect();
        assert_eq!(set.len(), 20);
        for loc in locs {
            assert!(loc.partition < 4);
            assert!(loc.position < p.partition(loc.partition).len());
        }
    }

    #[test]
    fn collect_roundtrips_contents() {
        let p = Partitioned::from_items((0..10u32).collect(), 3);
        let mut all = p.collect();
        all.sort_unstable();
        assert_eq!(all, (0..10u32).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "at least one partition")]
    fn rejects_zero_partitions() {
        Partitioned::<u8>::empty(0);
    }
}
