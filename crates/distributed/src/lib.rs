//! # tbs-distributed
//!
//! Distributed and multi-core temporally-biased sampling: the §5
//! algorithms of the EDBT 2018 paper over a simulated Spark-like cluster,
//! plus a real sharded multi-core ingest engine built on the same
//! "distributed decisions need no per-item coordination" insight.
//!
//! The simulation side runs real in-process workers over partitioned
//! data, while a calibrated discrete-event [`cost::CostModel`] accounts
//! for what a 1 GbE cluster would spend on network transfer, master
//! coordination and per-phase framework overhead — reproducing the
//! *shape* of Figures 7–9 at laptop scale (see DESIGN.md §4,
//! substitution 1).
//!
//! * [`engine`] — **the multi-core sharded ingest engine**: N persistent
//!   shard threads behind bounded queues, each owning a monomorphized
//!   mergeable sampler and a jump-ahead RNG substream; shard states merge
//!   exactly (via `tbs_core::merge`) when a sample is requested, and a
//!   barrier-driven snapshot protocol publishes epoch-stamped
//!   `FrozenSample`s for concurrent readers without stopping ingest. The
//!   committed `BENCH_scaling.json` and `BENCH_serving.json` baseline its
//!   aggregate capacity and serving behaviour.
//! * [`snapshot`] — the [`snapshot::EpochCell`] publication slot readers
//!   poll lock-free while the pipeline keeps writing;
//! * [`queue`] — the bounded blocking batch queues behind the engine:
//!   bulk draining, backpressure, allocation-free in steady state;
//! * [`partition`] — RDD-like partitioned datasets with slot→location maps;
//! * [`kvstore`] — serialized key-value-store reservoir (Memcached
//!   stand-in) with per-operation locking and network charges;
//! * [`copart`] — the co-partitioned reservoir: local inserts/deletes,
//!   control messages only;
//! * decision strategies are embedded in [`drtbs`]: centralized slot generation
//!   (repartition or co-located joins) vs distributed per-worker counts via
//!   multivariate hypergeometric splits and jump-ahead RNG substreams;
//! * [`dttbs`] — embarrassingly parallel D-T-TBS;
//! * [`cluster`] — the worker pool: sequential, or threaded over a cache
//!   of persistent worker threads (no per-batch `thread::spawn`).

pub mod checkpoint;
pub mod cluster;
pub mod copart;
pub mod cost;
pub mod drtbs;
pub mod dttbs;
pub mod engine;
pub mod fault;
pub mod kvstore;
pub mod partition;
pub mod queue;
pub mod snapshot;
pub mod wire;

pub use cluster::WorkerPool;
pub use copart::CoPartitionedReservoir;
pub use cost::{CostModel, CostTracker};
pub use drtbs::{DRTbs, DrtbsConfig, Strategy};
pub use dttbs::{DTTbs, DttbsConfig};
pub use engine::{
    EngineCheckpoint, EngineConfig, EngineError, EngineHealth, ParallelIngestEngine,
    RecoveryPolicy, ShardStats,
};
pub use fault::{FaultPlan, FaultSite, PushAction, WireAction};
pub use kvstore::KvReservoir;
pub use partition::{Location, Partitioned};
pub use queue::BatchQueue;
pub use snapshot::{EpochCell, EpochWait, EpochWaitFuture};
pub use tbs_core::checkpoint::CheckpointError;
pub use wire::{Wire, WIRE_ENVELOPE_BYTES};
