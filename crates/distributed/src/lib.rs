//! # tbs-distributed
//!
//! A simulated Spark-like cluster substrate for the distributed
//! temporally-biased sampling algorithms of §5 of the EDBT 2018 paper.
//! Real in-process workers (crossbeam scoped threads) execute the actual
//! sampling operations over partitioned data, while a calibrated
//! discrete-event [`cost::CostModel`] accounts for what a 1 GbE cluster
//! would spend on network transfer, master coordination and per-phase
//! framework overhead — reproducing the *shape* of Figures 7–9 at laptop
//! scale (see DESIGN.md §4, substitution 1).
//!
//! * [`partition`] — RDD-like partitioned datasets with slot→location maps;
//! * [`kvstore`] — serialized key-value-store reservoir (Memcached
//!   stand-in) with per-operation locking and network charges;
//! * [`copart`] — the co-partitioned reservoir: local inserts/deletes,
//!   control messages only;
//! * decision strategies are embedded in [`drtbs`]: centralized slot generation
//!   (repartition or co-located joins) vs distributed per-worker counts via
//!   multivariate hypergeometric splits and jump-ahead RNG substreams;
//! * [`dttbs`] — embarrassingly parallel D-T-TBS;
//! * [`cluster`] — the worker pool (sequential or threaded execution).

pub mod checkpoint;
pub mod cluster;
pub mod copart;
pub mod cost;
pub mod drtbs;
pub mod dttbs;
pub mod kvstore;
pub mod partition;
pub mod wire;

pub use checkpoint::CheckpointError;
pub use cluster::WorkerPool;
pub use copart::CoPartitionedReservoir;
pub use cost::{CostModel, CostTracker};
pub use drtbs::{DRTbs, DrtbsConfig, Strategy};
pub use dttbs::{DTTbs, DttbsConfig};
pub use kvstore::KvReservoir;
pub use partition::{Location, Partitioned};
pub use wire::{Wire, WIRE_ENVELOPE_BYTES};
