//! Worker-pool execution (§5.1's driver/executor split).
//!
//! Real data-plane parallelism for the simulated cluster: per-worker jobs
//! run on scoped OS threads (one per worker, like Spark executors)
//! or sequentially for deterministic single-threaded runs. Statistical
//! correctness never depends on the execution mode — every worker owns a
//! jump-ahead RNG substream — so `parallel` is purely a performance choice.

/// Executes one closure per worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerPool {
    parallel: bool,
}

impl WorkerPool {
    /// Sequential execution (deterministic ordering; used by tests).
    pub fn sequential() -> Self {
        Self { parallel: false }
    }

    /// Threaded execution — one OS thread per job via `std::thread::scope`.
    pub fn threaded() -> Self {
        Self { parallel: true }
    }

    /// Whether jobs run on threads.
    pub fn is_parallel(&self) -> bool {
        self.parallel
    }

    /// Run all jobs and collect their results in job order.
    pub fn run<T, F>(&self, jobs: Vec<F>) -> Vec<T>
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        if !self.parallel || jobs.len() <= 1 {
            return jobs.into_iter().map(|f| f()).collect();
        }
        std::thread::scope(|scope| {
            let handles: Vec<_> = jobs.into_iter().map(|f| scope.spawn(f)).collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker thread panicked"))
                .collect()
        })
    }

    /// Run a job against each element of a mutable slice (each worker owns
    /// one element — e.g. its reservoir partition), in parallel when
    /// enabled.
    pub fn run_over<S, T, F>(&self, state: &mut [S], f: F) -> Vec<T>
    where
        S: Send,
        T: Send,
        F: Fn(usize, &mut S) -> T + Sync,
    {
        if !self.parallel || state.len() <= 1 {
            return state.iter_mut().enumerate().map(|(i, s)| f(i, s)).collect();
        }
        std::thread::scope(|scope| {
            let f = &f;
            let handles: Vec<_> = state
                .iter_mut()
                .enumerate()
                .map(|(i, s)| scope.spawn(move || f(i, s)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker thread panicked"))
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_preserves_order() {
        let pool = WorkerPool::sequential();
        let jobs: Vec<_> = (0..8).map(|i| move || i * 10).collect();
        assert_eq!(pool.run(jobs), vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn threaded_preserves_order() {
        let pool = WorkerPool::threaded();
        let jobs: Vec<_> = (0..8).map(|i| move || i * 10).collect();
        assert_eq!(pool.run(jobs), vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn threaded_actually_runs_concurrently() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let pool = WorkerPool::threaded();
        let peak = Arc::new(AtomicUsize::new(0));
        let live = Arc::new(AtomicUsize::new(0));
        let jobs: Vec<_> = (0..4)
            .map(|_| {
                let peak = Arc::clone(&peak);
                let live = Arc::clone(&live);
                move || {
                    let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(20));
                    live.fetch_sub(1, Ordering::SeqCst);
                }
            })
            .collect();
        pool.run(jobs);
        assert!(peak.load(Ordering::SeqCst) >= 2, "no concurrency observed");
    }

    #[test]
    fn run_over_mutates_each_element() {
        let pool = WorkerPool::threaded();
        let mut parts: Vec<Vec<u32>> = vec![vec![1], vec![2, 3], vec![]];
        let lens = pool.run_over(&mut parts, |i, p| {
            p.push(i as u32 + 100);
            p.len()
        });
        assert_eq!(lens, vec![2, 3, 1]);
        assert_eq!(parts[2], vec![102]);
    }

    #[test]
    fn empty_job_list() {
        let pool = WorkerPool::threaded();
        let jobs: Vec<fn() -> u32> = Vec::new();
        assert!(pool.run(jobs).is_empty());
    }
}
