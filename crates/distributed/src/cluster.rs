//! Worker-pool execution (§5.1's driver/executor split).
//!
//! Real data-plane parallelism for the simulated cluster. A **threaded**
//! pool owns a cache of long-lived worker threads fed through a shared job
//! queue — jobs are dispatched with one lock acquisition and a condvar
//! wake, instead of the `thread::spawn` + `join` (tens of microseconds of
//! kernel work) the pre-PR-3 implementation paid *per job per batch*. The
//! thread cache grows lazily to the widest `run` call and is reused for
//! the lifetime of the pool, so a D-R-TBS instance processing thousands of
//! batches spawns its worker threads exactly once. The scaling benchmark's
//! `pool_dispatch` rows quantify the per-batch saving.
//!
//! A **sequential** pool runs jobs inline for deterministic
//! single-threaded runs. Statistical correctness never depends on the
//! execution mode — every worker owns a jump-ahead RNG substream — so
//! threading is purely a performance choice.

use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

#[derive(Default)]
struct PoolState {
    queue: VecDeque<Job>,
    closed: bool,
}

#[derive(Default)]
struct PoolShared {
    state: Mutex<PoolState>,
    available: Condvar,
}

/// The persistent half of a threaded pool: the shared queue plus the
/// cached worker threads, joined when the last [`WorkerPool`] clone drops.
struct PoolHandle {
    shared: Arc<PoolShared>,
    threads: Mutex<Vec<JoinHandle<()>>>,
}

impl PoolHandle {
    fn new() -> Self {
        Self {
            shared: Arc::new(PoolShared::default()),
            threads: Mutex::new(Vec::new()),
        }
    }

    /// Grow the thread cache to at least `want` workers. Workers are
    /// immortal until the pool closes: a panicking job is caught inside
    /// the worker (the caller still observes the failure — its result
    /// channel closes without a message, see [`collect_in_order`]), so
    /// the cached width can never silently shrink.
    fn ensure_threads(&self, want: usize) {
        let mut threads = self.threads.lock();
        while threads.len() < want {
            let shared = Arc::clone(&self.shared);
            let idx = threads.len();
            let handle = std::thread::Builder::new()
                .name(format!("tbs-pool-{idx}"))
                .spawn(move || loop {
                    let job = {
                        let mut state = shared.state.lock();
                        loop {
                            if let Some(job) = state.queue.pop_front() {
                                break Some(job);
                            }
                            if state.closed {
                                break None;
                            }
                            state = shared.available.wait(state);
                        }
                    };
                    match job {
                        Some(job) => {
                            // Contain job panics to the job: the worker
                            // survives for reuse and the failure reaches
                            // the dispatching caller through its result
                            // channel closing short.
                            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
                        }
                        None => return,
                    }
                })
                // INVARIANT: spawn fails only on OS resource exhaustion
                // (thread limit, OOM) — a pool-construction environment
                // failure, not a recoverable runtime fault.
                .expect("spawn pool worker");
            threads.push(handle);
        }
    }

    fn submit(&self, job: Job) {
        self.shared.state.lock().queue.push_back(job);
        self.available_notify();
    }

    fn available_notify(&self) {
        self.shared.available.notify_one();
    }
}

impl Drop for PoolHandle {
    fn drop(&mut self) {
        self.shared.state.lock().closed = true;
        self.shared.available.notify_all();
        for handle in self.threads.get_mut().drain(..) {
            let _ = handle.join();
        }
    }
}

/// Executes one closure per worker, either inline or on cached threads.
#[derive(Clone, Default)]
pub struct WorkerPool {
    /// `None` = sequential; `Some` = shared persistent thread cache.
    handle: Option<Arc<PoolHandle>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("parallel", &self.is_parallel())
            .finish()
    }
}

impl WorkerPool {
    /// Sequential execution (deterministic ordering; used by tests).
    pub fn sequential() -> Self {
        Self { handle: None }
    }

    /// Threaded execution on a persistent pool. Worker threads are spawned
    /// lazily — the cache grows to the widest `run`/`run_over` call — and
    /// live until the last clone of this pool drops.
    pub fn threaded() -> Self {
        Self {
            handle: Some(Arc::new(PoolHandle::new())),
        }
    }

    /// Whether jobs run on threads.
    pub fn is_parallel(&self) -> bool {
        self.handle.is_some()
    }

    /// Run all jobs and collect their results in job order.
    ///
    /// # Panics
    ///
    /// Panics if a job panics (the panic is surfaced on the caller).
    pub fn run<T, F>(&self, jobs: Vec<F>) -> Vec<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let Some(handle) = self.handle.as_ref().filter(|_| jobs.len() > 1) else {
            return jobs.into_iter().map(|f| f()).collect();
        };
        handle.ensure_threads(jobs.len());
        let n = jobs.len();
        let (tx, rx) = mpsc::channel::<(usize, T)>();
        for (i, job) in jobs.into_iter().enumerate() {
            let tx = tx.clone();
            handle.submit(Box::new(move || {
                let _ = tx.send((i, job()));
            }));
        }
        drop(tx);
        collect_in_order(rx, n)
    }

    /// Run a job against each element of a mutable vector (each worker
    /// owns one element — e.g. its reservoir partition), in parallel when
    /// enabled. Elements are moved to the workers and moved back in place,
    /// so `S` must be `Send + 'static`.
    ///
    /// # Panics
    ///
    /// Panics if a job panics. In that case the elements are **not**
    /// restored — `state` is left empty — so a caller that catches the
    /// panic must treat the vector as consumed.
    pub fn run_over<S, T, F>(&self, state: &mut Vec<S>, f: F) -> Vec<T>
    where
        S: Send + 'static,
        T: Send + 'static,
        F: Fn(usize, &mut S) -> T + Send + Sync + 'static,
    {
        let Some(handle) = self.handle.as_ref().filter(|_| state.len() > 1) else {
            return state.iter_mut().enumerate().map(|(i, s)| f(i, s)).collect();
        };
        handle.ensure_threads(state.len());
        let n = state.len();
        let f = Arc::new(f);
        let (tx, rx) = mpsc::channel::<(usize, (S, T))>();
        for (i, mut s) in std::mem::take(state).into_iter().enumerate() {
            let tx = tx.clone();
            let f = Arc::clone(&f);
            handle.submit(Box::new(move || {
                let out = f(i, &mut s);
                let _ = tx.send((i, (s, out)));
            }));
        }
        drop(tx);
        let mut results = Vec::with_capacity(n);
        for (s, out) in collect_in_order(rx, n) {
            state.push(s);
            results.push(out);
        }
        results
    }
}

fn collect_in_order<T>(rx: mpsc::Receiver<(usize, T)>, n: usize) -> Vec<T> {
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    for _ in 0..n {
        // INVARIANT: exactly n jobs hold senders; `recv` errs only if a
        // job died before sending (its panic was contained to the pool
        // worker) — re-raising it here propagates the job's failure to
        // the dispatching caller instead of returning short results.
        let (i, value) = rx.recv().expect("worker thread panicked");
        slots[i] = Some(value);
    }
    slots
        .into_iter()
        // INVARIANT: the n jobs carry indices 0..n exactly once each, so
        // after n receipts every slot is filled.
        .map(|s| s.expect("every index reported"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_preserves_order() {
        let pool = WorkerPool::sequential();
        let jobs: Vec<_> = (0..8).map(|i| move || i * 10).collect();
        assert_eq!(pool.run(jobs), vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn threaded_preserves_order() {
        let pool = WorkerPool::threaded();
        let jobs: Vec<_> = (0..8).map(|i| move || i * 10).collect();
        assert_eq!(pool.run(jobs), vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn threaded_actually_runs_concurrently() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let pool = WorkerPool::threaded();
        let peak = Arc::new(AtomicUsize::new(0));
        let live = Arc::new(AtomicUsize::new(0));
        let jobs: Vec<_> = (0..4)
            .map(|_| {
                let peak = Arc::clone(&peak);
                let live = Arc::clone(&live);
                move || {
                    let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(20));
                    live.fetch_sub(1, Ordering::SeqCst);
                }
            })
            .collect();
        pool.run(jobs);
        assert!(peak.load(Ordering::SeqCst) >= 2, "no concurrency observed");
    }

    #[test]
    fn threads_are_reused_across_runs() {
        // The whole point of the persistent pool: repeated dispatch must
        // not spawn new threads. Record each job's thread id over many
        // rounds; the set must not exceed the pool width.
        use std::collections::HashSet;
        let pool = WorkerPool::threaded();
        let mut seen: HashSet<std::thread::ThreadId> = HashSet::new();
        for _ in 0..50 {
            let jobs: Vec<_> = (0..4).map(|_| || std::thread::current().id()).collect();
            seen.extend(pool.run(jobs));
        }
        assert!(
            seen.len() <= 4,
            "expected ≤4 cached threads, saw {}",
            seen.len()
        );
    }

    #[test]
    fn run_over_mutates_each_element() {
        let pool = WorkerPool::threaded();
        let mut parts: Vec<Vec<u32>> = vec![vec![1], vec![2, 3], vec![]];
        let lens = pool.run_over(&mut parts, |i, p| {
            p.push(i as u32 + 100);
            p.len()
        });
        assert_eq!(lens, vec![2, 3, 1]);
        assert_eq!(parts[2], vec![102]);
    }

    #[test]
    fn run_over_restores_element_order() {
        let pool = WorkerPool::threaded();
        let mut parts: Vec<u32> = (0..8).collect();
        let doubled = pool.run_over(&mut parts, |_, x| {
            *x += 100;
            *x * 2
        });
        assert_eq!(parts, (100..108).collect::<Vec<_>>());
        assert_eq!(doubled, (100..108).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_job_list() {
        let pool = WorkerPool::threaded();
        let jobs: Vec<fn() -> u32> = Vec::new();
        assert!(pool.run(jobs).is_empty());
    }

    #[test]
    fn pool_recovers_after_panicking_jobs() {
        // A panicking job must surface on the caller without costing the
        // pool its worker threads; the next dispatch runs normally.
        let pool = WorkerPool::threaded();
        let jobs: Vec<_> = (0..2)
            .map(|_| || -> u32 { panic!("job failure") })
            .collect();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| pool.run(jobs)));
        assert!(result.is_err(), "job panic must surface on the caller");
        let jobs: Vec<_> = (0..4).map(|i| move || i * 2).collect();
        assert_eq!(pool.run(jobs), vec![0, 2, 4, 6]);
    }

    #[test]
    fn clones_share_the_thread_cache() {
        let pool = WorkerPool::threaded();
        let clone = pool.clone();
        let a = pool.run(
            (0..4)
                .map(|_| || std::thread::current().id())
                .collect::<Vec<_>>(),
        );
        let b = clone.run(
            (0..4)
                .map(|_| || std::thread::current().id())
                .collect::<Vec<_>>(),
        );
        let set: std::collections::HashSet<_> = a.into_iter().chain(b).collect();
        assert!(set.len() <= 4, "clone spawned extra threads");
    }
}
