//! Proof that the parallel ingest engine's steady-state per-batch path
//! performs **zero heap allocations** beyond the caller-provided batch —
//! the multi-threaded extension of `tbs-core`'s `alloc_free` test.
//!
//! The same counting global allocator tallies every `alloc` / `realloc` /
//! `alloc_zeroed` across *all* threads, so a clean count proves the whole
//! pipeline allocation-free at once: the driver's split (recycled
//! sub-batch buffers), the bounded queues (VecDeques at high-water), and
//! every shard's sampler (`observe_drain` on warm buffers). The engine is
//! warmed until the circulating buffer population reaches its fixed point
//! (the driver's recycle `try_pop` never misses again), measured batches
//! are pre-generated, and the counter must not move while they are fed.
//! Deallocation of the consumed caller batches is intentionally not
//! counted — handing over the batch is the caller's cost by contract.
//!
//! Everything runs inside a single `#[test]` because the counter is
//! process-global and the libtest harness runs tests concurrently.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use tbs_core::merge::ShardSpec;
use tbs_core::{RTbs, TTbs};
use tbs_distributed::engine::{EngineConfig, ParallelIngestEngine};

struct CountingAllocator;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates every operation to `System`; the counter is a relaxed
// atomic with no other side effects.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// Pre-generate `count` batches of the schedule starting at step `from`.
fn gen(schedule: impl Fn(usize) -> usize, from: usize, count: usize) -> Vec<Vec<u64>> {
    (from..from + count)
        .map(|t| {
            (0..schedule(t) as u64)
                .map(|i| t as u64 * 10_000 + i)
                .collect()
        })
        .collect()
}

/// Warm `engine`-style feeding with `warmup` batches, quiesce, then assert
/// that feeding `measured` pre-generated batches (plus a final quiesce so
/// every shard has fully absorbed them) allocates nothing.
fn assert_engine_alloc_free<S>(
    label: &str,
    engine: &mut ParallelIngestEngine<S>,
    schedule: impl Fn(usize) -> usize + Copy,
    warmup: usize,
    measured: usize,
) where
    S: tbs_core::merge::MergeableSample<Item = u64> + Clone + Send + 'static,
{
    for batch in gen(schedule, 0, warmup) {
        engine.ingest(batch).unwrap();
    }
    engine.quiesce().unwrap();
    let batches = gen(schedule, warmup, measured);
    let before = ALLOCS.load(Ordering::SeqCst);
    for batch in batches {
        engine.ingest(batch).unwrap();
    }
    engine.quiesce().unwrap();
    let after = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "{label}: {} heap allocations across {measured} steady-state engine \
         ingest calls (driver + all shard threads)",
        after - before
    );
}

#[test]
fn steady_state_engine_ingest_allocates_nothing() {
    // R-TBS, 4 shards, saturated regime: every shard runs the in-place
    // saturated→saturated replacement (n = 1000, λ = 0.1, b = 100 ⇒
    // per-shard W* ≈ 263 > per-shard capacity ⌈1000/4⌉ + 1 = 251).
    let mut rtbs_sat: ParallelIngestEngine<RTbs<u64>> =
        ParallelIngestEngine::new(EngineConfig::new(ShardSpec::rtbs(0.1, 1000, 4), 1));
    assert_engine_alloc_free("R-TBS 4-shard saturated", &mut rtbs_sat, |_| 100, 600, 600);

    // R-TBS, 4 shards, bursty: erratic batch sizes (incl. empty and
    // capacity-sized) exercise all four transitions on every shard; the
    // warmup covers many cycles so every buffer hits high water.
    let bursty = |t: usize| [0usize, 1, 250, 7, 90, 1000][t % 6];
    let mut rtbs_bursty: ParallelIngestEngine<RTbs<u64>> =
        ParallelIngestEngine::new(EngineConfig::new(ShardSpec::rtbs(0.1, 1000, 4), 2));
    assert_engine_alloc_free("R-TBS 4-shard bursty", &mut rtbs_bursty, bursty, 600, 600);

    // Single-shard fast path: the caller's batch is handed to the shard
    // untouched, so nothing in the engine allocates at all.
    let mut rtbs_single: ParallelIngestEngine<RTbs<u64>> =
        ParallelIngestEngine::new(EngineConfig::new(ShardSpec::rtbs(0.1, 1000, 1), 3));
    assert_engine_alloc_free("R-TBS 1-shard", &mut rtbs_single, |_| 100, 500, 500);

    // T-TBS, 2 shards: the append-based sampler through the same pipeline.
    let mut ttbs: ParallelIngestEngine<TTbs<u64>> =
        ParallelIngestEngine::new(EngineConfig::new(ShardSpec::ttbs(0.1, 1000, 100.0, 2), 4));
    assert_engine_alloc_free("T-TBS 2-shard", &mut ttbs, |_| 100, 2000, 300);
}
