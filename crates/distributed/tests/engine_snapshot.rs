//! Snapshot-protocol correctness: epoch-published `FrozenSample`s must be
//! **bit-identical** to what the exact synchronous `quiesce()`+`sample()`
//! path would have produced at the same barrier point, for R-TBS and
//! T-TBS at 1 and 4 shards, and publication must never disturb the
//! engine's own trajectory.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use tbs_core::merge::{MergeableSample, ShardSpec};
use tbs_core::{RTbs, TTbs};
use tbs_distributed::engine::{EngineConfig, ParallelIngestEngine};

/// A deterministic mixed batch schedule (empty, small, large batches).
fn batch(t: u64) -> Vec<u64> {
    let b = [40u64, 0, 150, 7, 93, 1][t as usize % 6];
    (0..b).map(|i| t * 1000 + i).collect()
}

/// Drive `engine` through batches `[from, to)`.
fn feed<S>(engine: &mut ParallelIngestEngine<S>, from: u64, to: u64)
where
    S: MergeableSample<Item = u64> + Clone + Send + 'static,
{
    for t in from..to {
        engine.ingest(batch(t)).unwrap();
    }
}

/// For every barrier point in `checkpoints`: the published snapshot must
/// equal the sample a *fresh* engine (same seed and config) would return
/// from its exact synchronous path after ingesting the same prefix.
fn assert_snapshots_match_exact_path<S>(spec: ShardSpec, seed: u64, checkpoints: &[u64])
where
    S: MergeableSample<Item = u64> + Clone + Send + 'static,
{
    let cfg = EngineConfig::new(spec, seed);
    let mut engine: ParallelIngestEngine<S> = ParallelIngestEngine::new(cfg);
    let cell = engine.snapshot_cell();
    let mut fed = 0;
    for &point in checkpoints {
        feed(&mut engine, fed, point);
        fed = point;
        let epoch = engine.request_snapshot().unwrap();
        let frozen = cell.wait_for_epoch(epoch).expect("engine alive");
        assert_eq!(frozen.epoch(), epoch);
        assert_eq!(frozen.batches_observed(), point);

        // Exact reference: fresh engine, same seed, same prefix, the
        // synchronous quiesce+merge+realize path. Its driver RNG is in
        // the same (never consumed) position the snapshot recorded.
        let mut reference: ParallelIngestEngine<S> = ParallelIngestEngine::new(cfg);
        feed(&mut reference, 0, point);
        let exact = reference.sample().unwrap();
        assert_eq!(
            frozen.items(),
            &exact[..],
            "epoch {epoch} at barrier {point} diverged from the exact path \
             (shards={})",
            spec.shards
        );
    }
}

#[test]
fn rtbs_snapshots_are_bit_identical_to_exact_samples() {
    for k in [1usize, 4] {
        assert_snapshots_match_exact_path::<RTbs<u64>>(
            ShardSpec::rtbs(0.1, 64, k),
            42 + k as u64,
            &[5, 17, 40, 60],
        );
    }
}

#[test]
fn ttbs_snapshots_are_bit_identical_to_exact_samples() {
    for k in [1usize, 4] {
        assert_snapshots_match_exact_path::<TTbs<u64>>(
            ShardSpec::ttbs(0.1, 50, 48.5, k),
            7 + k as u64,
            &[6, 18, 36, 66],
        );
    }
}

#[test]
fn snapshot_requests_do_not_disturb_the_trajectory() {
    // A run that publishes snapshots mid-stream must end bit-identical to
    // a run that never does: request_snapshot consumes no randomness.
    for k in [1usize, 4] {
        let cfg = EngineConfig::new(ShardSpec::rtbs(0.1, 32, k), 5);
        let mut plain = ParallelIngestEngine::<RTbs<u64>>::new(cfg);
        let mut observed = ParallelIngestEngine::<RTbs<u64>>::new(cfg);
        let cell = observed.snapshot_cell();
        let mut last = 0;
        for t in 0..40u64 {
            plain.ingest(batch(t)).unwrap();
            observed.ingest(batch(t)).unwrap();
            if t % 9 == 0 {
                last = observed.request_snapshot().unwrap();
            }
        }
        assert!(cell.wait_for_epoch(last).is_some());
        assert_eq!(
            plain.sample().unwrap(),
            observed.sample().unwrap(),
            "k={k}: trajectory moved"
        );
    }
}

#[test]
fn epochs_publish_in_order_with_exact_staleness_stamps() {
    let mut engine =
        ParallelIngestEngine::<RTbs<u64>>::new(EngineConfig::new(ShardSpec::rtbs(0.2, 32, 2), 9));
    let cell = engine.snapshot_cell();
    let mut epochs = Vec::new();
    for t in 0..30u64 {
        engine.ingest(batch(t)).unwrap();
        if t % 5 == 4 {
            epochs.push((engine.request_snapshot().unwrap(), t + 1));
        }
    }
    for &(epoch, fed) in &epochs {
        let frozen = cell.wait_for_epoch(epoch).expect("published");
        assert!(frozen.epoch() >= epoch);
        if frozen.epoch() == epoch {
            assert_eq!(frozen.batches_observed(), fed);
        }
    }
    assert_eq!(engine.published_epoch(), epochs.last().unwrap().0);
    assert_eq!(engine.requested_epoch(), epochs.last().unwrap().0);
}

#[test]
fn published_metadata_reflects_the_weight_recursion() {
    let lambda = 0.1f64;
    let mut engine = ParallelIngestEngine::<RTbs<u64>>::new(EngineConfig::new(
        ShardSpec::rtbs(lambda, 50, 4),
        11,
    ));
    let cell = engine.snapshot_cell();
    let mut w = 0.0f64;
    for t in 0..25u64 {
        let b = batch(t);
        w = w * (-lambda).exp() + b.len() as f64;
        engine.ingest(b).unwrap();
    }
    let epoch = engine.request_snapshot().unwrap();
    let frozen = cell.wait_for_epoch(epoch).unwrap();
    let total = frozen.total_weight().expect("R-TBS tracks stream weight");
    assert!((total - w).abs() < 1e-9, "W {total} vs exact {w}");
    assert!((frozen.expected_size() - w.min(50.0)).abs() < 1e-9);
    assert!(frozen.len() <= 50);
}

#[test]
fn cell_outlives_the_engine_and_closes_cleanly() {
    let mut engine =
        ParallelIngestEngine::<RTbs<u64>>::new(EngineConfig::new(ShardSpec::rtbs(0.1, 16, 2), 3));
    let cell = engine.snapshot_cell();
    feed(&mut engine, 0, 10);
    let epoch = engine.request_snapshot().unwrap();
    assert!(cell.wait_for_epoch(epoch).is_some());
    drop(engine);
    // The last publication survives the engine...
    assert!(cell.is_closed());
    assert_eq!(cell.latest().unwrap().epoch(), epoch);
    // ...and waiting for epochs that can no longer arrive returns None
    // instead of hanging.
    assert!(cell.wait_for_epoch(epoch + 1).is_none());
}

#[test]
fn concurrent_readers_never_observe_torn_samples_while_saturated() {
    // N reader threads hammer latest() while the driver keeps the 4-shard
    // pipeline saturated and publishes every few batches. Readers check
    // self-consistency of every snapshot; the driver finishing the feed
    // proves ingest made progress (no deadlock under
    // snapshot-while-saturated).
    let spec = ShardSpec::rtbs(0.1, 100, 4);
    let mut engine = ParallelIngestEngine::<RTbs<u64>>::new(EngineConfig::new(spec, 77));
    let cell = engine.snapshot_cell();
    let stop = Arc::new(AtomicU64::new(0));
    let readers: Vec<_> = (0..4)
        .map(|_| {
            let cell = engine.snapshot_cell();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut seen = 0u64;
                let mut polls = 0u64;
                while stop.load(Ordering::Acquire) == 0 {
                    if cell.published_epoch() > seen {
                        let f = cell.latest().expect("epoch > 0 implies a publication");
                        // Monotonic epochs, capacity bound, coherent
                        // metadata: a torn/partial publication would trip
                        // one of these.
                        assert!(f.epoch() >= seen);
                        assert!(f.len() <= 100);
                        assert!(f.expected_size() <= 100.0 + 1e-9);
                        assert!(f.total_weight().unwrap().is_finite());
                        assert!(f.items().iter().all(|&x| x < 1_000_000));
                        seen = f.epoch();
                    }
                    polls += 1;
                }
                (seen, polls)
            })
        })
        .collect();

    let mut last = 0;
    for t in 0..600u64 {
        engine
            .ingest((0..200).map(|i| t * 1000 + i).collect())
            .unwrap();
        if t % 3 == 0 {
            last = engine.request_snapshot().unwrap();
        }
    }
    assert!(cell.wait_for_epoch(last).is_some(), "publication stalled");
    stop.store(1, Ordering::Release);
    for r in readers {
        let (seen, polls) = r.join().expect("reader panicked");
        assert!(polls > 0);
        assert!(seen <= last);
    }
    // The engine is still fully functional afterwards.
    assert!(engine.sample().unwrap().len() <= 100);
}
