//! Property-based tests of the distributed samplers: for *any* batch
//! schedule, every strategy's scalar state must match single-node R-TBS
//! exactly, size bounds must hold, and the cost ledger must stay
//! consistent.

use proptest::prelude::*;
use rand::SeedableRng;
use tbs_core::RTbs;
use tbs_distributed::Strategy as ImplStrategy;
use tbs_distributed::{DRTbs, DTTbs, DrtbsConfig, DttbsConfig};
use tbs_stats::rng::Xoshiro256PlusPlus;

fn schedules() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0u64..80, 1..25)
}

fn strategies() -> impl Strategy<Value = ImplStrategy> {
    prop_oneof![
        Just(ImplStrategy::CentKvRepartitionJoin),
        Just(ImplStrategy::CentKvCoLocatedJoin),
        Just(ImplStrategy::CentCoPartitioned),
        Just(ImplStrategy::DistCoPartitioned),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn drtbs_scalar_state_matches_single_node(
        schedule in schedules(),
        strategy in strategies(),
        capacity in 1usize..60,
        workers in 1usize..6,
        seed in 0u64..1_000_000,
    ) {
        let lambda = 0.2;
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        let mut single: RTbs<u64> = RTbs::new(lambda, capacity);
        let cfg = DrtbsConfig::new(lambda, capacity, workers, strategy);
        let mut dist: DRTbs<u64> = DRTbs::new(cfg, seed);
        for (t, &b) in schedule.iter().enumerate() {
            let batch: Vec<u64> = (0..b).map(|i| t as u64 * 1000 + i).collect();
            single.observe(batch.clone(), &mut rng);
            dist.observe_batch(batch).unwrap();
            prop_assert!(
                (single.total_weight() - dist.total_weight()).abs() < 1e-6,
                "W diverged at t={}", t
            );
            prop_assert!(
                (single.sample_weight() - dist.sample_weight()).abs() < 1e-6,
                "C diverged at t={}", t
            );
            prop_assert_eq!(
                dist.stored_full_items(),
                dist.sample_weight().floor() as usize
            );
        }
    }

    #[test]
    fn drtbs_realized_samples_respect_capacity(
        schedule in schedules(),
        strategy in strategies(),
        capacity in 1usize..40,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        let cfg = DrtbsConfig::new(0.3, capacity, 3, strategy);
        let mut dist: DRTbs<u64> = DRTbs::new(cfg, seed);
        for &b in &schedule {
            dist.observe_batch((0..b).collect()).unwrap();
            prop_assert!(dist.realize_sample(&mut rng).unwrap().len() <= capacity);
        }
    }

    #[test]
    fn cost_ledger_is_internally_consistent(
        schedule in schedules(),
        strategy in strategies(),
        seed in 0u64..1_000_000,
    ) {
        let cfg = DrtbsConfig::new(0.1, 50, 4, strategy);
        let mut dist: DRTbs<u64> = DRTbs::new(cfg, seed);
        for &b in &schedule {
            let cost = dist.observe_batch((0..b).collect()).unwrap();
            // elapsed decomposes into the three components.
            let sum = cost.master_time + cost.worker_time + cost.network_time;
            prop_assert!((cost.elapsed - sum).abs() < 1e-9);
            prop_assert!(cost.elapsed >= 0.0);
            prop_assert!(cost.phases >= 1, "every batch has at least the ingest phase");
        }
        let total = dist.cumulative_cost();
        prop_assert!(total.elapsed > 0.0);
    }

    #[test]
    fn dttbs_sample_is_subset_of_stream(
        schedule in prop::collection::vec(10u64..60, 1..20),
        workers in 1usize..6,
        seed in 0u64..1_000_000,
    ) {
        let cfg = DttbsConfig::new(0.1, 40, 10.0, workers);
        let mut d: DTTbs<u64> = DTTbs::new(cfg, seed);
        let mut arrived = std::collections::HashSet::new();
        for (t, &b) in schedule.iter().enumerate() {
            let batch: Vec<u64> = (0..b).map(|i| t as u64 * 1000 + i).collect();
            arrived.extend(batch.iter().copied());
            d.observe_batch(batch);
            for item in d.collect() {
                prop_assert!(arrived.contains(&item));
            }
        }
    }

    #[test]
    fn threading_never_changes_outcomes(
        schedule in schedules(),
        seed in 0u64..1_000_000,
    ) {
        let mut seq_cfg = DrtbsConfig::new(0.15, 30, 4, ImplStrategy::DistCoPartitioned);
        let mut par_cfg = seq_cfg;
        seq_cfg.threaded = false;
        par_cfg.threaded = true;
        let mut seq: DRTbs<u64> = DRTbs::new(seq_cfg, seed);
        let mut par: DRTbs<u64> = DRTbs::new(par_cfg, seed);
        for (t, &b) in schedule.iter().enumerate() {
            let batch: Vec<u64> = (0..b).map(|i| t as u64 * 500 + i).collect();
            seq.observe_batch(batch.clone()).unwrap();
            par.observe_batch(batch).unwrap();
            prop_assert_eq!(seq.stored_full_items(), par.stored_full_items());
            prop_assert!((seq.sample_weight() - par.sample_weight()).abs() < 1e-12);
        }
    }
}
