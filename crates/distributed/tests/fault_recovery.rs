//! Fault-injection matrix over the supervised engine: every injected
//! failure × {R-TBS, T-TBS} × K ∈ {1, 4, 8} must (a) never hang, (b)
//! never abort the process, and (c) either recover **bit-identically**
//! (under [`RecoveryPolicy::RespawnFromBarrier`]) or surface a named
//! [`EngineError`] (under [`RecoveryPolicy::Fail`]).
//!
//! The faults come from the seeded [`FaultPlan`]: worker kills keyed to
//! a shard's deterministic stream position, merger kills keyed to the
//! merger's message index, and dropped/delayed queue pushes keyed to
//! (shard, global batch number) — so every scenario here is exactly
//! reproducible.

use std::sync::Arc;
use std::time::Duration;
use tbs_core::merge::ShardSpec;
use tbs_core::{RTbs, TTbs};
use tbs_distributed::engine::{
    EngineConfig, EngineError, EngineHealth, ParallelIngestEngine, RecoveryPolicy,
};
use tbs_distributed::fault::{silence_injected_panics, FaultPlan};
use tbs_distributed::snapshot::EpochWait;

/// An erratic schedule exercising all R-TBS transitions, including
/// empty batches (the decay clock must advance through a fault too).
fn schedule(t: u64) -> u64 {
    [40u64, 0, 7, 90, 3, 0, 250, 11, 0, 0, 64, 1][t as usize % 12]
}

fn batch_at(t: u64) -> Vec<u64> {
    (0..schedule(t)).map(|i| t * 1000 + i).collect()
}

const BATCHES: u64 = 60;

/// Drive `batches` batches through a fresh R-TBS engine under `plan`,
/// returning the final realized sample (`Err` if the pipeline failed).
fn run_rtbs(
    shards: usize,
    recovery: RecoveryPolicy,
    plan: Option<Arc<FaultPlan>>,
) -> (Result<Vec<u64>, EngineError>, EngineHealth) {
    let cfg = EngineConfig::new(ShardSpec::rtbs(0.2, 64, shards), 42).recovery(recovery);
    let mut engine: ParallelIngestEngine<RTbs<u64>> = match plan {
        Some(p) => ParallelIngestEngine::with_fault_plan(cfg, p),
        None => ParallelIngestEngine::new(cfg),
    };
    let sample = drive(&mut engine);
    let health = engine.health();
    (sample, health)
}

fn run_ttbs(
    shards: usize,
    recovery: RecoveryPolicy,
    plan: Option<Arc<FaultPlan>>,
) -> (Result<Vec<u64>, EngineError>, EngineHealth) {
    let cfg = EngineConfig::new(ShardSpec::ttbs(0.1, 50, 47.0, shards), 42).recovery(recovery);
    let mut engine: ParallelIngestEngine<TTbs<u64>> = match plan {
        Some(p) => ParallelIngestEngine::with_fault_plan(cfg, p),
        None => ParallelIngestEngine::new(cfg),
    };
    let sample = drive(&mut engine);
    let health = engine.health();
    (sample, health)
}

fn drive<S>(engine: &mut ParallelIngestEngine<S>) -> Result<Vec<S::Item>, EngineError>
where
    S: tbs_core::merge::MergeableSample<Item = u64> + Clone + Send + 'static,
{
    for t in 0..BATCHES {
        engine.ingest(batch_at(t))?;
        // Periodic publishes keep the merger's message stream moving (so
        // merger-keyed faults actually fire) and refresh the recovery
        // fork records mid-stream, like a serving deployment would.
        if t % 12 == 11 {
            engine.request_snapshot()?;
        }
    }
    // The final sample quiesces every shard, so any injected death that
    // ingest outran is detected here at the latest.
    engine.sample()
}

/// The full injected-failure matrix: for each sampler and shard count,
/// each fault either fails typed (Fail) or recovers to the bit-identical
/// fault-free sample (RespawnFromBarrier). `delay_push` is a pure
/// slowdown and must be invisible under both policies.
#[test]
fn fault_matrix_is_typed_or_bit_identical() {
    silence_injected_panics();
    // (label, plan builder) — positions chosen mid-stream so state
    // exists to lose. Worker kills are keyed to the shard's own batch
    // index; pushes to the global batch number.
    type PlanBuilder = fn(usize) -> FaultPlan;
    let plans: &[(&str, PlanBuilder)] = &[
        ("kill_worker", |shards| {
            FaultPlan::new().kill_worker(shards - 1, 20)
        }),
        ("kill_merger", |_| FaultPlan::new().kill_merger(3)),
        ("drop_push", |shards| {
            FaultPlan::new().drop_push(shards / 2, 30)
        }),
        ("delay_push", |shards| {
            FaultPlan::new().delay_push(shards / 2, 30, 5)
        }),
    ];
    for &shards in &[1usize, 4, 8] {
        let (baseline_r, _) = run_rtbs(shards, RecoveryPolicy::Fail, None);
        let baseline_r = baseline_r.expect("fault-free run succeeds");
        let (baseline_t, _) = run_ttbs(shards, RecoveryPolicy::Fail, None);
        let baseline_t = baseline_t.expect("fault-free run succeeds");
        for (label, build) in plans {
            // kill_merger: a 1-shard engine still has a merger thread,
            // so every scenario applies at every K.
            let harmless = *label == "delay_push";

            let (got, health) =
                run_rtbs(shards, RecoveryPolicy::Fail, Some(Arc::new(build(shards))));
            check_fail_policy(label, harmless, shards, &baseline_r, got, health);

            let (got, health) = run_rtbs(
                shards,
                RecoveryPolicy::RespawnFromBarrier,
                Some(Arc::new(build(shards))),
            );
            check_respawn_policy(label, harmless, shards, &baseline_r, got, health);

            let (got, health) =
                run_ttbs(shards, RecoveryPolicy::Fail, Some(Arc::new(build(shards))));
            check_fail_policy(label, harmless, shards, &baseline_t, got, health);

            let (got, health) = run_ttbs(
                shards,
                RecoveryPolicy::RespawnFromBarrier,
                Some(Arc::new(build(shards))),
            );
            check_respawn_policy(label, harmless, shards, &baseline_t, got, health);
        }
    }
}

fn check_fail_policy<I: PartialEq + std::fmt::Debug>(
    label: &str,
    harmless: bool,
    shards: usize,
    baseline: &[I],
    got: Result<Vec<I>, EngineError>,
    health: EngineHealth,
) {
    if harmless {
        assert_eq!(
            got.as_deref().expect("delay is not a fault"),
            baseline,
            "{label}/K={shards}: a delayed push changed the sample"
        );
        assert_eq!(health, EngineHealth::Healthy);
        return;
    }
    let cause = got.expect_err(&format!(
        "{label}/K={shards}: fault must surface under Fail"
    ));
    assert_eq!(
        health,
        EngineHealth::Failed(cause.clone()),
        "{label}/K={shards}: health must record the typed cause"
    );
    match (label, &cause) {
        ("kill_worker", EngineError::ShardDead { .. })
        // A dying merger is seen either through its closed queue
        // (MergerDead), through the epoch cell it closes on the way out
        // (SnapshotLost), or — when its death interleaves with a barrier
        // protocol — as the shard-side push failure it provoked.
        | (
            "kill_merger",
            EngineError::MergerDead
            | EngineError::ShardDead { .. }
            | EngineError::SnapshotLost { .. },
        )
        | ("drop_push", EngineError::ChunkDropped { .. }) => {}
        other => panic!("{label}/K={shards}: unexpected cause {other:?}"),
    }
}

fn check_respawn_policy<I: PartialEq + std::fmt::Debug>(
    label: &str,
    harmless: bool,
    shards: usize,
    baseline: &[I],
    got: Result<Vec<I>, EngineError>,
    health: EngineHealth,
) {
    let got = got.unwrap_or_else(|e| {
        panic!("{label}/K={shards}: supervised engine must absorb the fault, got {e}")
    });
    assert_eq!(
        got, baseline,
        "{label}/K={shards}: recovery must be bit-identical to the fault-free stream"
    );
    if harmless {
        assert_eq!(health, EngineHealth::Healthy);
    } else {
        assert!(
            matches!(health, EngineHealth::Degraded { recoveries } if recoveries >= 1),
            "{label}/K={shards}: health must count the recovery, got {health:?}"
        );
    }
}

/// Recovery must also work *after* barriers have trimmed the replay log:
/// the shard restores from its newest fork record, not from stream start.
#[test]
fn recovery_after_barriers_uses_the_latest_fork() {
    silence_injected_panics();
    let spec = ShardSpec::rtbs(0.2, 64, 4);
    let cfg = EngineConfig::new(spec, 7).recovery(RecoveryPolicy::RespawnFromBarrier);

    let mut clean: ParallelIngestEngine<RTbs<u64>> = ParallelIngestEngine::new(cfg);
    let plan = FaultPlan::new().kill_worker(2, 40);
    let mut faulty: ParallelIngestEngine<RTbs<u64>> =
        ParallelIngestEngine::with_fault_plan(cfg, Arc::new(plan));

    for engine in [&mut clean, &mut faulty] {
        for t in 0..30 {
            engine.ingest(batch_at(t)).unwrap();
        }
        // A published barrier refreshes every shard's fork record and
        // trims the replay log behind it.
        let epoch = engine.request_snapshot().unwrap();
        assert!(engine
            .snapshot_cell()
            .wait_for_epoch_timeout(epoch, Duration::from_secs(30))
            .published()
            .is_some());
        for t in 30..70 {
            engine.ingest(batch_at(t)).unwrap();
        }
        // Force detection before reading the recovery counter: ingest can
        // outrun the injected death (queues are deep), but a quiesce
        // cannot — it must hear back from the killed shard.
        engine.quiesce().unwrap();
    }
    assert_eq!(faulty.recoveries(), 1);
    assert_eq!(
        clean.sample().unwrap(),
        faulty.sample().unwrap(),
        "post-barrier recovery diverged from the fault-free stream"
    );
}

/// Back-to-back faults: the supervisor must survive further kills after
/// already having recovered once, still bit-identically. Quiesce points
/// sit between the fault sites so every death is detected (and its
/// rebuild finished) *before* the stream advances past the next site —
/// a recovery's replay bypasses the injection hooks, so without the
/// fences a single rebuild could silently absorb a later fault.
#[test]
fn repeated_faults_accumulate_recoveries() {
    silence_injected_panics();
    let plan = Arc::new(
        FaultPlan::new()
            .kill_worker(0, 10)
            .kill_worker(3, 25)
            .kill_merger(5),
    );
    let run = |plan: Option<Arc<FaultPlan>>| {
        let cfg = EngineConfig::new(ShardSpec::rtbs(0.2, 64, 4), 42)
            .recovery(RecoveryPolicy::RespawnFromBarrier);
        let mut engine: ParallelIngestEngine<RTbs<u64>> = match plan {
            Some(p) => ParallelIngestEngine::with_fault_plan(cfg, p),
            None => ParallelIngestEngine::new(cfg),
        };
        // Segment 1 covers worker kill #1 (shard 0, batch 10)…
        for t in 0..15 {
            engine.ingest(batch_at(t)).unwrap();
        }
        engine.quiesce().unwrap();
        // …segment 2 covers worker kill #2 (shard 3, batch 25)…
        for t in 15..30 {
            engine.ingest(batch_at(t)).unwrap();
        }
        engine.quiesce().unwrap();
        // …and two barriers feed the post-recovery merger incarnation a
        // request + K forks each (plus tree publications), carrying its
        // message ordinal past the kill at index 5.
        engine.request_snapshot().unwrap();
        engine.quiesce().unwrap();
        engine.request_snapshot().unwrap();
        for t in 30..BATCHES {
            engine.ingest(batch_at(t)).unwrap();
        }
        // The final sample quiesces and rebuilds the merge pipeline, so
        // the merger kill is detected here at the latest.
        let sample = engine.sample().unwrap();
        (sample, engine.health())
    };
    let (clean, _) = run(None);
    let (got, health) = run(Some(Arc::clone(&plan)));
    assert_eq!(
        got, clean,
        "multi-fault recovery diverged from the fault-free stream"
    );
    assert_eq!(plan.fired_count(), 3, "every planned fault must fire");
    assert!(
        matches!(health, EngineHealth::Degraded { recoveries } if recoveries >= 3),
        "three fenced faults must mean three distinct recoveries, got {health:?}"
    );
}

/// A failed engine must answer every subsequent call with the recorded
/// cause immediately — no call may hang on the dead pipeline.
#[test]
fn failed_engine_answers_every_call_typed() {
    silence_injected_panics();
    let plan = FaultPlan::new().kill_worker(1, 5);
    let cfg = EngineConfig::new(ShardSpec::rtbs(0.2, 64, 4), 11);
    let mut engine: ParallelIngestEngine<RTbs<u64>> =
        ParallelIngestEngine::with_fault_plan(cfg, Arc::new(plan));
    let cause = drive(&mut engine)
        .map(|_| ())
        .expect_err("the kill must surface by the quiescing sample at the latest");
    assert_eq!(engine.health(), EngineHealth::Failed(cause.clone()));
    assert_eq!(engine.ingest(vec![1, 2, 3]).unwrap_err(), cause);
    assert_eq!(engine.quiesce().unwrap_err(), cause);
    assert_eq!(engine.sample().unwrap_err(), cause);
    assert_eq!(engine.save_parts().unwrap_err(), cause);
    assert_eq!(engine.request_snapshot().unwrap_err(), cause);
    assert_eq!(engine.request_checkpoint().unwrap_err(), cause);
}

/// Readers blocked on an epoch that will never publish must be woken by
/// the dying pipeline, not left hanging.
#[test]
fn reader_waiting_on_dead_publisher_returns_promptly() {
    silence_injected_panics();
    let plan = FaultPlan::new().kill_merger(1);
    let cfg = EngineConfig::new(ShardSpec::rtbs(0.2, 64, 2), 5);
    let mut engine: ParallelIngestEngine<RTbs<u64>> =
        ParallelIngestEngine::with_fault_plan(cfg, Arc::new(plan));
    let cell = engine.snapshot_cell();
    let waiter =
        std::thread::spawn(move || cell.wait_for_epoch_timeout(1, Duration::from_secs(30)));
    // Request epochs until the merger has died and the driver noticed.
    let mut saw_error = false;
    for t in 0..BATCHES {
        engine.ingest(batch_at(t)).unwrap_or(());
        if engine.request_snapshot().is_err() {
            saw_error = true;
            break;
        }
    }
    assert!(saw_error, "the merger kill must surface to the driver");
    match waiter.join().unwrap() {
        EpochWait::Published(_) | EpochWait::PublisherGone => {}
        EpochWait::TimedOut => panic!("waiter hung until its deadline on a dead publisher"),
    }
}

/// Dropping an engine whose merger is already dead while a barrier is
/// still in flight must not deadlock (the drop path must not wait on the
/// merger to drain the task queue).
#[test]
fn drop_with_dead_merger_and_inflight_barrier_does_not_deadlock() {
    silence_injected_panics();
    let plan = FaultPlan::new().kill_merger(0);
    let cfg = EngineConfig::new(ShardSpec::rtbs(0.2, 64, 4), 13);
    let mut engine: ParallelIngestEngine<RTbs<u64>> =
        ParallelIngestEngine::with_fault_plan(cfg, Arc::new(plan));
    // The first merger message kills it; the barrier below may be
    // enqueued before the driver ever notices.
    for t in 0..4 {
        engine.ingest(batch_at(t)).unwrap();
    }
    let _ = engine.request_snapshot();
    drop(engine);
}

/// Same drop-order edge under the supervisor: a recovery triggered by a
/// late fault must not leave joins or queues behind when the engine is
/// dropped immediately afterwards.
#[test]
fn drop_right_after_recovery_is_clean() {
    silence_injected_panics();
    let plan = FaultPlan::new().kill_worker(0, 8);
    let cfg = EngineConfig::new(ShardSpec::rtbs(0.2, 64, 4), 17)
        .recovery(RecoveryPolicy::RespawnFromBarrier);
    let mut engine: ParallelIngestEngine<RTbs<u64>> =
        ParallelIngestEngine::with_fault_plan(cfg, Arc::new(plan));
    for t in 0..40 {
        engine.ingest(batch_at(t)).unwrap();
    }
    // Force detection: the quiesce runs into the closed response queue
    // and triggers the supervised respawn.
    engine.quiesce().unwrap();
    assert!(engine.recoveries() >= 1);
    drop(engine);
}
