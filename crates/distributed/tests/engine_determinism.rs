//! The parallel ingest engine must be a *deterministic* function of
//! `(seed, shard count, batch sequence)` — thread interleaving may change
//! which shard runs when, but never what any shard computes, because the
//! batch split is a pure function and every shard owns a jump-ahead RNG
//! substream consumed strictly in its own batch order. These tests drive
//! the real threaded pipeline (not the single-threaded shard simulation in
//! `tbs-core`) and also pin the engine's deterministic scalar state to the
//! single-node recursion.

use rand::SeedableRng;
use tbs_core::merge::ShardSpec;
use tbs_core::{RTbs, TTbs};
use tbs_distributed::engine::{EngineConfig, ParallelIngestEngine};
use tbs_stats::rng::Xoshiro256PlusPlus;

/// An erratic schedule exercising all four R-TBS transitions.
fn schedule(t: u64) -> u64 {
    [40u64, 0, 7, 90, 3, 0, 250, 11, 0, 0, 64, 1][t as usize % 12]
}

fn run_engine(seed: u64, shards: usize, batches: u64) -> (f64, f64, Vec<u64>) {
    let spec = ShardSpec::rtbs(0.2, 64, shards);
    let mut engine: ParallelIngestEngine<RTbs<u64>> =
        ParallelIngestEngine::new(EngineConfig::new(spec, seed));
    for t in 0..batches {
        let b = schedule(t);
        engine
            .ingest((0..b).map(|i| t * 1000 + i).collect())
            .unwrap();
    }
    let merged = engine.snapshot_merged().unwrap();
    let sample = engine.sample().unwrap();
    (merged.total_weight(), merged.sample_weight(), sample)
}

#[test]
fn same_seed_same_shards_is_bit_identical_across_runs() {
    for shards in [1usize, 2, 4, 8, 32, 64] {
        let (w1, c1, s1) = run_engine(42, shards, 60);
        let (w2, c2, s2) = run_engine(42, shards, 60);
        assert_eq!(w1, w2, "K={shards}: total weight diverged");
        assert_eq!(c1, c2, "K={shards}: sample weight diverged");
        assert_eq!(s1, s2, "K={shards}: realized samples diverged");
    }
}

#[test]
fn different_seeds_differ() {
    let (_, _, s1) = run_engine(1, 4, 60);
    let (_, _, s2) = run_engine(2, 4, 60);
    assert_ne!(s1, s2, "different seeds produced identical samples");
}

#[test]
fn engine_weights_match_single_node_recursion() {
    // (W, C) are deterministic; the threaded engine must track a
    // single-node R-TBS exactly at every snapshot point.
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(9);
    for shards in [1usize, 2, 4, 8, 32, 64] {
        let spec = ShardSpec::rtbs(0.2, 64, shards);
        let mut engine: ParallelIngestEngine<RTbs<u64>> =
            ParallelIngestEngine::new(EngineConfig::new(spec, 33));
        let mut single: RTbs<u64> = RTbs::new(0.2, 64);
        for t in 0..48u64 {
            let b = schedule(t);
            let batch: Vec<u64> = (0..b).map(|i| t * 1000 + i).collect();
            single.observe(batch.clone(), &mut rng);
            engine.ingest(batch).unwrap();
            if t % 6 == 5 {
                let merged = engine.snapshot_merged().unwrap();
                assert!(
                    (merged.total_weight() - single.total_weight()).abs() < 1e-9,
                    "K={shards}, t={t}: W diverged"
                );
                assert!(
                    (merged.sample_weight() - single.sample_weight()).abs() < 1e-9,
                    "K={shards}, t={t}: C diverged"
                );
            }
        }
    }
}

#[test]
fn ttbs_engine_is_deterministic_too() {
    let run = |seed: u64| -> Vec<u64> {
        let spec = ShardSpec::ttbs(0.1, 100, 50.0, 4);
        let mut engine: ParallelIngestEngine<TTbs<u64>> =
            ParallelIngestEngine::new(EngineConfig::new(spec, seed));
        for t in 0..80u64 {
            engine
                .ingest((0..50).map(|i| t * 100 + i).collect())
                .unwrap();
        }
        engine.sample().unwrap()
    };
    assert_eq!(run(5), run(5));
    assert_ne!(run(5), run(6));
}

#[test]
fn grouped_and_deferred_engines_are_deterministic() {
    // The shard-group and batch-granular-downsampling paths must stay
    // pure functions of (seed, config, batch sequence) too.
    let run = |spec: ShardSpec, seed: u64| -> Vec<u64> {
        let mut engine: ParallelIngestEngine<RTbs<u64>> =
            ParallelIngestEngine::new(EngineConfig::new(spec, seed));
        for t in 0..60u64 {
            let b = schedule(t);
            engine
                .ingest((0..b).map(|i| t * 1000 + i).collect())
                .unwrap();
        }
        engine.sample().unwrap()
    };
    // 64 workers grouped onto fewer cells (⌈64/G⌉ ≥ 24 items per cell).
    let grouped = ShardSpec::rtbs(0.2, 64, 64).with_group_threshold(24);
    assert!(grouped.cells() < 64);
    assert_eq!(run(grouped, 42), run(grouped, 42));
    // Deep deferral across the whole run.
    let lazy = ShardSpec::rtbs(0.2, 6400, 8).with_defer_threshold(1e-9);
    assert_eq!(run(lazy, 42), run(lazy, 42));
    // Grouping + deferral combined.
    let both = ShardSpec::rtbs(0.2, 64, 32)
        .with_group_threshold(24)
        .with_defer_threshold(0.05);
    assert_eq!(run(both, 42), run(both, 42));
    assert_ne!(run(both, 42), run(both, 43));
}

#[test]
fn backpressure_does_not_change_the_result() {
    // A depth-1 queue forces constant producer blocking — maximally
    // different interleaving from the default depth — yet the merged
    // sample must be identical.
    let spec = ShardSpec::rtbs(0.2, 64, 4);
    let run = |depth: usize| -> Vec<u64> {
        let mut cfg = EngineConfig::new(spec, 21);
        cfg.queue_depth = depth;
        let mut engine: ParallelIngestEngine<RTbs<u64>> = ParallelIngestEngine::new(cfg);
        for t in 0..60u64 {
            let b = schedule(t);
            engine
                .ingest((0..b).map(|i| t * 1000 + i).collect())
                .unwrap();
        }
        engine.sample().unwrap()
    };
    assert_eq!(run(1), run(64));
}
