//! The hierarchical merge tree is a *replay*, not a re-randomization:
//! every node of the `⌈log₂K⌉`-depth pairwise tree draws from an RNG
//! substream derived purely from (driver RNG position, node id), so the
//! cooperative execution on the shard threads — whatever interleaving,
//! stealing, or node-completion order the scheduler produces — must be
//! **bit-identical** to a single-threaded [`merge_replay`] fold over the
//! same shard states from the same driver position.
//!
//! These tests pin that property end-to-end: run the engine (parallel
//! tree, work stealing enabled by a shallow queue), capture its durable
//! state, replay the merge + realization sequentially on the test
//! thread, and require equality — for both mergeable algorithms, K up
//! to 64 (including shard-grouped and deferred-downsampling configs),
//! saturated and unsaturated regimes.

use tbs_core::merge::{MergeableSample, ShardSpec};
use tbs_core::{RTbs, TTbs};
use tbs_distributed::engine::{
    EngineCheckpoint, EngineConfig, ParallelIngestEngine, RecoveryPolicy,
};
use tbs_stats::rng::Xoshiro256PlusPlus;

/// Sequential reference: clone the checkpointed shard states and fold
/// them with the canonical driver-side `merge_shards` replay from the
/// checkpointed driver RNG position, then realize on the post-merge
/// trajectory — exactly the contract `ParallelIngestEngine::sample`
/// promises to reproduce.
fn sequential_replay<S>(parts: &EngineCheckpoint<S>, spec: &ShardSpec) -> Vec<S::Item>
where
    S: MergeableSample + Clone,
    S::Item: Clone,
{
    let shards: Vec<S> = parts.shard_states.iter().map(|(s, _)| s.clone()).collect();
    let mut rng = Xoshiro256PlusPlus::from_state(parts.driver_rng);
    let merged = S::merge_shards(shards, spec, &mut rng);
    let mut out = Vec::new();
    merged.realize_into(&mut rng, &mut out);
    out
}

/// Drive `engine` with a bursty schedule (work stealing fires on the
/// size-0 and size-1200 extremes), then compare the engine's parallel
/// tree sample against the sequential replay at three checkpoints.
fn check_tree_matches_sequential<S>(cfg: EngineConfig, label: &str)
where
    S: MergeableSample<Item = u64> + Clone + Send + Sync + 'static,
{
    let spec = cfg.spec;
    let mut engine: ParallelIngestEngine<S> = ParallelIngestEngine::new(cfg);
    let sizes = [97u64, 0, 331, 1200, 16, 250, 0, 40];
    let mut next = 0u64;
    for round in 0..3 {
        for step in 0..40usize {
            let b = sizes[(round * 7 + step) % sizes.len()];
            let batch: Vec<u64> = (next..next + b).collect();
            next += b;
            engine.ingest(batch).unwrap();
        }
        // save_parts consumes no randomness, so the subsequent sample()
        // runs from exactly the captured driver position.
        let parts = engine.save_parts().unwrap();
        let expected = sequential_replay(&parts, &spec);
        let got = engine.sample().unwrap();
        assert_eq!(
            got, expected,
            "{label}: parallel merge tree diverged from sequential replay \
             (K={}, round={round})",
            spec.shards
        );
    }
}

#[test]
fn rtbs_tree_is_bit_identical_to_sequential_replay() {
    for k in [2usize, 4, 8, 16, 32, 64] {
        // Saturated: λ=0.1, n=500, mean batch ≈ 280 ⇒ W* ≈ 2800 ≫ n.
        check_tree_matches_sequential::<RTbs<u64>>(
            EngineConfig {
                spec: ShardSpec::rtbs(0.1, 500, k),
                queue_depth: 2,
                seed: 11 + k as u64,
                recovery: RecoveryPolicy::Fail,
            },
            "R-TBS saturated",
        );
        // Unsaturated: λ=0.07, n=6000 ⇒ W* ≈ 4140 < n, C = W always.
        check_tree_matches_sequential::<RTbs<u64>>(
            EngineConfig {
                spec: ShardSpec::rtbs(0.07, 6000, k),
                queue_depth: 2,
                seed: 23 + k as u64,
                recovery: RecoveryPolicy::Fail,
            },
            "R-TBS unsaturated",
        );
    }
}

#[test]
fn ttbs_tree_is_bit_identical_to_sequential_replay() {
    for k in [2usize, 4, 8, 16, 32, 64] {
        // Arrival rate above the assumed mean: sample rides above target.
        check_tree_matches_sequential::<TTbs<u64>>(
            EngineConfig {
                spec: ShardSpec::ttbs(0.1, 1000, 280.0, k),
                queue_depth: 2,
                seed: 37 + k as u64,
                recovery: RecoveryPolicy::Fail,
            },
            "T-TBS over-fed",
        );
        // Arrival rate below the assumed mean: sample rides below target.
        check_tree_matches_sequential::<TTbs<u64>>(
            EngineConfig {
                spec: ShardSpec::ttbs(0.1, 4000, 900.0, k),
                queue_depth: 2,
                seed: 53 + k as u64,
                recovery: RecoveryPolicy::Fail,
            },
            "T-TBS under-fed",
        );
    }
}

#[test]
fn grouped_and_deferred_trees_match_sequential_replay() {
    // Shard groups: 64 workers over ⌈500/cells⌉ ≥ 24 cells — the merge
    // tree is built over the G cells, not the K workers.
    let grouped = ShardSpec::rtbs(0.1, 500, 64).with_group_threshold(24);
    assert!(grouped.cells() < 64);
    check_tree_matches_sequential::<RTbs<u64>>(
        EngineConfig {
            spec: grouped,
            queue_depth: 2,
            seed: 71,
            recovery: RecoveryPolicy::Fail,
        },
        "R-TBS grouped",
    );
    // Batch-granular downsampling: merge leaves must materialize the
    // deferred state on their own substream before downsampling, in the
    // unsaturated regime where deferral windows actually persist.
    for k in [4usize, 32] {
        check_tree_matches_sequential::<RTbs<u64>>(
            EngineConfig {
                spec: ShardSpec::rtbs(0.07, 6000, k).with_defer_threshold(1e-6),
                queue_depth: 2,
                seed: 83 + k as u64,
                recovery: RecoveryPolicy::Fail,
            },
            "R-TBS deferred",
        );
    }
}

#[test]
fn published_snapshot_equals_sample_at_high_shard_counts() {
    // The barrier-published FrozenSample and a driver sample() from the
    // same point must agree item-for-item even at K=16, where the tree
    // is 4 levels deep and several epochs can be in flight at once.
    let spec = ShardSpec::rtbs(0.1, 1000, 16);
    let mut a: ParallelIngestEngine<RTbs<u64>> = ParallelIngestEngine::new(EngineConfig {
        spec,
        queue_depth: 4,
        seed: 99,
        recovery: RecoveryPolicy::Fail,
    });
    let mut b: ParallelIngestEngine<RTbs<u64>> = ParallelIngestEngine::new(EngineConfig {
        spec,
        queue_depth: 4,
        seed: 99,
        recovery: RecoveryPolicy::Fail,
    });
    let cell = a.snapshot_cell();
    for t in 0..120u64 {
        let batch: Vec<u64> = (t * 500..t * 500 + 350).collect();
        a.ingest(batch.clone()).unwrap();
        b.ingest(batch).unwrap();
        if t % 17 == 0 {
            // Keep the pipeline busy with extra in-flight epochs on the
            // publishing engine; the sampled engine must still agree.
            a.request_snapshot().unwrap();
            b.request_snapshot().unwrap();
            a.quiesce().unwrap();
            b.quiesce().unwrap();
        }
    }
    let epoch = a.request_snapshot().unwrap();
    let frozen = cell.wait_for_epoch(epoch).expect("published");
    let sampled = b.sample().unwrap();
    assert_eq!(frozen.items(), &sampled[..]);
}
