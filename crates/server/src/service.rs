//! What the server serves: a [`WireService`] adapts an engine to the
//! wire verbs, so the connection loop never touches sampler internals.
//!
//! Two implementations ship:
//!
//! * [`SamplerService`] — the full engine: a facade
//!   [`Sampler`] wrapped in a
//!   [`ModelManager`], built from a [`SamplerConfig`]. Supports every
//!   verb, including `CHECKPOINT_PUSH` (state replacement) and
//!   `PREDICT`/`RETRAIN` through the managed model.
//! * [`CellService`] — a read-only view over a shared
//!   [`EpochCell`]: `GET_SAMPLE` and `SUBSCRIBE_EPOCH` only, for
//!   fan-out replicas that mirror a publisher owned elsewhere in the
//!   process.

use std::sync::Arc;
use std::task::{Context, Poll};

use bytes::Bytes;
use tbs_core::checkpoint::Wire;
use tbs_core::frozen::FrozenSample;
use tbs_distributed::snapshot::{EpochCell, EpochWait};
use temporal_sampling::api::{
    ModelManager, RetrainPolicy, SampleReader, Sampler, SamplerConfig, TbsError,
};
use temporal_sampling::ml::pipeline::OnlineModel;

use crate::proto::{EpochOutcome, ErrorCode};

/// Typed failure from a service method; the server turns it into a
/// [`Reply::Error`](crate::proto::Reply::Error) frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// The resource exists but has nothing to give yet (no published
    /// sample, no configured model, …).
    Unavailable(&'static str),
    /// The request carried bytes the engine rejected as undecodable.
    Corrupt(String),
    /// The engine returned a typed error.
    Engine(String),
    /// This service does not implement the verb.
    Unsupported(&'static str),
}

impl ServiceError {
    /// Wire error category plus human-readable detail.
    pub fn to_wire(&self) -> (ErrorCode, String) {
        match self {
            ServiceError::Unavailable(what) => (ErrorCode::Unavailable, (*what).to_string()),
            ServiceError::Corrupt(detail) => (ErrorCode::Corrupt, detail.clone()),
            ServiceError::Engine(detail) => (ErrorCode::Engine, detail.clone()),
            ServiceError::Unsupported(what) => (ErrorCode::Unsupported, (*what).to_string()),
        }
    }
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (code, detail) = self.to_wire();
        write!(f, "{code:?}: {detail}")
    }
}

impl std::error::Error for ServiceError {}

fn engine_err(e: TbsError) -> ServiceError {
    ServiceError::Engine(e.to_string())
}

/// A realized publication: epoch, batches it reflects, and the items.
pub type SampleView<T> = (u64, u64, Vec<T>);

/// Engine surface the connection loop programs against.
///
/// `poll_epoch` is poll-based (not `async fn`) so the server can race
/// it against a deadline timer without boxing; it must register the
/// waker with the underlying publisher before returning `Pending`, and
/// it never resolves `TimedOut` — deadlines are the server's job.
pub trait WireService<T: Wire + Clone + Send + Sync + 'static>: Send + 'static {
    /// Latest published sample.
    fn latest(&mut self) -> Result<SampleView<T>, ServiceError>;

    /// Wait for `epoch`: `Ready` once published (or the publisher is
    /// gone), `Pending` with a registered waker otherwise.
    fn poll_epoch(&mut self, epoch: u64, cx: &mut Context<'_>) -> Poll<(EpochOutcome, u64, u64)>;

    /// Highest epoch published so far (0 if none) — used to stamp
    /// timed-out subscription replies.
    fn published_epoch(&self) -> u64;

    /// Feed one batch; returns (batches observed, published epoch).
    fn ingest(&mut self, items: Vec<T>) -> Result<(u64, u64), ServiceError>;

    /// Serialize full engine state.
    fn checkpoint(&mut self) -> Result<Bytes, ServiceError>;

    /// Replace engine state from a checkpoint blob.
    fn restore(&mut self, blob: Bytes) -> Result<(), ServiceError>;

    /// Evaluate the served model.
    fn predict(&mut self, x: f64) -> Result<f64, ServiceError>;

    /// Refit the model on the current sample; returns the epoch it
    /// trained on, if a sample was available.
    fn retrain(&mut self) -> Result<Option<u64>, ServiceError>;
}

/// Scalar prediction surface for the `PREDICT` verb: the
/// [`OnlineModel`] trait deliberately has no inference method (the
/// paper's pipeline only scores batches), so serving adds one.
pub trait Predictor {
    /// Model output at `x`, or `None` when no fit exists yet.
    fn predict(&self, x: f64) -> Option<f64>;
}

/// One-dimensional least-squares fit `y = slope·x + intercept`,
/// refit from scratch on each sample of `[x, y]` pairs — the serving
/// binary's default model (closed form, no iteration, deterministic).
#[derive(Debug, Clone, Copy, Default)]
pub struct LineFit {
    fit: Option<(f64, f64)>,
}

impl LineFit {
    /// An unfit line; [`Predictor::predict`] returns `None` until the
    /// first retrain.
    pub fn new() -> Self {
        Self::default()
    }

    /// `(slope, intercept)` of the current fit, if any.
    pub fn coefficients(&self) -> Option<(f64, f64)> {
        self.fit
    }
}

impl OnlineModel<[f64; 2]> for LineFit {
    fn retrain(&mut self, sample: &[[f64; 2]]) {
        if sample.is_empty() {
            return;
        }
        let n = sample.len() as f64;
        let (mut sx, mut sy, mut sxx, mut sxy) = (0.0, 0.0, 0.0, 0.0);
        for [x, y] in sample {
            sx += x;
            sy += y;
            sxx += x * x;
            sxy += x * y;
        }
        let denom = n * sxx - sx * sx;
        let slope = if denom.abs() < f64::EPSILON {
            0.0
        } else {
            (n * sxy - sx * sy) / denom
        };
        let intercept = (sy - slope * sx) / n;
        self.fit = Some((slope, intercept));
    }

    fn batch_error(&self, batch: &[[f64; 2]]) -> f64 {
        let Some((slope, intercept)) = self.fit else {
            return f64::INFINITY;
        };
        if batch.is_empty() {
            return 0.0;
        }
        let sse: f64 = batch
            .iter()
            .map(|[x, y]| {
                let err = y - (slope * x + intercept);
                err * err
            })
            .sum();
        sse / batch.len() as f64
    }
}

impl Predictor for LineFit {
    fn predict(&self, x: f64) -> Option<f64> {
        self.fit.map(|(slope, intercept)| slope * x + intercept)
    }
}

/// A model that serves nothing: `PREDICT` returns unavailable, retrains
/// are no-ops. Lets a [`SamplerService`] expose pure sampling verbs for
/// item types with no model attached (tests, ingestion-only tiers).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoModel;

impl<T> OnlineModel<T> for NoModel {
    fn retrain(&mut self, _sample: &[T]) {}
    fn batch_error(&self, _batch: &[T]) -> f64 {
        0.0
    }
}

impl Predictor for NoModel {
    fn predict(&self, _x: f64) -> Option<f64> {
        None
    }
}

/// Full-engine service: a [`ModelManager`] over a facade sampler.
///
/// Each accepted ingest is followed by a `publish`, so every batch
/// advances the epoch that `SUBSCRIBE_EPOCH` clients observe — the
/// wire contract is "one ingest, one epoch", independent of the
/// engine's internal publish policy.
pub struct SamplerService<T, M>
where
    T: Wire + Clone + Send + Sync + 'static,
    M: OnlineModel<T> + Predictor + Send + 'static,
{
    // `Option` only so `restore` can move the manager out, swap the
    // sampler, and put it back; it is never `None` between calls.
    manager: Option<ModelManager<T, M>>,
    reader: SampleReader<T>,
    config: SamplerConfig,
    policy: RetrainPolicy,
}

impl<T, M> SamplerService<T, M>
where
    T: Wire + Clone + Send + Sync + 'static,
    M: OnlineModel<T> + Predictor + Send + 'static,
{
    /// Build the engine from `config` and wrap it with `model`.
    pub fn new(config: SamplerConfig, model: M, policy: RetrainPolicy) -> Result<Self, TbsError> {
        let sampler = config.build::<T>()?;
        Ok(Self::from_sampler(sampler, model, policy))
    }

    /// Wrap an already-built sampler (e.g. one recovered from a
    /// checkpoint store).
    pub fn from_sampler(sampler: Sampler<T>, model: M, policy: RetrainPolicy) -> Self {
        let reader = sampler.reader();
        let config = *sampler.config();
        Self {
            manager: Some(ModelManager::new(sampler, model, policy)),
            reader,
            config,
            policy,
        }
    }

    fn manager(&mut self) -> &mut ModelManager<T, M> {
        self.manager.as_mut().expect("manager always present")
    }

    /// Borrow the managed sampler (diagnostics, tests).
    pub fn sampler(&self) -> &Sampler<T> {
        self.manager
            .as_ref()
            .expect("manager always present")
            .sampler()
    }
}

impl<T, M> WireService<T> for SamplerService<T, M>
where
    T: Wire + Clone + Send + Sync + 'static,
    M: OnlineModel<T> + Predictor + Send + 'static,
{
    fn latest(&mut self) -> Result<SampleView<T>, ServiceError> {
        match self.reader.latest() {
            Some(frozen) => Ok(view(&frozen)),
            None => Err(ServiceError::Unavailable("no sample published yet")),
        }
    }

    fn poll_epoch(&mut self, epoch: u64, cx: &mut Context<'_>) -> Poll<(EpochOutcome, u64, u64)> {
        match self.reader.poll_epoch(epoch, cx) {
            Poll::Ready(EpochWait::Published(frozen)) => Poll::Ready((
                EpochOutcome::Published,
                frozen.epoch(),
                frozen.batches_observed(),
            )),
            Poll::Ready(_) => Poll::Ready((
                EpochOutcome::PublisherGone,
                self.reader.published_epoch(),
                0,
            )),
            Poll::Pending => Poll::Pending,
        }
    }

    fn published_epoch(&self) -> u64 {
        self.reader.published_epoch()
    }

    fn ingest(&mut self, items: Vec<T>) -> Result<(u64, u64), ServiceError> {
        let mgr = self.manager();
        mgr.ingest(items).map_err(engine_err)?;
        let epoch = mgr.sampler_mut().publish().map_err(engine_err)?;
        Ok((mgr.sampler().batches_observed(), epoch))
    }

    fn checkpoint(&mut self) -> Result<Bytes, ServiceError> {
        self.manager().sampler_mut().snapshot().map_err(engine_err)
    }

    fn restore(&mut self, blob: Bytes) -> Result<(), ServiceError> {
        // Validate the blob into a fresh sampler *before* touching the
        // live engine: a corrupt push must leave state untouched.
        let mut sampler = Sampler::restore(&self.config, blob).map_err(|e| match e {
            TbsError::Checkpoint(inner) => ServiceError::Corrupt(inner.to_string()),
            other => ServiceError::Engine(other.to_string()),
        })?;
        // Publish the restored state so GET_SAMPLE and epoch
        // subscribers see it immediately — a pushed replica must serve
        // without waiting for its first ingest.
        if sampler.batches_observed() > 0 {
            sampler.publish().map_err(engine_err)?;
        }
        let (_old, model) = self
            .manager
            .take()
            .expect("manager always present")
            .into_parts();
        self.reader = sampler.reader();
        self.manager = Some(ModelManager::new(sampler, model, self.policy));
        Ok(())
    }

    fn predict(&mut self, x: f64) -> Result<f64, ServiceError> {
        self.manager()
            .current_model()
            .predict(x)
            .ok_or(ServiceError::Unavailable("model has no fit yet"))
    }

    fn retrain(&mut self) -> Result<Option<u64>, ServiceError> {
        Ok(self.manager().retrain_now().map(|frozen| frozen.epoch()))
    }
}

/// Read-only service over a shared [`EpochCell`]: serves `GET_SAMPLE`
/// and `SUBSCRIBE_EPOCH` from whatever publisher owns the cell; every
/// mutating verb answers `Unsupported`.
pub struct CellService<T> {
    cell: Arc<EpochCell<T>>,
}

impl<T> CellService<T> {
    /// Serve the given cell.
    pub fn new(cell: Arc<EpochCell<T>>) -> Self {
        Self { cell }
    }
}

impl<T> WireService<T> for CellService<T>
where
    T: Wire + Clone + Send + Sync + 'static,
{
    fn latest(&mut self) -> Result<SampleView<T>, ServiceError> {
        match self.cell.latest() {
            Some(frozen) => Ok(view(&frozen)),
            None => Err(ServiceError::Unavailable("no sample published yet")),
        }
    }

    fn poll_epoch(&mut self, epoch: u64, cx: &mut Context<'_>) -> Poll<(EpochOutcome, u64, u64)> {
        match self.cell.poll_epoch(epoch, cx) {
            Poll::Ready(EpochWait::Published(frozen)) => Poll::Ready((
                EpochOutcome::Published,
                frozen.epoch(),
                frozen.batches_observed(),
            )),
            Poll::Ready(_) => {
                Poll::Ready((EpochOutcome::PublisherGone, self.cell.published_epoch(), 0))
            }
            Poll::Pending => Poll::Pending,
        }
    }

    fn published_epoch(&self) -> u64 {
        self.cell.published_epoch()
    }

    fn ingest(&mut self, _items: Vec<T>) -> Result<(u64, u64), ServiceError> {
        Err(ServiceError::Unsupported("read-only replica: INGEST"))
    }

    fn checkpoint(&mut self) -> Result<Bytes, ServiceError> {
        Err(ServiceError::Unsupported(
            "read-only replica: CHECKPOINT_PULL",
        ))
    }

    fn restore(&mut self, _blob: Bytes) -> Result<(), ServiceError> {
        Err(ServiceError::Unsupported(
            "read-only replica: CHECKPOINT_PUSH",
        ))
    }

    fn predict(&mut self, _x: f64) -> Result<f64, ServiceError> {
        Err(ServiceError::Unsupported("read-only replica: PREDICT"))
    }

    fn retrain(&mut self) -> Result<Option<u64>, ServiceError> {
        Err(ServiceError::Unsupported("read-only replica: RETRAIN"))
    }
}

fn view<T: Clone>(frozen: &Arc<FrozenSample<T>>) -> SampleView<T> {
    (
        frozen.epoch(),
        frozen.batches_observed(),
        frozen.items().to_vec(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_fit_recovers_a_noiseless_line() {
        let mut fit = LineFit::new();
        let sample: Vec<[f64; 2]> = (0..50).map(|i| [i as f64, 3.0 * i as f64 - 2.0]).collect();
        fit.retrain(&sample);
        let (slope, intercept) = fit.coefficients().unwrap();
        assert!((slope - 3.0).abs() < 1e-9, "slope {slope}");
        assert!((intercept + 2.0).abs() < 1e-9, "intercept {intercept}");
        assert!((fit.predict(10.0).unwrap() - 28.0).abs() < 1e-9);
        assert!(fit.batch_error(&sample) < 1e-18);
    }

    #[test]
    fn sampler_service_ingest_publishes_and_serves() {
        let config = SamplerConfig::rtbs(0.05, 200).seed(11);
        let mut svc: SamplerService<u64, NoModel> =
            SamplerService::new(config, NoModel, RetrainPolicy::EveryBatch).unwrap();
        assert!(matches!(svc.latest(), Err(ServiceError::Unavailable(_))));
        let (batches, epoch) = svc.ingest((0..500).collect()).unwrap();
        assert_eq!(batches, 1);
        assert!(epoch >= 1);
        let (got_epoch, got_batches, items) = svc.latest().unwrap();
        assert_eq!(got_epoch, epoch);
        assert_eq!(got_batches, 1);
        assert!(!items.is_empty() && items.len() <= 200);
    }

    #[test]
    fn sampler_service_checkpoint_roundtrips_and_rejects_garbage() {
        let config = SamplerConfig::rtbs(0.05, 100).seed(5);
        let mut svc: SamplerService<u64, NoModel> =
            SamplerService::new(config, NoModel, RetrainPolicy::EveryBatch).unwrap();
        svc.ingest((0..300).collect()).unwrap();
        let blob = svc.checkpoint().unwrap();

        // Garbage must fail without disturbing live state.
        let err = svc.restore(Bytes::from_static(b"not a checkpoint"));
        assert!(matches!(err, Err(ServiceError::Corrupt(_))));
        let (epoch_before, ..) = svc.latest().unwrap();
        assert!(epoch_before >= 1);

        // A real blob replaces state and the next epoch continues.
        svc.restore(blob).unwrap();
        let (batches, _) = svc.ingest((300..600).collect()).unwrap();
        assert_eq!(batches, 2, "restored sampler kept its batch count");
    }

    #[test]
    fn cell_service_rejects_mutating_verbs() {
        let cell: Arc<EpochCell<u64>> = Arc::new(EpochCell::new());
        let mut svc = CellService::new(Arc::clone(&cell));
        assert!(matches!(
            svc.ingest(vec![1]),
            Err(ServiceError::Unsupported(_))
        ));
        assert!(matches!(
            svc.checkpoint(),
            Err(ServiceError::Unsupported(_))
        ));
    }
}
