//! The serve loop: accept connections, decode request frames, dispatch
//! into a [`WireService`], and write back framed replies — all on one
//! `miniloop` executor thread.
//!
//! Connections are fully pipelined: every complete request frame in a
//! read burst is dispatched and the replies are coalesced into one
//! write, so a client that sends N requests back-to-back pays one
//! syscall round-trip, not N.
//!
//! Fault injection reuses the engine's [`FaultPlan`]: before each reply
//! frame is appended, the plan is consulted with this connection's
//! accept ordinal and the 1-based reply frame number. `DropConnection`
//! flushes the replies already batched, shuts the socket, and ends the
//! task; `HalfOpen` flushes and then parks the task forever — the
//! socket stays open but never speaks again, exactly the half-open peer
//! a client's read timeout must survive.

use std::future::Future;
use std::io;
use std::marker::PhantomData;
use std::net::{SocketAddr, TcpListener};
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::task::{Context, Poll};
use std::time::{Duration, Instant};

use miniloop::net::{AsyncTcpListener, AsyncTcpStream};
use miniloop::{Executor, Handle};
use parking_lot::Mutex;
use tbs_core::checkpoint::Wire;
use tbs_distributed::{FaultPlan, WireAction};

use crate::proto::{encode_frame, EpochOutcome, FrameDecoder, ProtoError, Reply, Request};
use crate::service::WireService;

/// How often the accept loop re-checks the shutdown flag.
const ACCEPT_TICK: Duration = Duration::from_millis(25);
/// Read buffer per connection.
const READ_BUF: usize = 64 * 1024;

/// A running server; dropping it requests shutdown and joins the serve
/// thread.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<io::Result<()>>>,
}

impl ServerHandle {
    /// Address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Ask the serve loop to stop (idempotent, non-blocking); the loop
    /// notices within one accept tick.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
    }

    /// Request shutdown and wait for the serve thread to exit.
    pub fn join(mut self) -> io::Result<()> {
        self.request_shutdown();
        self.join_inner()
    }

    /// Wait for the serve loop to exit on its own (a client `SHUTDOWN`
    /// verb) without requesting shutdown first.
    pub fn wait(mut self) -> io::Result<()> {
        self.join_inner()
    }

    fn join_inner(&mut self) -> io::Result<()> {
        match self.thread.take() {
            Some(t) => t
                .join()
                .unwrap_or_else(|_| Err(io::Error::other("serve thread panicked"))),
            None => Ok(()),
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.request_shutdown();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// Bind `addr` and serve `service` on a dedicated thread.
///
/// `fault_plan` (usually `None`) injects wire faults at exact reply
/// frame boundaries — see the module docs.
pub fn serve<T, S>(
    addr: SocketAddr,
    service: S,
    fault_plan: Option<Arc<FaultPlan>>,
) -> io::Result<ServerHandle>
where
    T: Wire + Clone + Send + Sync + 'static,
    S: WireService<T>,
{
    let listener = TcpListener::bind(addr)?;
    serve_on(listener, service, fault_plan)
}

/// Serve on an already-bound listener (lets tests bind port 0 first).
pub fn serve_on<T, S>(
    listener: TcpListener,
    service: S,
    fault_plan: Option<Arc<FaultPlan>>,
) -> io::Result<ServerHandle>
where
    T: Wire + Clone + Send + Sync + 'static,
    S: WireService<T>,
{
    let addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let shutdown_thread = Arc::clone(&shutdown);
    let service = Arc::new(Mutex::new(service));

    let thread = std::thread::Builder::new()
        .name("tbs-server".into())
        .spawn(move || -> io::Result<()> {
            let ex = Executor::new();
            let handle = ex.handle();
            let listener = AsyncTcpListener::from_std(listener, handle.clone())?;
            ex.block_on(accept_loop::<T, S>(
                listener,
                service,
                fault_plan,
                shutdown_thread,
                handle,
            ))
        })?;

    Ok(ServerHandle {
        addr,
        shutdown,
        thread: Some(thread),
    })
}

async fn accept_loop<T, S>(
    listener: AsyncTcpListener,
    service: Arc<Mutex<S>>,
    fault_plan: Option<Arc<FaultPlan>>,
    shutdown: Arc<AtomicBool>,
    handle: Handle,
) -> io::Result<()>
where
    T: Wire + Clone + Send + Sync + 'static,
    S: WireService<T>,
{
    // Accept ordinals are 1-based so fault plans can say "connection 1".
    let mut next_conn: u64 = 0;
    while !shutdown.load(Ordering::Acquire) {
        match listener.accept_timeout(ACCEPT_TICK).await {
            Ok(Some((stream, _peer))) => {
                next_conn += 1;
                handle.spawn(connection_task::<T, S>(
                    stream,
                    Arc::clone(&service),
                    fault_plan.clone(),
                    next_conn,
                    Arc::clone(&shutdown),
                    handle.clone(),
                ));
            }
            Ok(None) => {}
            // Transient accept errors (peer reset mid-handshake) should
            // not kill the server.
            Err(e) if e.kind() == io::ErrorKind::ConnectionReset => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

async fn connection_task<T, S>(
    mut stream: AsyncTcpStream,
    service: Arc<Mutex<S>>,
    fault_plan: Option<Arc<FaultPlan>>,
    conn: u64,
    shutdown: Arc<AtomicBool>,
    handle: Handle,
) where
    T: Wire + Clone + Send + Sync + 'static,
    S: WireService<T>,
{
    let mut decoder = FrameDecoder::new();
    let mut read_buf = vec![0u8; READ_BUF];
    let mut out: Vec<u8> = Vec::new();
    // 1-based ordinal of the next reply frame, the unit fault plans
    // target.
    let mut reply_frame: u64 = 0;

    loop {
        let n = match stream.read_some(&mut read_buf).await {
            Ok(0) | Err(_) => return, // EOF or broken socket: done.
            Ok(n) => n,
        };
        decoder.push(&read_buf[..n]);

        out.clear();
        let mut stop_after_flush = false;
        loop {
            let payload = match decoder.next_frame() {
                Ok(Some(p)) => p,
                Ok(None) => break,
                Err(_) => {
                    // Unrecoverable framing (oversized prefix): the
                    // stream offset is lost, drop the connection.
                    let _ = stream.shutdown();
                    return;
                }
            };
            let reply: Reply<T> = match Request::<T>::decode(payload) {
                Ok(Request::Shutdown) => {
                    stop_after_flush = true;
                    Reply::ShuttingDown
                }
                Ok(Request::SubscribeEpoch { epoch, timeout_ms }) => {
                    // Long poll: flush what we already owe, then wait.
                    if !out.is_empty() {
                        if stream.write_all(&out).await.is_err() {
                            return;
                        }
                        out.clear();
                    }
                    let deadline = (timeout_ms > 0)
                        .then(|| Instant::now() + Duration::from_millis(timeout_ms));
                    let (outcome, epoch, batches) = EpochSubscription {
                        service: Arc::clone(&service),
                        epoch,
                        deadline,
                        handle: handle.clone(),
                        _item: PhantomData,
                    }
                    .await;
                    Reply::Epoch {
                        outcome,
                        epoch,
                        batches,
                    }
                }
                Ok(req) => dispatch(&service, req),
                Err(e) => proto_error_reply(&e),
            };

            reply_frame += 1;
            let action = fault_plan
                .as_ref()
                .map(|p| p.wire_action(conn, reply_frame))
                .unwrap_or(WireAction::Deliver);
            match action {
                WireAction::Deliver => out.extend_from_slice(&encode_frame(&reply.encode())),
                WireAction::DropConnection => {
                    // Deliver everything before the fault boundary,
                    // then cut the socket under the client.
                    if !out.is_empty() {
                        let _ = stream.write_all(&out).await;
                    }
                    let _ = stream.shutdown();
                    return;
                }
                WireAction::HalfOpen => {
                    if !out.is_empty() {
                        let _ = stream.write_all(&out).await;
                    }
                    // Keep the socket open but never answer again. A
                    // bare `pending()` future would leave the task with
                    // no registered waker and the executor would drop
                    // it (closing the socket); an endless timer keeps
                    // it — and the half-open stream — alive.
                    loop {
                        handle.sleep(Duration::from_secs(3600)).await;
                    }
                }
            }
        }

        if !out.is_empty() && stream.write_all(&out).await.is_err() {
            return;
        }
        if stop_after_flush {
            shutdown.store(true, Ordering::Release);
            let _ = stream.shutdown();
            return;
        }
    }
}

/// Handle every verb that resolves immediately under one service lock.
fn dispatch<T, S>(service: &Arc<Mutex<S>>, req: Request<T>) -> Reply<T>
where
    T: Wire + Clone + Send + Sync + 'static,
    S: WireService<T>,
{
    let mut svc = service.lock();
    let result = match req {
        Request::GetSample => svc.latest().map(|(epoch, batches, items)| Reply::Sample {
            epoch,
            batches,
            items,
        }),
        Request::Ingest(items) => {
            svc.ingest(items)
                .map(|(batches, published_epoch)| Reply::IngestAck {
                    batches,
                    published_epoch,
                })
        }
        Request::CheckpointPull => svc.checkpoint().map(Reply::Checkpoint),
        Request::CheckpointPush(blob) => svc.restore(blob).map(|()| Reply::Pushed),
        Request::Predict(x) => svc.predict(x).map(Reply::Prediction),
        Request::Retrain => svc.retrain().map(Reply::Retrained),
        Request::Ping => Ok(Reply::Pong),
        // Handled by the connection loop before dispatch.
        Request::SubscribeEpoch { .. } | Request::Shutdown => {
            unreachable!("handled in connection_task")
        }
    };
    result.unwrap_or_else(|e| {
        let (code, detail) = e.to_wire();
        Reply::Error { code, detail }
    })
}

fn proto_error_reply<T: Wire>(e: &ProtoError) -> Reply<T> {
    Reply::Error {
        code: crate::proto::ErrorCode::Corrupt,
        detail: format!("bad request frame: {e}"),
    }
}

/// Races the service's epoch wait against an optional deadline.
struct EpochSubscription<T, S> {
    service: Arc<Mutex<S>>,
    epoch: u64,
    deadline: Option<Instant>,
    handle: Handle,
    // `fn() -> T` keeps the future `Unpin` regardless of `T`.
    _item: PhantomData<fn() -> T>,
}

impl<T, S> Future for EpochSubscription<T, S>
where
    T: Wire + Clone + Send + Sync + 'static,
    S: WireService<T>,
{
    type Output = (EpochOutcome, u64, u64);

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        let mut svc = this.service.lock();
        match svc.poll_epoch(this.epoch, cx) {
            Poll::Ready(out) => Poll::Ready(out),
            Poll::Pending => {
                if let Some(deadline) = this.deadline {
                    if Instant::now() >= deadline {
                        return Poll::Ready((EpochOutcome::TimedOut, svc.published_epoch(), 0));
                    }
                    drop(svc);
                    this.handle.wake_at(deadline, cx.waker().clone());
                }
                Poll::Pending
            }
        }
    }
}
