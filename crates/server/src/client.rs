//! Blocking client for the serving tier: a thin synchronous wrapper
//! over one framed-TCP connection. Every verb has a typed method; the
//! connection is strictly request-ordered, and [`BlockingClient::
//! get_sample_pipelined`] batches many `GET_SAMPLE`s into one write for
//! throughput measurement.
//!
//! The socket carries a read timeout (default 5 s) so a half-open or
//! dead server surfaces as [`ClientError::Io`] with
//! `ErrorKind::WouldBlock`/`TimedOut` instead of hanging the caller
//! forever.

use std::io::{self, Read, Write};
use std::marker::PhantomData;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use bytes::Bytes;
use tbs_core::checkpoint::Wire;

use crate::proto::{
    encode_frame, EpochOutcome, ErrorCode, FrameDecoder, ProtoError, Reply, Request,
};

/// Default socket read/write timeout.
const DEFAULT_TIMEOUT: Duration = Duration::from_secs(5);

/// Typed client failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (includes read timeouts on half-open peers).
    Io(io::Error),
    /// The server's bytes did not parse as a reply frame.
    Proto(ProtoError),
    /// The server answered with a typed error reply.
    Server {
        /// Error category.
        code: ErrorCode,
        /// Human-readable detail.
        detail: String,
    },
    /// The server answered with a structurally valid reply of the
    /// wrong kind for the request.
    UnexpectedReply(&'static str),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Proto(e) => write!(f, "protocol: {e}"),
            ClientError::Server { code, detail } => write!(f, "server {code:?}: {detail}"),
            ClientError::UnexpectedReply(what) => write!(f, "unexpected reply: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        ClientError::Proto(e)
    }
}

/// One framed-TCP connection to a serving-tier endpoint.
pub struct BlockingClient<T: Wire> {
    stream: TcpStream,
    decoder: FrameDecoder,
    read_buf: Vec<u8>,
    _item: PhantomData<T>,
}

impl<T: Wire> BlockingClient<T> {
    /// Connect with the default 5 s socket timeout.
    pub fn connect(addr: SocketAddr) -> Result<Self, ClientError> {
        Self::connect_timeout(addr, DEFAULT_TIMEOUT)
    }

    /// Connect with an explicit socket timeout (applies to connect,
    /// reads, and writes).
    pub fn connect_timeout(addr: SocketAddr, timeout: Duration) -> Result<Self, ClientError> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        let _ = stream.set_nodelay(true);
        Ok(Self {
            stream,
            decoder: FrameDecoder::new(),
            read_buf: vec![0u8; 64 * 1024],
            _item: PhantomData,
        })
    }

    /// Change the socket read timeout (e.g. to outlast a long poll).
    pub fn set_read_timeout(&mut self, timeout: Duration) -> Result<(), ClientError> {
        self.stream.set_read_timeout(Some(timeout))?;
        Ok(())
    }

    /// Send one request and read one reply.
    pub fn call(&mut self, req: &Request<T>) -> Result<Reply<T>, ClientError> {
        self.stream.write_all(&encode_frame(&req.encode()))?;
        self.read_reply()
    }

    fn read_reply(&mut self) -> Result<Reply<T>, ClientError> {
        loop {
            if let Some(frame) = self.decoder.next_frame()? {
                return Ok(Reply::decode(frame)?);
            }
            let n = self.stream.read(&mut self.read_buf)?;
            if n == 0 {
                return Err(ClientError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                )));
            }
            self.decoder.push(&self.read_buf[..n]);
        }
    }

    fn reject(reply: Reply<T>, wanted: &'static str) -> ClientError {
        match reply {
            Reply::Error { code, detail } => ClientError::Server { code, detail },
            _ => ClientError::UnexpectedReply(wanted),
        }
    }

    /// Latest published sample: `(epoch, batches, items)`.
    pub fn get_sample(&mut self) -> Result<(u64, u64, Vec<T>), ClientError> {
        match self.call(&Request::GetSample)? {
            Reply::Sample {
                epoch,
                batches,
                items,
            } => Ok((epoch, batches, items)),
            other => Err(Self::reject(other, "SAMPLE")),
        }
    }

    /// Long-poll until `epoch` is published or `timeout` elapses
    /// (`None` waits indefinitely). The socket read timeout is bumped
    /// to outlast the poll.
    pub fn subscribe_epoch(
        &mut self,
        epoch: u64,
        timeout: Option<Duration>,
    ) -> Result<(EpochOutcome, u64, u64), ClientError> {
        let timeout_ms = timeout.map_or(0, |t| t.as_millis().min(u64::MAX as u128) as u64);
        if let Some(t) = timeout {
            self.stream.set_read_timeout(Some(t + DEFAULT_TIMEOUT))?;
        } else {
            self.stream.set_read_timeout(None)?;
        }
        let result = self.call(&Request::SubscribeEpoch { epoch, timeout_ms });
        // Restore the default timeout regardless of outcome.
        let _ = self.stream.set_read_timeout(Some(DEFAULT_TIMEOUT));
        match result? {
            Reply::Epoch {
                outcome,
                epoch,
                batches,
            } => Ok((outcome, epoch, batches)),
            other => Err(Self::reject(other, "EPOCH")),
        }
    }

    /// Feed one batch; returns `(batches observed, published epoch)`.
    pub fn ingest(&mut self, items: Vec<T>) -> Result<(u64, u64), ClientError> {
        match self.call(&Request::Ingest(items))? {
            Reply::IngestAck {
                batches,
                published_epoch,
            } => Ok((batches, published_epoch)),
            other => Err(Self::reject(other, "INGEST_ACK")),
        }
    }

    /// Pull a checkpoint of the server's engine state.
    pub fn checkpoint_pull(&mut self) -> Result<Bytes, ClientError> {
        match self.call(&Request::CheckpointPull)? {
            Reply::Checkpoint(blob) => Ok(blob),
            other => Err(Self::reject(other, "CHECKPOINT")),
        }
    }

    /// Replace the server's engine state from a checkpoint blob.
    pub fn checkpoint_push(&mut self, blob: Bytes) -> Result<(), ClientError> {
        match self.call(&Request::CheckpointPush(blob))? {
            Reply::Pushed => Ok(()),
            other => Err(Self::reject(other, "PUSHED")),
        }
    }

    /// Evaluate the served model at `x`.
    pub fn predict(&mut self, x: f64) -> Result<f64, ClientError> {
        match self.call(&Request::Predict(x))? {
            Reply::Prediction(y) => Ok(y),
            other => Err(Self::reject(other, "PREDICTION")),
        }
    }

    /// Force a retrain; returns the epoch trained on, if any.
    pub fn retrain(&mut self) -> Result<Option<u64>, ClientError> {
        match self.call(&Request::Retrain)? {
            Reply::Retrained(epoch) => Ok(epoch),
            other => Err(Self::reject(other, "RETRAINED")),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Ping)? {
            Reply::Pong => Ok(()),
            other => Err(Self::reject(other, "PONG")),
        }
    }

    /// Ask the server to stop accepting connections and exit.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Shutdown)? {
            Reply::ShuttingDown => Ok(()),
            other => Err(Self::reject(other, "SHUTTING_DOWN")),
        }
    }

    /// Issue `n` `GET_SAMPLE`s in one write and drain all `n` replies —
    /// the wire-throughput measurement primitive. Returns the number of
    /// `SAMPLE` replies (non-sample replies still consume a slot).
    pub fn get_sample_pipelined(&mut self, n: usize) -> Result<usize, ClientError> {
        let one = encode_frame(&Request::<T>::GetSample.encode());
        let mut burst = Vec::with_capacity(one.len() * n);
        for _ in 0..n {
            burst.extend_from_slice(&one);
        }
        self.stream.write_all(&burst)?;
        let mut samples = 0;
        for _ in 0..n {
            if matches!(self.read_reply()?, Reply::Sample { .. }) {
                samples += 1;
            }
        }
        Ok(samples)
    }
}
