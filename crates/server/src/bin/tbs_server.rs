//! `tbs_server` — serve an R-TBS sampler with a line-fit model over
//! framed TCP.
//!
//! ```text
//! tbs_server [--addr 127.0.0.1:7878] [--lambda 0.1] [--capacity 1000] [--seed 42]
//! ```
//!
//! Items are `[x, y]` pairs (`[f64; 2]` on the wire); `PREDICT x`
//! evaluates the least-squares line refit on each retrain. The bound
//! address is printed on stdout (`listening on <addr>`) so harnesses
//! binding port 0 can scrape it. The process exits when a client sends
//! `SHUTDOWN`.

use std::net::SocketAddr;
use std::process::ExitCode;

use tbs_server::service::{LineFit, SamplerService};
use temporal_sampling::api::{RetrainPolicy, SamplerConfig};

struct Options {
    addr: SocketAddr,
    lambda: f64,
    capacity: usize,
    seed: u64,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        addr: "127.0.0.1:7878".parse().expect("default addr"),
        lambda: 0.1,
        capacity: 1000,
        seed: 42,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |what: &str| args.next().ok_or_else(|| format!("{what} needs a value"));
        match flag.as_str() {
            "--addr" => {
                opts.addr = value("--addr")?
                    .parse()
                    .map_err(|e| format!("--addr: {e}"))?;
            }
            "--lambda" => {
                opts.lambda = value("--lambda")?
                    .parse()
                    .map_err(|e| format!("--lambda: {e}"))?;
            }
            "--capacity" => {
                opts.capacity = value("--capacity")?
                    .parse()
                    .map_err(|e| format!("--capacity: {e}"))?;
            }
            "--seed" => {
                opts.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--help" | "-h" => {
                return Err(
                    "usage: tbs_server [--addr HOST:PORT] [--lambda F] [--capacity N] [--seed N]"
                        .into(),
                );
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    let config = SamplerConfig::rtbs(opts.lambda, opts.capacity).seed(opts.seed);
    let service: SamplerService<[f64; 2], LineFit> =
        match SamplerService::new(config, LineFit::new(), RetrainPolicy::EveryBatch) {
            Ok(svc) => svc,
            Err(e) => {
                eprintln!("invalid sampler config: {e}");
                return ExitCode::FAILURE;
            }
        };

    let server = match tbs_server::server::serve(opts.addr, service, None) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("bind {}: {e}", opts.addr);
            return ExitCode::FAILURE;
        }
    };
    println!("listening on {}", server.addr());

    // Block until a SHUTDOWN verb flips the serve loop's flag.
    match server.wait() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("serve loop failed: {e}");
            ExitCode::FAILURE
        }
    }
}
