//! Framed wire protocol for the serving tier.
//!
//! Every message travels as one **frame**: a little-endian `u32` length
//! prefix followed by that many payload bytes. The payload is a
//! [`tbs_core::checkpoint`] blob — the same `Writer`/`Reader` codec (and
//! the same `TBSC` magic + version header) that backs sampler
//! checkpoints, so a frame whose payload is garbage fails with the
//! codec's own typed errors rather than a bespoke parser's. Inside the
//! blob, the first byte is a message tag; the remaining fields are
//! tag-specific.
//!
//! | Tag | Message | Fields |
//! |-----|---------|--------|
//! | 1 | `GET_SAMPLE` | — |
//! | 2 | `SUBSCRIBE_EPOCH` | epoch `u64`, timeout-ms `u64` |
//! | 3 | `CHECKPOINT_PULL` | — |
//! | 4 | `CHECKPOINT_PUSH` | blob `bytes` |
//! | 5 | `PREDICT` | x `f64` |
//! | 6 | `RETRAIN` | — |
//! | 7 | `INGEST` | items `[T]` |
//! | 8 | `SHUTDOWN` | — |
//! | 9 | `PING` | — |
//! | 65 | `SAMPLE` | epoch `u64`, batches `u64`, items `[T]` |
//! | 66 | `EPOCH` | outcome `u8`, epoch `u64`, batches `u64` |
//! | 67 | `CHECKPOINT` | blob `bytes` |
//! | 68 | `PUSHED` | — |
//! | 69 | `PREDICTION` | y `f64` |
//! | 70 | `RETRAINED` | has-epoch `u8`, epoch `u64` |
//! | 71 | `INGEST_ACK` | batches `u64`, published epoch `u64` |
//! | 72 | `SHUTTING_DOWN` | — |
//! | 73 | `PONG` | — |
//! | 74 | `ERROR` | code `u8`, detail `bytes` (UTF-8) |
//!
//! Decoding is **incremental**: [`FrameDecoder`] accepts arbitrary byte
//! chunks (split reads, coalesced frames) and yields exactly the frames
//! that were written, or a typed [`ProtoError`] for oversized lengths
//! and malformed payloads — a hostile or truncated stream can never
//! panic the server.

use bytes::Bytes;
use tbs_core::checkpoint::{CheckpointError, Reader, Wire, Writer};

/// Hard ceiling on a single frame's payload (16 MiB): bounds the
/// allocation a length prefix can demand before any payload arrives.
pub const MAX_FRAME: usize = 16 << 20;

/// Typed protocol failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// Frame-layer violation (oversized length prefix, …).
    Frame(&'static str),
    /// Payload failed the checkpoint codec (bad magic, truncation, …).
    Checkpoint(CheckpointError),
    /// Structurally valid payload with an unknown message tag.
    UnknownTag(u8),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Frame(what) => write!(f, "frame error: {what}"),
            ProtoError::Checkpoint(e) => write!(f, "payload error: {e}"),
            ProtoError::UnknownTag(tag) => write!(f, "unknown message tag {tag}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<CheckpointError> for ProtoError {
    fn from(e: CheckpointError) -> Self {
        ProtoError::Checkpoint(e)
    }
}

/// Machine-readable category carried by [`Reply::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// Nothing published yet, publisher gone, or feature not configured.
    Unavailable,
    /// The request carried bytes the server could not decode.
    Corrupt,
    /// The engine rejected the operation (typed `TbsError`).
    Engine,
    /// The verb is not supported by this server's service.
    Unsupported,
}

impl ErrorCode {
    fn to_u8(self) -> u8 {
        match self {
            ErrorCode::Unavailable => 1,
            ErrorCode::Corrupt => 2,
            ErrorCode::Engine => 3,
            ErrorCode::Unsupported => 4,
        }
    }

    fn from_u8(v: u8) -> Option<Self> {
        match v {
            1 => Some(ErrorCode::Unavailable),
            2 => Some(ErrorCode::Corrupt),
            3 => Some(ErrorCode::Engine),
            4 => Some(ErrorCode::Unsupported),
            _ => None,
        }
    }
}

/// Outcome discriminant inside [`Reply::Epoch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EpochOutcome {
    /// The requested epoch (or newer) is published.
    Published,
    /// The subscription timed out first.
    TimedOut,
    /// The publisher shut down before reaching the epoch.
    PublisherGone,
}

impl EpochOutcome {
    fn to_u8(self) -> u8 {
        match self {
            EpochOutcome::Published => 0,
            EpochOutcome::TimedOut => 1,
            EpochOutcome::PublisherGone => 2,
        }
    }

    fn from_u8(v: u8) -> Option<Self> {
        match v {
            0 => Some(EpochOutcome::Published),
            1 => Some(EpochOutcome::TimedOut),
            2 => Some(EpochOutcome::PublisherGone),
            _ => None,
        }
    }
}

/// Client → server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request<T: Wire> {
    /// Latest published sample, realized.
    GetSample,
    /// Long-poll until epoch ≥ `epoch` is published or `timeout_ms`
    /// elapses (0 = wait forever).
    SubscribeEpoch {
        /// Epoch the subscriber wants to reach.
        epoch: u64,
        /// Milliseconds to wait; 0 waits indefinitely.
        timeout_ms: u64,
    },
    /// Pull a checkpoint blob of the full engine state.
    CheckpointPull,
    /// Replace the engine state from a checkpoint blob.
    CheckpointPush(Bytes),
    /// Evaluate the served model at `x`.
    Predict(f64),
    /// Force a retrain on the current sample.
    Retrain,
    /// Feed one batch of items into the sampler.
    Ingest(Vec<T>),
    /// Stop accepting connections and exit the serve loop.
    Shutdown,
    /// Liveness probe.
    Ping,
}

/// Server → client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply<T: Wire> {
    /// Realized sample snapshot.
    Sample {
        /// Epoch of the publication the items came from.
        epoch: u64,
        /// Batches the publication reflects.
        batches: u64,
        /// The realized items.
        items: Vec<T>,
    },
    /// Subscription outcome (metadata only; follow with `GET_SAMPLE`).
    Epoch {
        /// What ended the wait.
        outcome: EpochOutcome,
        /// Highest published epoch at resolution time.
        epoch: u64,
        /// Batches reflected by that publication (0 if none).
        batches: u64,
    },
    /// Checkpoint blob.
    Checkpoint(Bytes),
    /// `CHECKPOINT_PUSH` accepted and state replaced.
    Pushed,
    /// Model output.
    Prediction(f64),
    /// Retrain finished; carries the epoch retrained on, if any sample
    /// was available.
    Retrained(Option<u64>),
    /// Ingest accepted.
    IngestAck {
        /// Total batches the sampler has observed.
        batches: u64,
        /// Highest published epoch after the ingest.
        published_epoch: u64,
    },
    /// Server acknowledges `SHUTDOWN` and will stop.
    ShuttingDown,
    /// Liveness answer.
    Pong,
    /// Typed failure.
    Error {
        /// Category.
        code: ErrorCode,
        /// Human-readable detail.
        detail: String,
    },
}

impl<T: Wire> Request<T> {
    /// Serialize into a checkpoint-codec payload (no frame prefix).
    pub fn encode(&self) -> Bytes {
        let mut w = Writer::new();
        match self {
            Request::GetSample => w.put_u8(1),
            Request::SubscribeEpoch { epoch, timeout_ms } => {
                w.put_u8(2);
                w.put_u64(*epoch);
                w.put_u64(*timeout_ms);
            }
            Request::CheckpointPull => w.put_u8(3),
            Request::CheckpointPush(blob) => {
                w.put_u8(4);
                w.put_bytes(blob);
            }
            Request::Predict(x) => {
                w.put_u8(5);
                w.put_f64(*x);
            }
            Request::Retrain => w.put_u8(6),
            Request::Ingest(items) => {
                w.put_u8(7);
                w.put_items(items.iter());
            }
            Request::Shutdown => w.put_u8(8),
            Request::Ping => w.put_u8(9),
        }
        w.finish()
    }

    /// Parse a payload produced by [`Request::encode`].
    pub fn decode(blob: Bytes) -> Result<Self, ProtoError> {
        let mut r = Reader::new(blob)?;
        let msg = match r.get_u8()? {
            1 => Request::GetSample,
            2 => Request::SubscribeEpoch {
                epoch: r.get_u64()?,
                timeout_ms: r.get_u64()?,
            },
            3 => Request::CheckpointPull,
            4 => Request::CheckpointPush(r.get_bytes()?),
            5 => Request::Predict(r.get_f64()?),
            6 => Request::Retrain,
            7 => Request::Ingest(r.get_items()?),
            8 => Request::Shutdown,
            9 => Request::Ping,
            tag => return Err(ProtoError::UnknownTag(tag)),
        };
        Ok(msg)
    }
}

impl<T: Wire> Reply<T> {
    /// Serialize into a checkpoint-codec payload (no frame prefix).
    pub fn encode(&self) -> Bytes {
        let mut w = Writer::new();
        match self {
            Reply::Sample {
                epoch,
                batches,
                items,
            } => {
                w.put_u8(65);
                w.put_u64(*epoch);
                w.put_u64(*batches);
                w.put_items(items.iter());
            }
            Reply::Epoch {
                outcome,
                epoch,
                batches,
            } => {
                w.put_u8(66);
                w.put_u8(outcome.to_u8());
                w.put_u64(*epoch);
                w.put_u64(*batches);
            }
            Reply::Checkpoint(blob) => {
                w.put_u8(67);
                w.put_bytes(blob);
            }
            Reply::Pushed => w.put_u8(68),
            Reply::Prediction(y) => {
                w.put_u8(69);
                w.put_f64(*y);
            }
            Reply::Retrained(epoch) => {
                w.put_u8(70);
                w.put_u8(u8::from(epoch.is_some()));
                w.put_u64(epoch.unwrap_or(0));
            }
            Reply::IngestAck {
                batches,
                published_epoch,
            } => {
                w.put_u8(71);
                w.put_u64(*batches);
                w.put_u64(*published_epoch);
            }
            Reply::ShuttingDown => w.put_u8(72),
            Reply::Pong => w.put_u8(73),
            Reply::Error { code, detail } => {
                w.put_u8(74);
                w.put_u8(code.to_u8());
                w.put_bytes(detail.as_bytes());
            }
        }
        w.finish()
    }

    /// Parse a payload produced by [`Reply::encode`].
    pub fn decode(blob: Bytes) -> Result<Self, ProtoError> {
        let mut r = Reader::new(blob)?;
        let msg = match r.get_u8()? {
            65 => Reply::Sample {
                epoch: r.get_u64()?,
                batches: r.get_u64()?,
                items: r.get_items()?,
            },
            66 => Reply::Epoch {
                outcome: EpochOutcome::from_u8(r.get_u8()?)
                    .ok_or(ProtoError::Frame("bad epoch outcome"))?,
                epoch: r.get_u64()?,
                batches: r.get_u64()?,
            },
            67 => Reply::Checkpoint(r.get_bytes()?),
            68 => Reply::Pushed,
            69 => Reply::Prediction(r.get_f64()?),
            70 => {
                let has = r.get_u8()? == 1;
                let epoch = r.get_u64()?;
                Reply::Retrained(has.then_some(epoch))
            }
            71 => Reply::IngestAck {
                batches: r.get_u64()?,
                published_epoch: r.get_u64()?,
            },
            72 => Reply::ShuttingDown,
            73 => Reply::Pong,
            74 => {
                let code =
                    ErrorCode::from_u8(r.get_u8()?).ok_or(ProtoError::Frame("bad error code"))?;
                let detail = String::from_utf8_lossy(&r.get_bytes()?).into_owned();
                Reply::Error { code, detail }
            }
            tag => return Err(ProtoError::UnknownTag(tag)),
        };
        Ok(msg)
    }
}

/// Wrap a message payload in a length-prefixed frame.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    debug_assert!(payload.len() <= MAX_FRAME, "frame exceeds MAX_FRAME");
    let mut out = Vec::with_capacity(4 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Incremental frame splitter: push arbitrary chunks, pull whole frames.
///
/// Tolerates any chunking of the byte stream — one frame across many
/// reads, many frames in one read. The length prefix is validated
/// against [`MAX_FRAME`] *before* any payload is buffered beyond it.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Consumed prefix of `buf`; compacted lazily.
    pos: usize,
}

impl FrameDecoder {
    /// A decoder with an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append raw bytes read from the transport.
    pub fn push(&mut self, chunk: &[u8]) {
        // Compact before growing: keeps the buffer bounded by the data
        // actually in flight instead of the total ever received.
        if self.pos > 0 && (self.pos >= self.buf.len() || self.pos > 64 * 1024) {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(chunk);
    }

    /// Pull the next complete frame payload, if one is buffered.
    ///
    /// `Ok(None)` means "need more bytes"; [`ProtoError::Frame`] means
    /// the stream is unrecoverable (oversized length prefix) and the
    /// connection should be dropped.
    pub fn next_frame(&mut self) -> Result<Option<Bytes>, ProtoError> {
        let avail = self.buf.len() - self.pos;
        if avail < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(
            self.buf[self.pos..self.pos + 4]
                .try_into()
                .expect("4-byte slice"),
        ) as usize;
        if len > MAX_FRAME {
            return Err(ProtoError::Frame("oversized frame length"));
        }
        if avail < 4 + len {
            return Ok(None);
        }
        let start = self.pos + 4;
        let payload = Bytes::copy_from_slice(&self.buf[start..start + len]);
        self.pos = start + len;
        Ok(Some(payload))
    }

    /// Bytes buffered but not yet consumed as frames.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip_every_variant() {
        let reqs: Vec<Request<u64>> = vec![
            Request::GetSample,
            Request::SubscribeEpoch {
                epoch: 7,
                timeout_ms: 250,
            },
            Request::CheckpointPull,
            Request::CheckpointPush(Bytes::from_static(b"blobby")),
            Request::Predict(1.5),
            Request::Retrain,
            Request::Ingest(vec![1, 2, 3]),
            Request::Shutdown,
            Request::Ping,
        ];
        for req in reqs {
            let back = Request::<u64>::decode(req.encode()).unwrap();
            assert_eq!(req, back);
        }
    }

    #[test]
    fn reply_roundtrip_every_variant() {
        let reps: Vec<Reply<u64>> = vec![
            Reply::Sample {
                epoch: 3,
                batches: 40,
                items: vec![9, 8, 7],
            },
            Reply::Epoch {
                outcome: EpochOutcome::TimedOut,
                epoch: 2,
                batches: 10,
            },
            Reply::Checkpoint(Bytes::from_static(b"ckpt")),
            Reply::Pushed,
            Reply::Prediction(-0.25),
            Reply::Retrained(Some(5)),
            Reply::Retrained(None),
            Reply::IngestAck {
                batches: 12,
                published_epoch: 4,
            },
            Reply::ShuttingDown,
            Reply::Pong,
            Reply::Error {
                code: ErrorCode::Corrupt,
                detail: "bad blob".into(),
            },
        ];
        for rep in reps {
            let back = Reply::<u64>::decode(rep.encode()).unwrap();
            assert_eq!(rep, back);
        }
    }

    #[test]
    fn garbage_payload_is_a_typed_error() {
        assert!(matches!(
            Request::<u64>::decode(Bytes::from_static(b"GARBAGE BYTES HERE")),
            Err(ProtoError::Checkpoint(_))
        ));
        // Unknown tag inside a valid codec envelope.
        let mut w = Writer::new();
        w.put_u8(250);
        assert_eq!(
            Request::<u64>::decode(w.finish()),
            Err(ProtoError::UnknownTag(250))
        );
    }

    #[test]
    fn decoder_handles_split_and_coalesced_frames() {
        let a = encode_frame(&Request::<u64>::GetSample.encode());
        let b = encode_frame(&Request::<u64>::Ping.encode());
        let mut joined = a.clone();
        joined.extend_from_slice(&b);

        // Byte-at-a-time.
        let mut dec = FrameDecoder::new();
        let mut frames = Vec::new();
        for byte in &joined {
            dec.push(std::slice::from_ref(byte));
            while let Some(f) = dec.next_frame().unwrap() {
                frames.push(f);
            }
        }
        assert_eq!(frames.len(), 2);
        assert_eq!(
            Request::<u64>::decode(frames[0].clone()).unwrap(),
            Request::GetSample
        );
        assert_eq!(
            Request::<u64>::decode(frames[1].clone()).unwrap(),
            Request::Ping
        );

        // All at once.
        let mut dec = FrameDecoder::new();
        dec.push(&joined);
        assert!(dec.next_frame().unwrap().is_some());
        assert!(dec.next_frame().unwrap().is_some());
        assert!(dec.next_frame().unwrap().is_none());
        assert_eq!(dec.pending(), 0);
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_buffering() {
        let mut dec = FrameDecoder::new();
        dec.push(&(u32::MAX).to_le_bytes());
        assert_eq!(
            dec.next_frame(),
            Err(ProtoError::Frame("oversized frame length"))
        );
    }
}
