//! # tbs-server — network serving tier
//!
//! Exposes a temporally-biased sampling engine (EDBT 2018, Hentschel,
//! Haas & Tian) over a framed-TCP wire protocol: ingest, epoch
//! subscriptions (long poll), checkpoint pull/push, and model serving.
//!
//! The stack, bottom to top:
//!
//! * [`proto`] — length-prefixed frames whose payloads reuse the
//!   engine's checkpoint codec (`TBSC` magic, typed decode errors);
//!   [`proto::Request`] / [`proto::Reply`] message enums; an
//!   incremental [`proto::FrameDecoder`].
//! * [`service`] — [`service::WireService`], the engine surface the
//!   server dispatches into; [`service::SamplerService`] (full engine
//!   from a `SamplerConfig`) and [`service::CellService`] (read-only
//!   `EpochCell` replica); [`service::LineFit`], the default served
//!   model.
//! * [`server`] — [`server::serve`]: one `miniloop` executor thread,
//!   pipelined connections, fault injection at exact reply-frame
//!   boundaries via the engine's `FaultPlan`.
//! * [`client`] — [`client::BlockingClient`], a synchronous typed
//!   client with socket timeouts.
//!
//! ```no_run
//! use temporal_sampling::api::{RetrainPolicy, SamplerConfig};
//! use tbs_server::client::BlockingClient;
//! use tbs_server::service::{NoModel, SamplerService};
//!
//! let svc: SamplerService<u64, NoModel> = SamplerService::new(
//!     SamplerConfig::rtbs(0.05, 1000).seed(7),
//!     NoModel,
//!     RetrainPolicy::EveryBatch,
//! )
//! .unwrap();
//! let server = tbs_server::server::serve("127.0.0.1:0".parse().unwrap(), svc, None).unwrap();
//!
//! let mut client: BlockingClient<u64> = BlockingClient::connect(server.addr()).unwrap();
//! client.ingest((0..10_000).collect()).unwrap();
//! let (epoch, _batches, items) = client.get_sample().unwrap();
//! assert!(epoch >= 1 && !items.is_empty());
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod proto;
pub mod server;
pub mod service;

pub use client::{BlockingClient, ClientError};
pub use proto::{EpochOutcome, ErrorCode, FrameDecoder, ProtoError, Reply, Request};
pub use server::{serve, serve_on, ServerHandle};
pub use service::{
    CellService, LineFit, NoModel, Predictor, SamplerService, ServiceError, WireService,
};
