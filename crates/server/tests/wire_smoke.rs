//! End-to-end wire smoke: a real server on loopback, a real client
//! through every message type, injected wire faults, clean shutdown.

use std::io;
use std::net::TcpListener;
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use tbs_distributed::snapshot::EpochCell;
use tbs_distributed::FaultPlan;
use tbs_server::client::{BlockingClient, ClientError};
use tbs_server::proto::{EpochOutcome, ErrorCode};
use tbs_server::server::{serve_on, ServerHandle};
use tbs_server::service::{CellService, LineFit, NoModel, SamplerService};
use temporal_sampling::api::{RetrainPolicy, SamplerConfig};
use temporal_sampling::core::frozen::FrozenSample;

fn start_line_server(fault_plan: Option<Arc<FaultPlan>>) -> ServerHandle {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let config = SamplerConfig::rtbs(0.05, 500).seed(7);
    let svc: SamplerService<[f64; 2], LineFit> =
        SamplerService::new(config, LineFit::new(), RetrainPolicy::EveryBatch).unwrap();
    serve_on(listener, svc, fault_plan).unwrap()
}

fn line_batch(range: std::ops::Range<i32>) -> Vec<[f64; 2]> {
    range.map(|i| [i as f64, 2.0 * i as f64 + 1.0]).collect()
}

#[test]
fn every_verb_roundtrips_on_loopback() {
    let server = start_line_server(None);
    let mut client: BlockingClient<[f64; 2]> = BlockingClient::connect(server.addr()).unwrap();

    // PING before anything exists.
    client.ping().unwrap();

    // GET_SAMPLE before a publish is a typed Unavailable, not a hang.
    match client.get_sample() {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::Unavailable),
        other => panic!("expected Unavailable, got {other:?}"),
    }

    // PREDICT before any fit is likewise Unavailable.
    match client.predict(1.0) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::Unavailable),
        other => panic!("expected Unavailable, got {other:?}"),
    }

    // INGEST publishes an epoch per batch.
    let (batches, epoch1) = client.ingest(line_batch(0..400)).unwrap();
    assert_eq!(batches, 1);
    assert!(epoch1 >= 1);
    let (batches, epoch2) = client.ingest(line_batch(400..800)).unwrap();
    assert_eq!(batches, 2);
    assert!(epoch2 > epoch1);

    // GET_SAMPLE returns the latest publication.
    let (epoch, got_batches, items) = client.get_sample().unwrap();
    assert_eq!(epoch, epoch2);
    assert_eq!(got_batches, 2);
    assert!(!items.is_empty() && items.len() <= 500);
    assert!(items
        .iter()
        .all(|[x, y]| (y - (2.0 * x + 1.0)).abs() < 1e-9));

    // SUBSCRIBE_EPOCH for an already-published epoch resolves at once.
    let (outcome, sub_epoch, sub_batches) = client
        .subscribe_epoch(epoch1, Some(Duration::from_secs(2)))
        .unwrap();
    assert_eq!(outcome, EpochOutcome::Published);
    assert!(sub_epoch >= epoch1);
    assert!(sub_batches >= 1);

    // RETRAIN then PREDICT: the model saw y = 2x + 1. The retrain
    // freezes a fresh publication, so its epoch is at least epoch2.
    let trained_on = client.retrain().unwrap();
    assert!(trained_on.unwrap() >= epoch2, "trained on {trained_on:?}");
    let y = client.predict(10.0).unwrap();
    assert!((y - 21.0).abs() < 1e-6, "prediction {y}");

    // CHECKPOINT_PULL / PUSH round-trip, then state continues.
    let blob = client.checkpoint_pull().unwrap();
    assert!(!blob.is_empty());
    client.checkpoint_push(blob).unwrap();
    let (batches, _) = client.ingest(line_batch(800..1200)).unwrap();
    assert_eq!(batches, 3, "restored engine kept its batch count");

    // A garbage CHECKPOINT_PUSH is a typed Corrupt error...
    match client.checkpoint_push(Bytes::from_static(b"junk")) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::Corrupt),
        other => panic!("expected Corrupt, got {other:?}"),
    }
    // ...and the live engine is untouched.
    let (_, got_batches, _) = client.get_sample().unwrap();
    assert_eq!(got_batches, 3);

    // Pipelined GET_SAMPLE: many requests, one write, all answered.
    assert_eq!(client.get_sample_pipelined(64).unwrap(), 64);

    // SHUTDOWN stops the serve loop.
    client.shutdown_server().unwrap();
    server.wait().unwrap();
}

#[test]
fn subscribe_epoch_long_polls_until_another_connection_publishes() {
    let server = start_line_server(None);
    let addr = server.addr();

    let waiter = std::thread::spawn(move || {
        let mut client: BlockingClient<[f64; 2]> = BlockingClient::connect(addr).unwrap();
        client.subscribe_epoch(1, Some(Duration::from_secs(10)))
    });

    // Give the subscriber time to park, then publish over a second
    // connection.
    std::thread::sleep(Duration::from_millis(100));
    let mut publisher: BlockingClient<[f64; 2]> = BlockingClient::connect(addr).unwrap();
    let (_, epoch) = publisher.ingest(line_batch(0..100)).unwrap();

    let (outcome, got_epoch, _) = waiter.join().unwrap().unwrap();
    assert_eq!(outcome, EpochOutcome::Published);
    assert_eq!(got_epoch, epoch);
}

#[test]
fn subscribe_epoch_times_out_when_nothing_publishes() {
    let server = start_line_server(None);
    let mut client: BlockingClient<[f64; 2]> = BlockingClient::connect(server.addr()).unwrap();
    let start = std::time::Instant::now();
    let (outcome, epoch, batches) = client
        .subscribe_epoch(5, Some(Duration::from_millis(150)))
        .unwrap();
    assert_eq!(outcome, EpochOutcome::TimedOut);
    assert_eq!((epoch, batches), (0, 0));
    assert!(start.elapsed() >= Duration::from_millis(140));
    // The connection is still usable after a timed-out poll.
    client.ping().unwrap();
}

#[test]
fn injected_connection_drop_severs_at_the_exact_frame() {
    // Fault: connection 1 loses its 2nd reply frame.
    let plan = Arc::new(FaultPlan::new().drop_connection(1, 2));
    let server = start_line_server(Some(Arc::clone(&plan)));
    let mut client: BlockingClient<[f64; 2]> = BlockingClient::connect(server.addr()).unwrap();

    // Frame 1 is delivered intact.
    client.ping().unwrap();

    // Frame 2 never arrives: the socket dies under the client.
    match client.ping() {
        Err(ClientError::Io(e)) => assert!(
            matches!(
                e.kind(),
                io::ErrorKind::UnexpectedEof
                    | io::ErrorKind::ConnectionReset
                    | io::ErrorKind::BrokenPipe
            ),
            "unexpected kind {:?}",
            e.kind()
        ),
        other => panic!("expected dropped connection, got {other:?}"),
    }
    assert_eq!(plan.fired_count(), 1, "fault fired exactly once");

    // The server itself survives: a fresh connection works.
    let mut client2: BlockingClient<[f64; 2]> = BlockingClient::connect(server.addr()).unwrap();
    client2.ping().unwrap();
}

#[test]
fn half_open_socket_surfaces_as_a_client_read_timeout() {
    let plan = Arc::new(FaultPlan::new().half_open_socket(1, 1));
    let server = start_line_server(Some(plan));
    let mut client: BlockingClient<[f64; 2]> =
        BlockingClient::connect_timeout(server.addr(), Duration::from_millis(300)).unwrap();

    // The socket stays open but the reply never comes; the client's
    // read timeout must fire rather than hanging forever.
    match client.ping() {
        Err(ClientError::Io(e)) => assert!(
            matches!(
                e.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
            ),
            "unexpected kind {:?}",
            e.kind()
        ),
        other => panic!("expected read timeout, got {other:?}"),
    }

    // Other connections are unaffected.
    let mut client2: BlockingClient<[f64; 2]> = BlockingClient::connect(server.addr()).unwrap();
    client2.ping().unwrap();
}

#[test]
fn cell_service_replica_serves_a_publisher_owned_elsewhere() {
    let cell: Arc<EpochCell<u64>> = Arc::new(EpochCell::new());
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let server = serve_on(listener, CellService::new(Arc::clone(&cell)), None).unwrap();
    let mut client: BlockingClient<u64> = BlockingClient::connect(server.addr()).unwrap();

    // Mutating verbs are rejected on a replica.
    match client.ingest(vec![1, 2, 3]) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::Unsupported),
        other => panic!("expected Unsupported, got {other:?}"),
    }

    // Publish in-process; the wire sees it.
    cell.publish(Arc::new(FrozenSample::new(1, 4, None, 3.0, vec![7, 8, 9])));
    let (epoch, batches, items) = client.get_sample().unwrap();
    assert_eq!((epoch, batches), (1, 4));
    assert_eq!(items, vec![7, 8, 9]);

    // A subscriber parked on the wire wakes when the in-process
    // publisher advances the cell.
    let addr = server.addr();
    let waiter = std::thread::spawn(move || {
        let mut c: BlockingClient<u64> = BlockingClient::connect(addr).unwrap();
        c.subscribe_epoch(2, Some(Duration::from_secs(10)))
    });
    std::thread::sleep(Duration::from_millis(100));
    cell.publish(Arc::new(FrozenSample::new(2, 8, None, 3.0, vec![10])));
    let (outcome, epoch, _) = waiter.join().unwrap().unwrap();
    assert_eq!(outcome, EpochOutcome::Published);
    assert_eq!(epoch, 2);

    // Publisher death resolves parked subscribers with PublisherGone.
    let addr = server.addr();
    let waiter = std::thread::spawn(move || {
        let mut c: BlockingClient<u64> = BlockingClient::connect(addr).unwrap();
        c.subscribe_epoch(99, Some(Duration::from_secs(10)))
    });
    std::thread::sleep(Duration::from_millis(100));
    cell.close();
    let (outcome, ..) = waiter.join().unwrap().unwrap();
    assert_eq!(outcome, EpochOutcome::PublisherGone);
}

#[test]
fn second_sampler_restores_from_a_pulled_checkpoint() {
    // Pull a checkpoint over the wire from one server, push it into a
    // fresh one: the replica continues the primary's stream position.
    let primary = start_line_server(None);
    let mut c1: BlockingClient<[f64; 2]> = BlockingClient::connect(primary.addr()).unwrap();
    c1.ingest(line_batch(0..500)).unwrap();
    c1.ingest(line_batch(500..900)).unwrap();
    let blob = c1.checkpoint_pull().unwrap();

    let replica = start_line_server(None);
    let mut c2: BlockingClient<[f64; 2]> = BlockingClient::connect(replica.addr()).unwrap();
    c2.checkpoint_push(blob).unwrap();
    let (batches, _) = c2.ingest(line_batch(900..1000)).unwrap();
    assert_eq!(batches, 3, "replica continued the primary's batch count");

    // A NoModel service reports Unavailable for PREDICT, proving the
    // model verbs are service-level, not protocol-level.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let svc: SamplerService<u64, NoModel> = SamplerService::new(
        SamplerConfig::rtbs(0.05, 100).seed(3),
        NoModel,
        RetrainPolicy::EveryBatch,
    )
    .unwrap();
    let plain = serve_on(listener, svc, None).unwrap();
    let mut c3: BlockingClient<u64> = BlockingClient::connect(plain.addr()).unwrap();
    match c3.predict(0.0) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::Unavailable),
        other => panic!("expected Unavailable, got {other:?}"),
    }
}
