//! Property tests of the frame codec: any chunking of the byte stream
//! reassembles the exact frames; truncated, oversized, and garbage
//! inputs surface as typed errors (or "need more bytes"), never panics.

use bytes::Bytes;
use proptest::prelude::*;
use tbs_server::proto::{encode_frame, FrameDecoder, ProtoError, Reply, Request, MAX_FRAME};

/// Deterministic mixed message sequence derived from generated scalars.
fn frame_stream(items: &[u64], epoch: u64) -> (Vec<Request<u64>>, Vec<u8>) {
    let reqs: Vec<Request<u64>> = vec![
        Request::Ping,
        Request::Ingest(items.to_vec()),
        Request::SubscribeEpoch {
            epoch,
            timeout_ms: epoch % 5000,
        },
        Request::CheckpointPush(Bytes::from(
            items.iter().map(|i| *i as u8).collect::<Vec<u8>>(),
        )),
        Request::GetSample,
    ];
    let mut stream = Vec::new();
    for req in &reqs {
        stream.extend_from_slice(&encode_frame(&req.encode()));
    }
    (reqs, stream)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn any_chunking_reassembles_the_exact_frames(
        items in prop::collection::vec(0u64..u64::MAX, 0..40),
        epoch in 0u64..10_000,
        chunk in 1usize..97,
    ) {
        let (reqs, stream) = frame_stream(&items, epoch);
        let mut dec = FrameDecoder::new();
        let mut decoded = Vec::new();
        for piece in stream.chunks(chunk) {
            dec.push(piece);
            while let Some(frame) = dec.next_frame().unwrap() {
                decoded.push(Request::<u64>::decode(frame).unwrap());
            }
        }
        prop_assert_eq!(decoded, reqs);
        prop_assert_eq!(dec.pending(), 0);
    }

    #[test]
    fn truncated_streams_yield_only_whole_frames(
        items in prop::collection::vec(0u64..1_000, 0..30),
        epoch in 0u64..10_000,
        keep_permille in 0usize..1000,
    ) {
        let (reqs, stream) = frame_stream(&items, epoch);
        let keep = stream.len() * keep_permille / 1000;
        let mut dec = FrameDecoder::new();
        dec.push(&stream[..keep]);
        let mut whole = 0;
        while let Some(frame) = dec.next_frame().unwrap() {
            // Every frame the decoder yields is complete and decodes
            // back to the message that was sent.
            prop_assert_eq!(Request::<u64>::decode(frame).unwrap(), reqs[whole].clone());
            whole += 1;
        }
        // The tail (a torn frame) stays buffered, never surfaced.
        prop_assert!(whole <= reqs.len());
        // Feeding the rest completes the stream exactly.
        dec.push(&stream[keep..]);
        while let Some(frame) = dec.next_frame().unwrap() {
            prop_assert_eq!(Request::<u64>::decode(frame).unwrap(), reqs[whole].clone());
            whole += 1;
        }
        prop_assert_eq!(whole, reqs.len());
        prop_assert_eq!(dec.pending(), 0);
    }

    #[test]
    fn oversized_length_prefixes_are_rejected(
        excess in 1u64..u32::MAX as u64 - MAX_FRAME as u64,
    ) {
        let len = (MAX_FRAME as u64 + excess) as u32;
        let mut dec = FrameDecoder::new();
        dec.push(&len.to_le_bytes());
        prop_assert_eq!(
            dec.next_frame(),
            Err(ProtoError::Frame("oversized frame length"))
        );
    }

    #[test]
    fn garbage_bytes_never_panic_the_decoder(
        noise in prop::collection::vec(0u8..=255, 0..4096),
        chunk in 1usize..257,
    ) {
        let mut dec = FrameDecoder::new();
        for piece in noise.chunks(chunk) {
            dec.push(piece);
            loop {
                match dec.next_frame() {
                    // A "frame" assembled from noise must still fail
                    // message decode with a typed error, not a panic.
                    Ok(Some(frame)) => {
                        prop_assert!(Request::<u64>::decode(frame).is_err());
                    }
                    Ok(None) => break,
                    // Oversized prefix: stream is dead, stop pushing.
                    Err(ProtoError::Frame(_)) => return,
                    Err(e) => panic!("unexpected error {e}"),
                }
            }
        }
    }

    #[test]
    fn garbage_magic_payloads_fail_with_a_codec_error(
        payload in prop::collection::vec(0u8..=255, 0..256),
    ) {
        // Skip the astronomically unlikely case of noise that starts
        // with the real magic.
        prop_assume!(!payload.starts_with(b"TBSC"));
        let framed = encode_frame(&payload);
        let mut dec = FrameDecoder::new();
        dec.push(&framed);
        let frame = dec.next_frame().unwrap().expect("whole frame buffered");
        prop_assert!(matches!(
            Request::<u64>::decode(frame.clone()),
            Err(ProtoError::Checkpoint(_))
        ));
        prop_assert!(matches!(
            Reply::<u64>::decode(frame),
            Err(ProtoError::Checkpoint(_))
        ));
    }
}
