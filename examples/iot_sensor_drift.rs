// IoT sensor-drift scenario (§1's motivating setting).
//
// ```sh
// cargo run --release --example iot_sensor_drift
// ```
//
// A fleet of sensors emits readings whose class distribution is disrupted
// by a singular event (say, a plant-wide maintenance window) and then
// reverts. A kNN fault classifier is retrained every batch on the
// maintained sample. Sliding windows adapt fast but *forget* the normal
// regime — when it returns, their error spikes; the uniform reservoir
// never adapts; R-TBS does both.

use rand::SeedableRng;
use temporal_sampling::datagen::gmm::GmmGenerator;
use temporal_sampling::datagen::modes::ModeSchedule;
use temporal_sampling::datagen::stream::StreamPlan;
use temporal_sampling::datagen::BatchSizeProcess;
use temporal_sampling::ml::pipeline::{run_stream, Contender};
use temporal_sampling::ml::KnnClassifier;
use temporal_sampling::prelude::*;

fn main() {
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(2024);
    let sensors = GmmGenerator::paper(&mut rng);

    let plan = StreamPlan {
        warmup_batches: 100,
        measured_batches: 30,
        batch_sizes: BatchSizeProcess::Deterministic(100),
        schedule: ModeSchedule::single_event(), // abnormal on [10, 20)
    };

    let n = 1000;
    let mut contenders: Vec<Contender<_>> = vec![
        Contender::new(
            "R-TBS",
            Box::new(RTbs::new(0.07, n)),
            Box::new(KnnClassifier::new(7)),
        ),
        Contender::new(
            "SW",
            Box::new(CountWindow::new(n)),
            Box::new(KnnClassifier::new(7)),
        ),
        Contender::new(
            "Unif",
            Box::new(BatchedReservoir::new(n)),
            Box::new(KnnClassifier::new(7)),
        ),
    ];

    let outputs = run_stream(
        &plan,
        |mode, size, rng| sensors.sample_batch(mode, size, rng),
        &mut contenders,
        &mut rng,
    );

    println!("misclassification % per batch (event on t in [10,20)):");
    println!("{:>4} {:>8} {:>8} {:>8}", "t", "R-TBS", "SW", "Unif");
    for t in 0..outputs[0].errors.len() {
        let marker = if (10..20).contains(&t) { "*" } else { " " };
        println!(
            "{t:>3}{marker} {:>8.1} {:>8.1} {:>8.1}",
            outputs[0].errors[t], outputs[1].errors[t], outputs[2].errors[t]
        );
    }
    for o in &outputs {
        let recovery_spike = o.errors[20..].iter().cloned().fold(0.0, f64::max);
        println!(
            "{:>6}: worst error after the event ends = {recovery_spike:.1}%",
            o.name
        );
    }
    println!(
        "note the SW spike at t=20 when the normal regime returns — the \
              all-or-nothing forgetting the paper warns about."
    );
}
