// IoT sensor-drift scenario (§1's motivating setting).
//
// ```sh
// cargo run --release --example iot_sensor_drift
// ```
//
// A fleet of sensors emits readings whose class distribution is disrupted
// by a singular event (say, a plant-wide maintenance window) and then
// reverts. A kNN fault classifier is retrained every batch on the
// maintained sample — each contender is one `api::ModelManager` and all
// three see the identical stream. Sliding windows adapt fast but
// *forget* the normal regime — when it returns, their error spikes; the
// uniform reservoir never adapts; R-TBS does both.

use rand::SeedableRng;
use temporal_sampling::datagen::gmm::{GmmGenerator, LabeledPoint};
use temporal_sampling::datagen::modes::ModeSchedule;
use temporal_sampling::datagen::stream::StreamPlan;
use temporal_sampling::datagen::BatchSizeProcess;
use temporal_sampling::ml::KnnClassifier;
use temporal_sampling::prelude::*;

fn main() {
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(2024);
    let sensors = GmmGenerator::paper(&mut rng);

    let plan = StreamPlan {
        warmup_batches: 100,
        measured_batches: 30,
        batch_sizes: BatchSizeProcess::Deterministic(100),
        schedule: ModeSchedule::single_event(), // abnormal on [10, 20)
    };

    let n = 1000;
    let manager = |config: SamplerConfig, seed: u64| -> ModelManager<LabeledPoint, KnnClassifier> {
        let sampler = config.seed(seed).build().expect("valid config");
        ModelManager::new(sampler, KnnClassifier::new(7), RetrainPolicy::EveryBatch)
    };
    let mut contenders = [
        ("R-TBS", manager(SamplerConfig::rtbs(0.07, n), 31)),
        ("SW", manager(SamplerConfig::sliding_count(n), 32)),
        ("Unif", manager(SamplerConfig::uniform(n), 33)),
    ];

    // Every manager sees the same generated stream; errors are recorded
    // in the measured phase only (test-then-train, so all scores are
    // out-of-sample).
    let mut errors: Vec<Vec<f64>> = vec![Vec::new(); contenders.len()];
    for planned in plan.layout(&mut rng) {
        let batch = sensors.sample_batch(planned.mode, planned.size as usize, &mut rng);
        for ((_, mgr), errs) in contenders.iter_mut().zip(&mut errors) {
            let report = mgr.ingest(batch.clone()).expect("ingest pipeline healthy");
            if planned.measured_time.is_some() {
                errs.push(report.batch_error);
            }
        }
    }

    println!("misclassification % per batch (event on t in [10,20)):");
    println!("{:>4} {:>8} {:>8} {:>8}", "t", "R-TBS", "SW", "Unif");
    for (t, ((e0, e1), e2)) in errors[0].iter().zip(&errors[1]).zip(&errors[2]).enumerate() {
        let marker = if (10..20).contains(&t) { "*" } else { " " };
        println!("{t:>3}{marker} {e0:>8.1} {e1:>8.1} {e2:>8.1}");
    }
    for ((name, mgr), errs) in contenders.iter().zip(&errors) {
        let recovery_spike = errs[20..].iter().cloned().fold(0.0, f64::max);
        println!(
            "{name:>6}: worst error after the event ends = {recovery_spike:.1}% \
             ({} refits)",
            mgr.retrain_count()
        );
    }
    println!(
        "note the SW spike at t=20 when the normal regime returns — the \
              all-or-nothing forgetting the paper warns about."
    );
}
