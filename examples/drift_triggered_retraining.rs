// Drift-triggered retraining (the §7 Velox-style integration).
//
// ```sh
// cargo run --release --example drift_triggered_retraining
// ```
//
// Retraining every batch is wasteful when nothing changes. Here the
// `api::ModelManager` runs the whole loop — predict out-of-sample, feed
// the R-TBS sample, refit per policy — and a drift-triggered policy
// (with a periodic fallback) recovers from mode flips almost as fast as
// refit-every-batch, at a fraction of the retraining cost.

use rand::SeedableRng;
use temporal_sampling::datagen::gmm::GmmGenerator;
use temporal_sampling::datagen::modes::{Mode, ModeSchedule};
use temporal_sampling::ml::KnnClassifier;
use temporal_sampling::prelude::*;

fn main() {
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(7);
    let gmm = GmmGenerator::paper(&mut rng);
    let schedule = ModeSchedule::periodic(15, 10);

    let policies: Vec<(&str, RetrainPolicy)> = vec![
        ("every-batch", RetrainPolicy::EveryBatch),
        ("periodic(5)", RetrainPolicy::Periodic(5)),
        ("on-drift", RetrainPolicy::OnDrift { fallback: 25 }),
    ];

    println!(
        "{:<12} {:>10} {:>10} {:>10}",
        "policy", "mean err%", "worst err%", "retrains"
    );
    for (name, policy) in policies {
        let sampler = SamplerConfig::rtbs(0.07, 1000)
            .seed(13)
            .build()
            .expect("valid config");
        let mut mgr = ModelManager::new(sampler, KnnClassifier::new(7), policy);
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(99);

        // Warm up on 100 normal batches; the manager scores and refits
        // per policy from the first batch on, so by the end of warmup the
        // model is fit to the normal regime.
        for _ in 0..100 {
            mgr.ingest(gmm.sample_batch(Mode::Normal, 100, &mut rng))
                .expect("ingest pipeline healthy");
        }
        let warmup_retrains = mgr.retrain_count();

        let mut errors = Vec::new();
        for t in 0..60u64 {
            let mode = schedule.mode_at(t);
            let batch = gmm.sample_batch(mode, 100, &mut rng);
            let report = mgr.ingest(batch).expect("ingest pipeline healthy");
            errors.push(report.batch_error);
        }
        let mean = errors.iter().sum::<f64>() / errors.len() as f64;
        let worst = errors.iter().cloned().fold(0.0f64, f64::max);
        println!(
            "{name:<12} {mean:>10.1} {worst:>10.1} {:>10}",
            mgr.retrain_count() - warmup_retrains
        );
    }
    println!(
        "\non-drift reacts to the mode flips while skipping most refits — the \
         time-biased sample keeps enough of both regimes that each refit lands well."
    );
}
