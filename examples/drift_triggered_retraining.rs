// Drift-triggered retraining (the §7 Velox-style integration).
//
// ```sh
// cargo run --release --example drift_triggered_retraining
// ```
//
// Retraining every batch is wasteful when nothing changes. Here a kNN
// model over an R-TBS sample is refit only when a drift detector flags a
// jump in the per-batch error (with a periodic fallback) — and still
// recovers from a mode flip almost as fast as the refit-every-batch
// protocol, at a fraction of the retraining cost.

use rand::SeedableRng;
use temporal_sampling::datagen::gmm::GmmGenerator;
use temporal_sampling::datagen::modes::{Mode, ModeSchedule};
use temporal_sampling::ml::drift::{DriftDetector, RetrainPolicy, RetrainScheduler};
use temporal_sampling::ml::KnnClassifier;
use temporal_sampling::prelude::*;

fn main() {
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(7);
    let gmm = GmmGenerator::paper(&mut rng);
    let schedule = ModeSchedule::periodic(15, 10);

    let policies: Vec<(&str, RetrainPolicy)> = vec![
        ("every-batch", RetrainPolicy::EveryBatch),
        ("periodic(5)", RetrainPolicy::Periodic(5)),
        ("on-drift", RetrainPolicy::OnDrift { fallback: 25 }),
    ];

    println!(
        "{:<12} {:>10} {:>10} {:>10}",
        "policy", "mean err%", "worst err%", "retrains"
    );
    for (name, policy) in policies {
        let mut sampler: RTbs<_> = RTbs::new(0.07, 1000);
        let mut model = KnnClassifier::new(7);
        let mut scheduler =
            RetrainScheduler::new(policy, DriftDetector::default_for_percent_errors());
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(99);

        // Warm up: 100 normal batches, train once at the end.
        for _ in 0..100 {
            sampler.observe(gmm.sample_batch(Mode::Normal, 100, &mut rng), &mut rng);
        }
        model.train(&sampler.sample(&mut rng));

        let mut errors = Vec::new();
        for t in 0..60u64 {
            let mode = schedule.mode_at(t);
            let batch = gmm.sample_batch(mode, 100, &mut rng);
            let err = model.misclassification_pct(&batch);
            errors.push(err);
            sampler.observe(batch, &mut rng);
            if scheduler.should_retrain(err) {
                model.train(&sampler.sample(&mut rng));
            }
        }
        let mean = errors.iter().sum::<f64>() / errors.len() as f64;
        let worst = errors.iter().cloned().fold(0.0f64, f64::max);
        println!(
            "{name:<12} {mean:>10.1} {worst:>10.1} {:>10}",
            scheduler.retrain_count()
        );
    }
    println!(
        "\non-drift reacts to the mode flips while skipping most refits — the \
         time-biased sample keeps enough of both regimes that each refit lands well."
    );
}
