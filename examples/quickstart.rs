// Quickstart: maintain a temporally-biased sample over a stream.
//
// ```sh
// cargo run --release --example quickstart
// ```
//
// Shows the core workflow: pick a decay rate from an application-level
// retention criterion, build an R-TBS handle through the `api` builder,
// feed timestamped batches, and read back a bounded sample whose item
// ages follow the exponential inclusion law.

use temporal_sampling::core::theory;
use temporal_sampling::prelude::*;

fn main() {
    // 1. Choose λ so that ~10% of items from 40 batches ago are still
    //    reflected in the sample (the paper's §1 recipe).
    let lambda = theory::lambda_for_retention(40.0, 0.10);
    println!("decay rate lambda = {lambda:.4} (10% retention at age 40)");

    // 2. Build the sampler: hard sample-size bound n = 500. The builder
    //    validates the config (a bad λ would be an `Err`, not a panic)
    //    and the handle owns its seeded RNG.
    let mut sampler = SamplerConfig::rtbs(lambda, 500)
        .seed(7)
        .build::<(u32, u32)>()
        .expect("valid config");

    // 3. Stream 200 batches of (timestamp, payload) items with a bursty
    //    arrival pattern — R-TBS needs no knowledge of the rate.
    for t in 0..200u32 {
        let batch_size = match t % 10 {
            0 => 0,   // stalls…
            5 => 400, // …and bursts
            _ => 60,
        };
        let batch: Vec<(u32, u32)> = (0..batch_size).map(|i| (t, i)).collect();
        sampler.observe(batch).expect("single-node ingest");
    }

    // 4. Inspect the sample: bounded size, recency-biased ages.
    let sample = sampler.sample().expect("single-node sample");
    println!(
        "sample size = {} (bound {}), expected size C = {:.1}",
        sample.len(),
        sampler.max_size().expect("R-TBS is bounded"),
        sampler.expected_size().expect("single-node query")
    );
    let mut age_histogram = [0usize; 5];
    for (t, _) in &sample {
        let age = 199 - t;
        let bucket = (age / 10).min(4) as usize;
        age_histogram[bucket] += 1;
    }
    println!("age distribution (newest first, 10-batch buckets):");
    for (i, count) in age_histogram.iter().enumerate() {
        let label = if i < 4 {
            format!("{:>3}-{:<3}", i * 10, i * 10 + 9)
        } else {
            " 40+  ".to_string()
        };
        println!(
            "  age {label}: {}",
            "#".repeat(count / 4).to_string() + &format!(" {count}")
        );
    }
    println!(
        "expected geometric decay per bucket factor ≈ {:.2}",
        (-lambda * 10.0).exp()
    );
}
