// Checkpoint / restore: durable sampler state across process restarts.
//
// ```sh
// cargo run --release --example checkpoint_resume
// ```
//
// §5.1 of the paper: "Both D-T-TBS and D-R-TBS periodically checkpoint
// the sample as well as other system state variables to ensure fault
// tolerance." The `api::Sampler` makes that a two-call affair:
// `snapshot()` serializes the complete state — configuration echo, RNG
// positions, reservoir contents — into one versioned blob, and
// `restore()` rebuilds the sampler in a fresh process. The resumed
// stream is **bit-identical** to an uninterrupted run, for the 4-shard
// parallel engine too (every shard's RNG substream position rides along).

use temporal_sampling::api::{Sampler, SamplerConfig, TbsError};

fn bursty_batch(t: u64) -> Vec<u64> {
    let size = match t % 10 {
        0 => 0,
        5 => 400,
        _ => 100,
    };
    (0..size).map(|i| t * 1_000 + i).collect()
}

fn demo(label: &str, config: SamplerConfig) {
    // Reference run: 400 batches straight through.
    let mut uninterrupted = config.build::<u64>().expect("valid config");
    for t in 0..400 {
        uninterrupted.observe(bursty_batch(t)).expect("ingest ok");
    }

    // "Crash" run: 200 batches, checkpoint, drop everything, restore,
    // 200 more. The blob is plain bytes — in production it would go to
    // object storage; a fresh process would read it back.
    let mut first_half = config.build::<u64>().expect("valid config");
    for t in 0..200 {
        first_half.observe(bursty_batch(t)).expect("ingest ok");
    }
    let blob = first_half.snapshot().expect("serializable state");
    drop(first_half);

    let mut resumed = Sampler::restore(&config, blob.clone()).expect("restorable blob");
    for t in 200..400 {
        resumed.observe(bursty_batch(t)).expect("ingest ok");
    }

    let expect = uninterrupted.sample().expect("sample ok");
    let got = resumed.sample().expect("sample ok");
    assert_eq!(got, expect, "{label}: resumed run diverged");
    println!(
        "{label}: {} byte checkpoint at t=200; resumed run of 400 batches is \
         bit-identical ({} items in the final sample)",
        blob.len(),
        got.len()
    );

    // Damaged blobs are errors, not panics.
    let truncated = blob.slice(0..blob.len() / 2);
    match Sampler::<u64>::restore(&config, truncated) {
        Err(TbsError::Checkpoint(e)) => println!("{label}: truncated blob rejected ({e})"),
        other => panic!("truncated blob must be rejected, got {other:?}"),
    }
}

fn main() {
    // Single-node R-TBS, saturated regime (n below the equilibrium
    // weight).
    demo("R-TBS 1-shard", SamplerConfig::rtbs(0.1, 1000).seed(7));

    // The 4-shard parallel engine: the checkpoint carries all four shard
    // samplers, their jump-ahead RNG substream positions, the driver RNG,
    // and the batch-split rotation.
    demo(
        "R-TBS 4-shard",
        SamplerConfig::rtbs(0.1, 1000).shards(4).seed(7),
    );

    // T-TBS under the same protocol.
    demo(
        "T-TBS 1-shard",
        SamplerConfig::ttbs(0.1, 1000, 100.0).seed(7),
    );

    // Restoring under a different config is caught, not silently accepted.
    let config = SamplerConfig::rtbs(0.1, 1000).seed(7);
    let mut s = config.build::<u64>().expect("valid config");
    s.observe(bursty_batch(1)).expect("ingest ok");
    let blob = s.snapshot().expect("serializable state");
    let wrong = SamplerConfig::rtbs(0.2, 1000).seed(7);
    match Sampler::<u64>::restore(&wrong, blob) {
        Err(TbsError::ConfigMismatch { what }) => {
            println!("restore under a different λ rejected (mismatch on {what})");
        }
        other => panic!("config mismatch must be rejected, got {other:?}"),
    }
}
