// Parallel ingest: shard a temporally-biased sample across worker threads.
//
// ```sh
// cargo run --release --example parallel_ingest
// ```
//
// One core stopped being the bottleneck at ~265M items/s, so the engine
// shards the stream across K persistent worker threads, each running its
// own R-TBS with a jump-ahead RNG substream, and merges the shard states
// *exactly* (the paper's §5 weight algebra) only when a sample is asked
// for. The merged sample is statistically identical to a single-node
// R-TBS over the whole stream — and bit-identical across runs for a fixed
// (seed, shard count).

use temporal_sampling::core::merge::ShardSpec;
use temporal_sampling::core::RTbs;
use temporal_sampling::distributed::engine::{EngineConfig, ParallelIngestEngine};

fn main() {
    // 1. Single-node-equivalent spec: λ = 0.1, hard bound n = 1000,
    //    4 shards. Each shard gets capacity ⌈n/K⌉ plus a skew headroom so
    //    the merge is exact under any batch-size schedule.
    let spec = ShardSpec::rtbs(0.1, 1000, 4);
    println!(
        "4 shards, per-shard capacity {} (n = 1000 + merge headroom)",
        spec.shard_capacity()
    );

    // 2. Spawn the engine: 4 long-lived shard threads behind bounded
    //    queues. Worker threads exist for the engine's lifetime — no
    //    per-batch spawning.
    let mut engine: ParallelIngestEngine<RTbs<u64>> =
        ParallelIngestEngine::new(EngineConfig::new(spec, 42));

    // 3. Feed a bursty stream. Each batch is split deterministically
    //    across the shards; empty batches still advance every shard's
    //    decay clock.
    for t in 0..2_000u64 {
        let batch_size = match t % 10 {
            0 => 0,
            5 => 400,
            _ => 100,
        };
        let batch: Vec<u64> = (0..batch_size).map(|i| t * 1_000 + i).collect();
        engine.ingest(batch);
    }

    // 4. Sample: quiesce, merge the shard states (downsample each to its
    //    exact weight share, union with stochastic rounding), realize.
    let sample = engine.sample();
    let merged = engine.snapshot_merged();
    println!(
        "merged sample: {} items (bound 1000), W = {:.1}, C = {:.1}",
        sample.len(),
        merged.total_weight(),
        merged.sample_weight()
    );
    assert!(sample.len() <= 1000);

    // 5. Per-shard ingest accounting: the stream split is near-even and
    //    the busy time is what the scaling bench aggregates.
    for (i, s) in engine.shard_stats().iter().enumerate() {
        println!(
            "shard {i}: {} items in {} sub-batches, busy {:.2} ms",
            s.items,
            s.batches,
            s.busy_ns as f64 / 1e6
        );
    }
}
