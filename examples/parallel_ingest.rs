// Parallel ingest: shard a temporally-biased sample across worker threads.
//
// ```sh
// cargo run --release --example parallel_ingest
// ```
//
// One core stopped being the bottleneck at ~265M items/s, so the engine
// shards the stream across K persistent worker threads, each running its
// own R-TBS with a jump-ahead RNG substream, and merges the shard states
// *exactly* (the paper's §5 weight algebra) only when a sample is asked
// for. The merged sample is statistically identical to a single-node
// R-TBS over the whole stream — and bit-identical across runs for a fixed
// (seed, shard count). Through the `api` builder, sharding is one knob:
// `.shards(4)`.

use temporal_sampling::api::SamplerConfig;
use temporal_sampling::core::merge::ShardSpec;

fn main() {
    // 1. Single-node-equivalent config: λ = 0.1, hard bound n = 1000,
    //    4 shards. Each shard gets capacity ⌈n/K⌉ plus a skew headroom so
    //    the merge is exact under any batch-size schedule.
    let config = SamplerConfig::rtbs(0.1, 1000).shards(4).seed(42);
    println!(
        "4 shards, per-shard capacity {} (n = 1000 + merge headroom)",
        ShardSpec::rtbs(0.1, 1000, 4).shard_capacity()
    );

    // 2. Build the handle: 4 long-lived shard threads behind bounded
    //    queues, spawned once. An invalid sharding (λ = 0, or a
    //    non-mergeable algorithm) would be a TbsError here, not a panic.
    let mut sampler = config.build::<u64>().expect("valid sharded config");

    // 3. Feed a bursty stream. Each batch is split deterministically
    //    across the shards; empty batches still advance every shard's
    //    decay clock.
    for t in 0..2_000u64 {
        let batch_size = match t % 10 {
            0 => 0,
            5 => 400,
            _ => 100,
        };
        let batch: Vec<u64> = (0..batch_size).map(|i| t * 1_000 + i).collect();
        sampler.observe(batch);
    }

    // 4. Sample: quiesce, merge the shard states (downsample each to its
    //    exact weight share, union with stochastic rounding), realize.
    let sample = sampler.sample();
    println!(
        "merged sample: {} items (bound 1000), expected size C = {:.1}",
        sample.len(),
        sampler.expected_size()
    );
    assert!(sample.len() <= 1000);

    // 5. Durable state: the snapshot captures every shard's sampler and
    //    RNG substream position, so a restored engine continues the
    //    stream bit-identically in a fresh process.
    let blob = sampler.snapshot();
    println!("engine checkpoint: {} bytes", blob.len());
    let mut restored =
        temporal_sampling::api::Sampler::restore(&config, blob).expect("restorable blob");
    sampler.observe((0..100).collect());
    restored.observe((0..100).collect());
    assert_eq!(sampler.sample(), restored.sample());
    println!("restored 4-shard engine continues bit-identically.");
}
