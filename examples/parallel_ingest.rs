// Parallel ingest: shard a temporally-biased sample across worker threads.
//
// ```sh
// cargo run --release --example parallel_ingest
// ```
//
// One core stopped being the bottleneck at ~265M items/s, so the engine
// shards the stream across K persistent worker threads, each running its
// own R-TBS with a jump-ahead RNG substream, and merges the shard states
// *exactly* (the paper's §5 weight algebra) in a log-depth pairwise tree
// only when a sample is asked for. Idle shards steal batch chunks from
// busy ones, and per-shard capacity adapts to ⌈n/K⌉ + 1, so the engine
// scales past 8 shards — this example runs 16. The merged sample is
// statistically identical to a single-node R-TBS over the whole stream —
// and bit-identical across runs for a fixed (seed, shard count). Through
// the `api` builder, sharding is one knob: `.shards(16)` — and epoch
// publication self-paces via a `PublishPolicy`.

use temporal_sampling::api::{PublishPolicy, SamplerConfig};
use temporal_sampling::core::merge::ShardSpec;

fn main() {
    // 1. Single-node-equivalent config: λ = 0.1, hard bound n = 1000,
    //    16 shards. Each shard gets the adaptive capacity ⌈n/K⌉ + 1; the
    //    λ-headroom is amortized across the merge (each shard is
    //    downsampled to its exact weight share C·W_k/W before the union),
    //    so capacity no longer balloons as K grows.
    let spec = ShardSpec::rtbs(0.1, 1000, 16);
    println!(
        "16 shards, per-shard capacity {} (= ⌈1000/16⌉ + 1)",
        spec.shard_capacity()
    );

    // 2. Self-paced serving: publish a frozen epoch snapshot every 250
    //    batches instead of hand-calling `publish()`. `MaxLagBatches`
    //    is the alternative — re-publish only when the served sample
    //    trails ingest by more than S batches, the self-pacing knob for
    //    high-K engines where every barrier costs a 4-level merge tree.
    let config = SamplerConfig::rtbs(0.1, 1000)
        .shards(16)
        .seed(42)
        .publish_policy(PublishPolicy::EveryBatches(250));

    // 3. Build the handle: 16 long-lived shard threads behind bounded
    //    queues, spawned once. An invalid sharding (λ = 0, a zero publish
    //    threshold, or a non-mergeable algorithm) would be a TbsError
    //    here, not a panic.
    let mut sampler = config.build::<u64>().expect("valid sharded config");
    let mut reader = sampler.reader(); // Send + Sync + Clone

    // 4. Feed a bursty stream. Each batch is split near-evenly by the
    //    balanced splitter (deterministic — stealing never changes which
    //    chunk lands in which shard's sample), and every 250th batch
    //    triggers a pipeline to publish a fresh epoch without stalling
    //    ingest.
    for t in 0..2_000u64 {
        let batch_size = match t % 10 {
            0 => 0,
            5 => 400,
            _ => 100,
        };
        let batch: Vec<u64> = (0..batch_size).map(|i| t * 1_000 + i).collect();
        sampler.observe(batch).expect("pipeline healthy");
    }

    // 5. Readers ride the policy: epochs appeared while we ingested, no
    //    manual publish() anywhere. The last barrier may still be in
    //    flight through the merge tree, so wait for it with a deadline
    //    instead of polling `latest()` — a dead publisher or a hung
    //    merge returns a typed verdict here rather than hanging.
    let frozen = reader
        .wait_for_epoch_timeout(2_000 / 250, std::time::Duration::from_secs(10))
        .published()
        .expect("EveryBatches(250) under-fired");
    println!(
        "policy published epoch {} ({} items) during ingest",
        frozen.epoch(),
        frozen.len()
    );

    // 6. Sample on demand still works: quiesce, fold the 16 shard states
    //    through the pairwise merge tree on the shard threads, realize.
    let sample = sampler.sample().expect("merge succeeds");
    println!(
        "merged sample: {} items (bound 1000), expected size C = {:.1}",
        sample.len(),
        sampler.expected_size().expect("engine healthy")
    );
    assert!(sample.len() <= 1000);

    // 7. Durable state: the snapshot captures every shard's sampler, RNG
    //    substream position, and the splitter's deviation ledger, so a
    //    restored engine continues the stream bit-identically in a fresh
    //    process.
    let blob = sampler.snapshot().expect("serializable state");
    println!("engine checkpoint: {} bytes", blob.len());
    let mut restored =
        temporal_sampling::api::Sampler::restore(&config, blob).expect("restorable blob");
    sampler
        .observe((0..100).collect())
        .expect("pipeline healthy");
    restored
        .observe((0..100).collect())
        .expect("pipeline healthy");
    assert_eq!(sampler.sample().unwrap(), restored.sample().unwrap());
    println!("restored 16-shard engine continues bit-identically.");
}
