// Network serving: an R-TBS engine behind the framed-TCP wire.
//
// A `tbs-server` instance serves `[x, y]` points with a line-fit model;
// a producer client streams a drifting linear signal while a consumer
// client long-polls epochs, pulls samples, and queries predictions —
// the EDBT 2018 serve-while-ingesting story, now across a socket.
//
// Run with `cargo run --example network_serving`.

use std::net::TcpListener;
use std::time::Duration;

use tbs_server::client::BlockingClient;
use tbs_server::proto::EpochOutcome;
use tbs_server::server::serve_on;
use tbs_server::service::{LineFit, SamplerService};
use temporal_sampling::api::{RetrainPolicy, SamplerConfig};

fn main() {
    // --- Server: R-TBS(λ=0.07, capacity 400) + least-squares line. ---
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let config = SamplerConfig::rtbs(0.07, 400).seed(7);
    let service: SamplerService<[f64; 2], LineFit> =
        SamplerService::new(config, LineFit::new(), RetrainPolicy::EveryBatch)
            .expect("valid config");
    let server = serve_on(listener, service, None).expect("serve");
    println!("serving on {}", server.addr());

    // --- Producer: the signal drifts from y = 1x to y = 3x. ---
    let addr = server.addr();
    let producer = std::thread::spawn(move || {
        let mut client: BlockingClient<[f64; 2]> =
            BlockingClient::connect(addr).expect("producer connects");
        for t in 0..30u32 {
            let slope = 1.0 + 2.0 * f64::from(t) / 29.0;
            let batch: Vec<[f64; 2]> = (0..200)
                .map(|i| {
                    let x = f64::from(i) / 10.0;
                    [x, slope * x]
                })
                .collect();
            let (batches, epoch) = client.ingest(batch).expect("ingest");
            if t % 10 == 9 {
                println!("producer: batch {batches} published as epoch {epoch}");
            }
        }
    });

    // --- Consumer: follow epochs, sample, and query the model. ---
    let mut consumer: BlockingClient<[f64; 2]> =
        BlockingClient::connect(server.addr()).expect("consumer connects");
    let mut next_epoch = 1;
    let mut last_seen = 0;
    while last_seen < 30 {
        let (outcome, epoch, batches) = consumer
            .subscribe_epoch(next_epoch, Some(Duration::from_secs(10)))
            .expect("subscribe");
        assert_eq!(outcome, EpochOutcome::Published, "producer died?");
        last_seen = batches;
        // Skip ahead: follow the newest publication, not every one.
        next_epoch = epoch + 1;
    }
    producer.join().expect("producer thread");

    let (epoch, batches, items) = consumer.get_sample().expect("sample");
    println!(
        "consumer: epoch {epoch} reflects {batches} batches, sample holds {} points",
        items.len()
    );
    assert_eq!(batches, 30);
    assert!(!items.is_empty() && items.len() <= 400);

    // Retrain on the final (recency-biased) sample: the fitted slope
    // should sit near the *late* regime, not the stream average.
    consumer.retrain().expect("retrain");
    let y = consumer.predict(10.0).expect("predict");
    println!("consumer: model predicts f(10) = {y:.2} (late regime is 30.0)");
    assert!(
        y > 20.0,
        "temporal bias should pull the fit toward the recent slope, got {y}"
    );

    // Move the engine: pull a checkpoint over the wire, push it into a
    // fresh server, and verify the replica answers identically.
    let blob = consumer.checkpoint_pull().expect("pull");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind replica");
    let replica_svc: SamplerService<[f64; 2], LineFit> = SamplerService::new(
        SamplerConfig::rtbs(0.07, 400).seed(7),
        LineFit::new(),
        RetrainPolicy::EveryBatch,
    )
    .expect("valid config");
    let replica = serve_on(listener, replica_svc, None).expect("serve replica");
    let mut rc: BlockingClient<[f64; 2]> =
        BlockingClient::connect(replica.addr()).expect("replica client");
    rc.checkpoint_push(blob).expect("push");
    let (r_epoch, r_batches, r_items) = rc.get_sample().expect("replica sample");
    assert_eq!(r_batches, batches, "replica reflects the full stream");
    assert!(!r_items.is_empty() && r_items.len() <= 400);
    println!(
        "replica on {} restored epoch {r_epoch} with {} points over the wire",
        replica.addr(),
        r_items.len()
    );

    // Clean shutdown through the protocol.
    consumer.shutdown_server().expect("shutdown");
    server.wait().expect("server exits");
    replica.join().expect("replica exits");
    println!("servers drained; done");
}
