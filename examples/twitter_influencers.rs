// Influencer tracking (the §1 Twitter example, after Xie et al.).
//
// ```sh
// cargo run --release --example twitter_influencers
// ```
//
// "A prolific tweeter might temporarily stop tweeting due to travel,
// illness, or some other reason, and hence be completely forgotten in a
// sliding-window approach." We stream (author, tweet) pairs where one top
// influencer goes quiet for a stretch; an analytics job estimates each
// author's activity share from the maintained sample. The sliding window
// drops the influencer to zero; the time-biased sample keeps a decayed
// memory and recovers instantly when they return.

use rand::Rng;
use rand::SeedableRng;
use temporal_sampling::prelude::*;

const INFLUENCER: u32 = 0;
const CASUALS: u32 = 200;

fn batch_for_round(t: u64, rng: &mut Xoshiro256PlusPlus) -> Vec<u32> {
    let mut tweets = Vec::new();
    // The influencer normally posts 30 tweets/round, but goes dark on
    // rounds 40..60 (travel).
    if !(40..60).contains(&t) {
        tweets.extend(std::iter::repeat_n(INFLUENCER, 30));
    }
    // 200 casual accounts post ~1 tweet each with probability 0.5.
    for author in 1..=CASUALS {
        if rng.gen::<f64>() < 0.5 {
            tweets.push(author);
        }
    }
    tweets
}

/// Influencer's share of the sample, in percent.
fn share_of_influencer(sample: &[u32]) -> f64 {
    if sample.is_empty() {
        return 0.0;
    }
    100.0 * sample.iter().filter(|&&a| a == INFLUENCER).count() as f64 / sample.len() as f64
}

fn main() {
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(99);
    let n = 400;
    // Both contenders through the unified builder API: same capacity, the
    // handles own their RNGs. Note: (u32) tweets aren't `Wire`-encodable
    // — the builder works for any Clone + Send item type; only
    // snapshot/restore needs `Wire`.
    let mut rtbs = SamplerConfig::rtbs(0.05, n)
        .seed(1)
        .build::<u32>()
        .expect("valid R-TBS config");
    let mut window = SamplerConfig::sliding_count(n)
        .seed(2)
        .build::<u32>()
        .expect("valid SW config");

    println!(
        "{:>5} {:>12} {:>12}   (influencer dark on rounds 40..60)",
        "round", "R-TBS share", "SW share"
    );
    let mut sw_zero_rounds = 0;
    let mut rtbs_zero_rounds = 0;
    for t in 0..80u64 {
        let batch = batch_for_round(t, &mut rng);
        rtbs.observe(batch.clone()).expect("single-node ingest");
        window.observe(batch).expect("single-node ingest");
        let r_share = share_of_influencer(&rtbs.sample().unwrap());
        let w_share = share_of_influencer(&window.sample().unwrap());
        if (40..60).contains(&t) {
            if w_share == 0.0 {
                sw_zero_rounds += 1;
            }
            if r_share == 0.0 {
                rtbs_zero_rounds += 1;
            }
        }
        if t % 5 == 0 || t == 40 || t == 59 {
            println!("{t:>5} {r_share:>11.1}% {w_share:>11.1}%");
        }
    }
    println!(
        "\nrounds (of 20 dark ones) where the influencer vanished from the sample: \
         SW = {sw_zero_rounds}, R-TBS = {rtbs_zero_rounds}"
    );
    println!(
        "the time-biased sample keeps a decaying trace of the influencer, so \
         downstream analytics never lose the entity."
    );
}
