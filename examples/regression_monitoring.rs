// Online regression monitoring with an *unsaturated* reservoir (§6.3).
//
// ```sh
// cargo run --release --example regression_monitoring
// ```
//
// A pricing model `y = b1·x1 + b2·x2 + ε` drifts periodically between two
// regimes. With capacity n = 1600 above the equilibrium stream weight,
// R-TBS's sample floats at b/(1 − e^{−λ}) ≈ 1479 items — *smaller* than
// the sliding window's 1600 — yet predicts better: a balanced mix of old
// and new beats sheer volume.

use rand::SeedableRng;
use temporal_sampling::core::theory::equilibrium_weight;
use temporal_sampling::datagen::modes::ModeSchedule;
use temporal_sampling::datagen::regression::{RegressionGenerator, RegressionPoint};
use temporal_sampling::datagen::stream::StreamPlan;
use temporal_sampling::datagen::BatchSizeProcess;
use temporal_sampling::ml::LinearRegression;
use temporal_sampling::prelude::*;

fn main() {
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(31);
    let generator = RegressionGenerator::paper();
    let n = 1600;
    let lambda = 0.07;

    let plan = StreamPlan {
        warmup_batches: 100,
        measured_batches: 50,
        batch_sizes: BatchSizeProcess::Deterministic(100),
        schedule: ModeSchedule::periodic(10, 10),
    };

    let manager =
        |config: SamplerConfig, seed: u64| -> ModelManager<RegressionPoint, LinearRegression> {
            let sampler = config.seed(seed).build().expect("valid config");
            ModelManager::new(
                sampler,
                LinearRegression::new(true),
                RetrainPolicy::EveryBatch,
            )
        };
    let mut contenders = [
        ("R-TBS", manager(SamplerConfig::rtbs(lambda, n), 41)),
        ("SW", manager(SamplerConfig::sliding_count(n), 42)),
        ("Unif", manager(SamplerConfig::uniform(n), 43)),
    ];

    // Same stream for every manager; record measured-phase errors and
    // training-sample sizes.
    let mut errors: Vec<Vec<f64>> = vec![Vec::new(); contenders.len()];
    let mut sizes: Vec<Vec<f64>> = vec![Vec::new(); contenders.len()];
    for planned in plan.layout(&mut rng) {
        let batch = generator.sample_batch(planned.mode, planned.size as usize, &mut rng);
        for (i, (_, mgr)) in contenders.iter_mut().enumerate() {
            let report = mgr.ingest(batch.clone()).expect("ingest pipeline healthy");
            if planned.measured_time.is_some() {
                errors[i].push(report.batch_error);
                sizes[i].push(report.sample_size as f64);
            }
        }
    }

    println!("per-batch MSE (mode flips every 10 batches):");
    println!("{:>4} {:>8} {:>8} {:>8}", "t", "R-TBS", "SW", "Unif");
    for t in (0..errors[0].len()).step_by(5) {
        println!(
            "{t:>4} {:>8.2} {:>8.2} {:>8.2}",
            errors[0][t], errors[1][t], errors[2][t]
        );
    }

    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!(
        "\naggregate MSE: R-TBS {:.2}, SW {:.2}, Unif {:.2}",
        mean(&errors[0]),
        mean(&errors[1]),
        mean(&errors[2])
    );
    println!(
        "R-TBS mean sample size {:.0} (predicted unsaturated equilibrium {:.0}) vs SW/Unif at {n}",
        mean(&sizes[0]),
        equilibrium_weight(100.0, lambda),
    );
    println!(
        "smaller, time-balanced sample → better predictions: 'more data is not always better'."
    );
}
