// Online regression monitoring with an *unsaturated* reservoir (§6.3).
//
// ```sh
// cargo run --release --example regression_monitoring
// ```
//
// A pricing model `y = b1·x1 + b2·x2 + ε` drifts periodically between two
// regimes. With capacity n = 1600 above the equilibrium stream weight,
// R-TBS's sample floats at b/(1 − e^{−λ}) ≈ 1479 items — *smaller* than
// the sliding window's 1600 — yet predicts better: a balanced mix of old
// and new beats sheer volume.

use rand::SeedableRng;
use temporal_sampling::core::theory::equilibrium_weight;
use temporal_sampling::datagen::modes::ModeSchedule;
use temporal_sampling::datagen::regression::RegressionGenerator;
use temporal_sampling::datagen::stream::StreamPlan;
use temporal_sampling::datagen::BatchSizeProcess;
use temporal_sampling::ml::pipeline::{run_stream, Contender};
use temporal_sampling::ml::LinearRegression;
use temporal_sampling::prelude::*;

fn main() {
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(31);
    let generator = RegressionGenerator::paper();
    let n = 1600;
    let lambda = 0.07;

    let plan = StreamPlan {
        warmup_batches: 100,
        measured_batches: 50,
        batch_sizes: BatchSizeProcess::Deterministic(100),
        schedule: ModeSchedule::periodic(10, 10),
    };

    let mut contenders: Vec<Contender<_>> = vec![
        Contender::new(
            "R-TBS",
            Box::new(RTbs::new(lambda, n)),
            Box::new(LinearRegression::new(true)),
        ),
        Contender::new(
            "SW",
            Box::new(CountWindow::new(n)),
            Box::new(LinearRegression::new(true)),
        ),
        Contender::new(
            "Unif",
            Box::new(BatchedReservoir::new(n)),
            Box::new(LinearRegression::new(true)),
        ),
    ];

    let outputs = run_stream(
        &plan,
        |mode, size, rng| generator.sample_batch(mode, size, rng),
        &mut contenders,
        &mut rng,
    );

    println!("per-batch MSE (mode flips every 10 batches):");
    println!("{:>4} {:>8} {:>8} {:>8}", "t", "R-TBS", "SW", "Unif");
    for t in (0..outputs[0].errors.len()).step_by(5) {
        println!(
            "{t:>4} {:>8.2} {:>8.2} {:>8.2}",
            outputs[0].errors[t], outputs[1].errors[t], outputs[2].errors[t]
        );
    }

    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!(
        "\naggregate MSE: R-TBS {:.2}, SW {:.2}, Unif {:.2}",
        mean(&outputs[0].errors),
        mean(&outputs[1].errors),
        mean(&outputs[2].errors)
    );
    println!(
        "R-TBS mean sample size {:.0} (predicted unsaturated equilibrium {:.0}) vs SW/Unif at {n}",
        mean(&outputs[0].sample_sizes),
        equilibrium_weight(100.0, lambda),
    );
    println!(
        "smaller, time-balanced sample → better predictions: 'more data is not always better'."
    );
}
