// Drive the simulated cluster: D-R-TBS under all four §5 strategies plus
// embarrassingly-parallel D-T-TBS, with per-batch cost breakdowns.
//
// ```sh
// cargo run --release --example distributed_cluster
// ```

use rand::SeedableRng;
use temporal_sampling::distributed::{DRTbs, DTTbs, DrtbsConfig, DttbsConfig, Strategy};
use temporal_sampling::prelude::*;

fn main() {
    let batch = 50_000usize;
    let capacity = 100_000usize;
    let workers = 8usize;
    let rounds = 5;

    println!(
        "simulated cluster: {workers} workers, batch {batch}, reservoir {capacity}, lambda 0.07\n"
    );
    println!(
        "{:<24} {:>10} {:>10} {:>10} {:>10} {:>12}",
        "implementation", "ms/batch", "net ms", "master ms", "worker ms", "bytes/batch"
    );

    for strategy in Strategy::all() {
        let mut cfg = DrtbsConfig::new(0.07, capacity, workers, strategy);
        cfg.threaded = true; // real crossbeam worker threads
        let mut d: DRTbs<u64> = DRTbs::new(cfg, 7);
        d.observe_batch((0..(2 * capacity as u64)).collect())
            .unwrap(); // saturate
        let mut total = temporal_sampling::distributed::CostTracker::new();
        for r in 0..rounds {
            let base = (r * batch) as u64;
            total.merge(
                &d.observe_batch((base..base + batch as u64).collect())
                    .unwrap(),
            );
        }
        let s = 1e3 / rounds as f64;
        println!(
            "{:<24} {:>10.2} {:>10.2} {:>10.2} {:>10.2} {:>12}",
            strategy.label(),
            total.elapsed * s,
            total.network_time * s,
            total.master_time * s,
            total.worker_time * s,
            total.bytes_shipped / rounds as u64,
        );
    }

    let tcfg = DttbsConfig::new(0.07, capacity, batch as f64, workers);
    let mut t: DTTbs<u64> = DTTbs::new(tcfg, 7);
    t.observe_batch((0..(2 * capacity as u64)).collect());
    let mut total = temporal_sampling::distributed::CostTracker::new();
    for r in 0..rounds {
        let base = (r * batch) as u64;
        total.merge(&t.observe_batch((base..base + batch as u64).collect()));
    }
    let s = 1e3 / rounds as f64;
    println!(
        "{:<24} {:>10.2} {:>10.2} {:>10.2} {:>10.2} {:>12}",
        "D-T-TBS (Dist,CP)",
        total.elapsed * s,
        total.network_time * s,
        total.master_time * s,
        total.worker_time * s,
        total.bytes_shipped / rounds as u64,
    );

    // Sanity: the distributed sample obeys the same bound and weight law.
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
    let cfg = DrtbsConfig::new(0.07, capacity, workers, Strategy::DistCoPartitioned);
    let mut d: DRTbs<u64> = DRTbs::new(cfg, 11);
    for r in 0..10u64 {
        d.observe_batch((r * 1000..r * 1000 + 900).collect())
            .unwrap();
    }
    println!(
        "\nD-R-TBS(Dist,CP) after 10 small batches: C = {:.1}, W = {:.1}, |sample| = {}",
        d.sample_weight(),
        d.total_weight(),
        d.realize_sample(&mut rng).unwrap().len()
    );
}
