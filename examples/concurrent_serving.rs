// Concurrent serving: reader threads consume epoch-published snapshots
// while the sharded pipeline keeps ingesting, and a ModelManager retrains
// without ever stalling the stream.
//
// ```sh
// cargo run --release --example concurrent_serving
// ```
//
// Before the serving layer, reading a sample meant `&mut` access and a
// stop-the-world quiesce of every shard — one retrain halted ingest, and
// concurrent consumers were impossible. Now `Sampler::publish()` injects
// a barrier, shards fork their state and keep running, a background
// merger folds the forks with the exact §5 weight algebra, and the result
// lands in an epoch cell as an immutable `Arc<FrozenSample>`. Clonable
// `SampleReader` handles (`Send + Sync`) poll it from any thread; the
// published sample is bit-identical to what the synchronous exact path
// would have returned at the same point.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use temporal_sampling::api::{ModelManager, RetrainPolicy, SamplerConfig};
use temporal_sampling::datagen::gmm::LabeledPoint;
use temporal_sampling::ml::knn::KnnClassifier;

fn main() {
    // 1. A 2-shard R-TBS through the builder; `reader()` hands out as
    //    many concurrent read handles as we like.
    let config = SamplerConfig::rtbs(0.05, 500).shards(2).seed(2018);
    let mut sampler = config.build::<u64>().expect("valid sharded config");

    // 2. Two reader threads poll `latest()` while ingest runs. The poll
    //    is non-blocking — an atomic epoch check, then an Arc clone only
    //    when a new epoch actually landed.
    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..2)
        .map(|id| {
            let mut reader = sampler.reader();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let (mut seen, mut fresh_pulls) = (0u64, 0u64);
                while !stop.load(Ordering::Acquire) {
                    if let Some(frozen) = reader.latest() {
                        if frozen.epoch() > seen {
                            seen = frozen.epoch();
                            fresh_pulls += 1;
                            assert!(frozen.len() <= 500);
                        }
                    }
                    std::thread::yield_now();
                }
                (id, seen, fresh_pulls)
            })
        })
        .collect();

    // 3. Ingest 1000 batches, publishing a snapshot every 50 — the
    //    publish call only enqueues a barrier and returns; shards never
    //    stop.
    let mut last_epoch = 0;
    for t in 0..1_000u64 {
        sampler
            .observe((0..150).map(|i| t * 1_000 + i).collect())
            .expect("pipeline healthy");
        if t % 50 == 49 {
            last_epoch = sampler.publish().expect("pipeline healthy");
        }
    }
    let frozen = sampler
        .reader()
        .wait_for_epoch(last_epoch)
        .expect("merger alive");
    println!(
        "published epoch {} after {} batches: {} items, W = {:.1}, C = {:.1}",
        frozen.epoch(),
        frozen.batches_observed(),
        frozen.len(),
        frozen.total_weight().expect("R-TBS tracks W"),
        frozen.expected_size(),
    );

    stop.store(true, Ordering::Release);
    for handle in readers {
        let (id, seen, fresh_pulls) = handle.join().expect("reader panicked");
        println!("reader {id}: reached epoch {seen} via {fresh_pulls} fresh pulls");
    }

    // 4. The ModelManager closes the §6 loop the same way: when the
    //    retrain policy fires it *publishes* an epoch and fits on the
    //    frozen snapshot — the sharded pipeline keeps ingesting through
    //    every refit, and any reader can watch exactly what the model
    //    was trained on.
    let sampler = SamplerConfig::rtbs(0.05, 300)
        .shards(2)
        .seed(7)
        .build::<LabeledPoint>()
        .expect("valid config");
    let mut mgr = ModelManager::new(sampler, KnnClassifier::new(5), RetrainPolicy::Periodic(25));
    let mut follower = mgr.reader();
    for t in 0..200u64 {
        let batch: Vec<LabeledPoint> = (0..40)
            .map(|i| {
                let x = ((t + i) as f64 * 0.37).sin();
                let y = ((t + i) as f64 * 0.11).cos();
                LabeledPoint {
                    x,
                    y,
                    label: u16::from(x > y),
                }
            })
            .collect();
        mgr.ingest(batch).expect("pipeline healthy");
    }
    let trained_on = follower.latest().expect("manager published snapshots");
    println!(
        "manager: {} retrains, last on epoch {} ({} items); follower sees epoch {}",
        mgr.retrain_count(),
        mgr.metrics().last_sample_epoch,
        mgr.metrics().last_sample_size,
        trained_on.epoch(),
    );
    assert_eq!(mgr.metrics().last_sample_epoch, trained_on.epoch());
    assert_eq!(mgr.retrain_count(), 8);
}
