//! Cross-crate integration: the distributed samplers are statistically
//! equivalent to their single-node counterparts, and the simulated-cluster
//! costs reproduce the paper's Figure-7/8/9 shapes.

use rand::SeedableRng;
use temporal_sampling::core::verify::{max_ratio_violation, measure_inclusion};
use temporal_sampling::distributed::{CostModel, DRTbs, DTTbs, DrtbsConfig, DttbsConfig, Strategy};
use temporal_sampling::prelude::*;

#[test]
fn drtbs_weight_trajectory_matches_rtbs_for_every_strategy() {
    let schedule = [40u64, 40, 0, 0, 150, 0, 10, 10, 10, 0, 0, 0, 0, 80, 5];
    for strategy in Strategy::all() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        let mut single: RTbs<u64> = RTbs::new(0.15, 80);
        let mut dist: DRTbs<u64> = DRTbs::new(DrtbsConfig::new(0.15, 80, 5, strategy), 2);
        for (t, &b) in schedule.iter().enumerate() {
            let batch: Vec<u64> = (0..b).map(|i| t as u64 * 1000 + i).collect();
            single.observe(batch.clone(), &mut rng);
            dist.observe_batch(batch).unwrap();
            assert!(
                (single.sample_weight() - dist.sample_weight()).abs() < 1e-9,
                "{strategy:?} diverged at t={t}"
            );
        }
    }
}

#[test]
fn drtbs_satisfies_relative_inclusion_property() {
    // Equation (1) holds for the distributed sampler end to end, measured
    // through the generic verification harness.
    let lambda = 0.35;
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
    let schedule = [5u64, 5, 5, 5, 5];
    let mut seed = 0u64;
    let stats = measure_inclusion(
        || {
            seed += 1;
            DRTbs::new(
                DrtbsConfig::new(lambda, 7, 3, Strategy::DistCoPartitioned),
                seed,
            )
        },
        &schedule,
        25_000,
        &mut rng,
    );
    let v = max_ratio_violation(&stats, lambda, 0.02);
    assert!(v < 0.06, "D-R-TBS ratio violation {v}");
}

#[test]
fn dttbs_matches_single_node_equilibrium() {
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(4);
    let mut single: TTbs<u64> = TTbs::new(0.1, 500, 100.0);
    let mut dist: DTTbs<u64> = DTTbs::new(DttbsConfig::new(0.1, 500, 100.0, 4), 5);
    for t in 0..400u64 {
        let batch: Vec<u64> = (0..100).map(|i| t * 100 + i).collect();
        single.observe(batch.clone(), &mut rng);
        dist.observe_batch(batch);
    }
    let mut s_acc = 0.0;
    let mut d_acc = 0.0;
    let rounds = 300;
    for t in 0..rounds {
        let batch: Vec<u64> = (0..100).map(|i| t * 100 + i).collect();
        single.observe(batch.clone(), &mut rng);
        dist.observe_batch(batch);
        s_acc += single.len() as f64;
        d_acc += dist.len() as f64;
    }
    let s_mean = s_acc / rounds as f64;
    let d_mean = d_acc / rounds as f64;
    assert!(
        (s_mean - d_mean).abs() < 0.06 * s_mean,
        "single {s_mean:.0} vs distributed {d_mean:.0}"
    );
}

#[test]
fn figure7_shape_cost_ordering_and_ratios() {
    // RJ > CJ > CP > Dist > D-T-TBS, with meaningful gaps (≥ 15%).
    let (batch, capacity, workers) = (100_000usize, 200_000usize, 8usize);
    let mut elapsed: Vec<(String, f64)> = Vec::new();
    for strategy in Strategy::all() {
        let mut d: DRTbs<u64> = DRTbs::new(DrtbsConfig::new(0.07, capacity, workers, strategy), 6);
        d.observe_batch((0..(2 * capacity as u64)).collect())
            .unwrap();
        let mut total = 0.0;
        for r in 0..3u64 {
            total += d
                .observe_batch((r * batch as u64..(r + 1) * batch as u64).collect())
                .unwrap()
                .elapsed;
        }
        elapsed.push((strategy.label().to_string(), total / 3.0));
    }
    let mut t: DTTbs<u64> = DTTbs::new(DttbsConfig::new(0.07, capacity, batch as f64, workers), 7);
    t.observe_batch((0..(2 * capacity as u64)).collect());
    let mut total = 0.0;
    for r in 0..3u64 {
        total += t
            .observe_batch((r * batch as u64..(r + 1) * batch as u64).collect())
            .elapsed;
    }
    elapsed.push(("D-T-TBS".to_string(), total / 3.0));

    for pair in elapsed.windows(2) {
        assert!(
            pair[0].1 > pair[1].1 * 1.15,
            "{} ({:.4}s) should be ≥15% slower than {} ({:.4}s)",
            pair[0].0,
            pair[0].1,
            pair[1].0,
            pair[1].1
        );
    }
}

#[test]
fn figure8_shape_scale_out_diminishing_returns() {
    // More workers help, with diminishing returns (Figure 8's curve).
    let batch = 400_000usize;
    let time_for = |workers: usize| {
        let mut d: DRTbs<u64> = DRTbs::new(
            DrtbsConfig::new(0.07, batch * 2, workers, Strategy::DistCoPartitioned),
            8,
        );
        d.observe_batch((0..(4 * batch as u64)).collect()).unwrap();
        d.observe_batch((0..batch as u64).collect())
            .unwrap()
            .elapsed
    };
    let t1 = time_for(1);
    let t4 = time_for(4);
    let t16 = time_for(16);
    assert!(t1 > t4, "4 workers ({t4:.4}) should beat 1 ({t1:.4})");
    assert!(t4 > t16 * 0.99, "16 workers should not be slower than 4");
    // Diminishing returns: 1→4 gains more than 4→16.
    assert!(
        t1 - t4 > (t4 - t16) * 1.5,
        "speedup should flatten: 1→4 gained {:.4}, 4→16 gained {:.4}",
        t1 - t4,
        t4 - t16
    );
}

#[test]
fn figure9_shape_scale_up_flat_then_linear() {
    // Near-flat for small batches (overhead-dominated), then growing
    // roughly linearly once per-item work dominates (Figure 9).
    let time_for = |batch: usize| {
        let mut d: DRTbs<u64> = DRTbs::new(
            DrtbsConfig::new(0.07, 200_000, 10, Strategy::DistCoPartitioned),
            9,
        );
        d.observe_batch((0..400_000u64).collect()).unwrap();
        d.observe_batch((0..batch as u64).collect())
            .unwrap()
            .elapsed
    };
    let t1k = time_for(1_000);
    let t10k = time_for(10_000);
    let t1m = time_for(1_000_000);
    let t8m = time_for(8_000_000);
    assert!(
        t10k < t1k * 1.5,
        "small batches overhead-dominated: {t1k:.4} vs {t10k:.4}"
    );
    assert!(
        t8m > t1m * 2.0,
        "large batches should scale with size: {t1m:.4} vs {t8m:.4}"
    );
}

/// A fatter item (256-byte payload) that makes data-shipping costs visible:
/// realistic training records are feature vectors, not bare u64s.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Record([u64; 32]);

impl temporal_sampling::distributed::Wire for Record {
    fn encode(&self) -> bytes::Bytes {
        let mut buf = Vec::with_capacity(256);
        for v in self.0 {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        bytes::Bytes::from(buf)
    }
    fn try_decode(data: &[u8]) -> Option<Self> {
        if data.len() < 256 {
            return None;
        }
        let mut out = [0u64; 32];
        for (i, chunk) in data.chunks_exact(8).take(32).enumerate() {
            out[i] = u64::from_le_bytes(chunk.try_into().ok()?);
        }
        Some(Record(out))
    }
    fn wire_size(&self) -> usize {
        256
    }
}

#[test]
fn kv_store_pays_for_item_shipping_and_locking() {
    // The §5.2 criticism quantified: with realistic record sizes, per-batch
    // KV bytes dwarf CP bytes (which ships only 16-byte slot locations).
    let cfgs = [Strategy::CentKvCoLocatedJoin, Strategy::CentCoPartitioned];
    let mut bytes = Vec::new();
    for strategy in cfgs {
        let mut cfg = DrtbsConfig::new(0.07, 20_000, 4, strategy);
        cfg.cost_model = CostModel::default();
        let mut d: DRTbs<Record> = DRTbs::new(cfg, 10);
        let mk = |n: usize| (0..n).map(|i| Record([i as u64; 32])).collect::<Vec<_>>();
        d.observe_batch(mk(40_000)).unwrap();
        let c = d.observe_batch(mk(10_000)).unwrap();
        bytes.push(c.bytes_shipped);
    }
    assert!(
        bytes[0] > 5 * bytes[1],
        "KV bytes {} should dwarf CP bytes {}",
        bytes[0],
        bytes[1]
    );
}

#[test]
fn threaded_and_sequential_drtbs_agree() {
    let schedule = [100u64, 0, 300, 50, 0, 0, 200];
    let mut seq_cfg = DrtbsConfig::new(0.1, 150, 4, Strategy::DistCoPartitioned);
    let mut par_cfg = seq_cfg;
    seq_cfg.threaded = false;
    par_cfg.threaded = true;
    let mut seq: DRTbs<u64> = DRTbs::new(seq_cfg, 11);
    let mut par: DRTbs<u64> = DRTbs::new(par_cfg, 11);
    for (t, &b) in schedule.iter().enumerate() {
        let batch: Vec<u64> = (0..b).map(|i| t as u64 * 1000 + i).collect();
        seq.observe_batch(batch.clone()).unwrap();
        par.observe_batch(batch).unwrap();
        assert_eq!(seq.stored_full_items(), par.stored_full_items());
        assert!((seq.sample_weight() - par.sample_weight()).abs() < 1e-12);
    }
}
