//! Concurrency guarantees of the serving layer, at the public API level:
//! static `Send`/`Sync` assertions for the handles, and a multi-threaded
//! stress test — N reader threads polling `latest()` while the sharded
//! engine ingests — asserting readers never observe a torn or partial
//! sample and ingest keeps making progress (no deadlock under
//! snapshot-while-saturated).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use temporal_sampling::api::{
    FrozenSample, ModelManager, RetrainPolicy, SampleReader, Sampler, SamplerConfig,
};
use temporal_sampling::datagen::gmm::LabeledPoint;
use temporal_sampling::ml::knn::KnnClassifier;

/// Compile-time thread-safety contract of the serving layer. If any of
/// these bounds regress, this module stops compiling.
#[allow(dead_code)]
mod static_assertions {
    use super::*;

    fn assert_send<T: Send>() {}
    fn assert_sync<T: Sync>() {}
    fn assert_clone<T: Clone>() {}
    fn assert_static<T: 'static>() {}

    fn sample_reader_is_fully_shareable() {
        assert_send::<SampleReader<u64>>();
        assert_sync::<SampleReader<u64>>();
        assert_clone::<SampleReader<u64>>();
        assert_static::<SampleReader<u64>>();
        assert_send::<SampleReader<LabeledPoint>>();
        assert_sync::<SampleReader<LabeledPoint>>();
    }

    fn frozen_samples_are_shareable() {
        assert_send::<Arc<FrozenSample<u64>>>();
        assert_sync::<Arc<FrozenSample<u64>>>();
    }

    fn sampler_handles_move_across_threads() {
        // The sampler itself is `Send` (movable into an ingest thread);
        // concurrent *access* goes through reader handles instead.
        assert_send::<Sampler<u64>>();
        assert_sync::<Sampler<u64>>();
        assert_send::<Sampler<LabeledPoint>>();
    }
}

#[test]
fn readers_poll_consistent_snapshots_while_sharded_ingest_runs() {
    const CAPACITY: usize = 200;
    let mut sampler = SamplerConfig::rtbs(0.1, CAPACITY)
        .shards(4)
        .seed(99)
        .build::<u64>()
        .expect("valid config");

    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..4)
        .map(|_| {
            let mut reader = sampler.reader();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut last_epoch = 0u64;
                let mut observations = 0u64;
                while !stop.load(Ordering::Acquire) {
                    if let Some(frozen) = reader.latest() {
                        // Consistency: epochs never go backwards, the
                        // capacity bound holds, the metadata is coherent,
                        // and every item belongs to the ingested domain —
                        // a torn publication would violate one of these.
                        assert!(frozen.epoch() >= last_epoch, "epoch went backwards");
                        assert!(frozen.len() <= CAPACITY);
                        assert!(frozen.expected_size() <= CAPACITY as f64 + 1e-9);
                        let w = frozen.total_weight().expect("R-TBS tracks W");
                        assert!(w.is_finite() && w >= 0.0);
                        assert!(frozen.items().iter().all(|&x| x < 10_000_000));
                        if frozen.epoch() != last_epoch {
                            last_epoch = frozen.epoch();
                            observations += 1;
                        }
                    }
                }
                (last_epoch, observations)
            })
        })
        .collect();

    // Saturated ingest with frequent publications — progress through the
    // loop (and through the final wait) proves no reader blocks ingest.
    let mut last_epoch = 0;
    for t in 0..800u64 {
        sampler
            .observe((0..400).map(|i| t * 10_000 + i).collect())
            .unwrap();
        if t % 5 == 0 {
            last_epoch = sampler.publish().unwrap();
        }
    }
    let final_frozen = sampler
        .reader()
        .wait_for_epoch(last_epoch)
        .expect("publication pipeline alive");
    assert!(final_frozen.epoch() >= last_epoch);
    assert_eq!(sampler.published_epoch(), sampler.requested_epoch());

    stop.store(true, Ordering::Release);
    for handle in readers {
        let (seen, observations) = handle.join().expect("reader panicked");
        assert!(seen <= last_epoch);
        assert!(observations > 0, "reader never saw a publication");
    }

    // The sampler still answers the exact synchronous path afterwards.
    assert!(sampler.sample().unwrap().len() <= CAPACITY);
}

#[test]
fn published_snapshot_equals_exact_sample_through_the_facade() {
    // Facade-level bit-identity, sharded and single-node: publish() then
    // an identically-configured sampler's sample() at the same point.
    for shards in [1usize, 4] {
        let config = SamplerConfig::rtbs(0.1, 64).shards(shards).seed(21);
        let mut published = config.build::<u64>().expect("valid");
        let mut exact = config.build::<u64>().expect("valid");
        for t in 0..50u64 {
            let batch: Vec<u64> = (0..90).map(|i| t * 100 + i).collect();
            published.observe(batch.clone()).unwrap();
            exact.observe(batch).unwrap();
        }
        let epoch = published.publish().unwrap();
        let frozen = published.reader().wait_for_epoch(epoch).expect("published");
        assert_eq!(
            frozen.items(),
            &exact.sample().unwrap()[..],
            "shards={shards}: published snapshot diverged from the exact path"
        );
        assert_eq!(frozen.batches_observed(), 50);
    }
}

#[test]
fn every_single_node_algorithm_publishes_through_the_same_api() {
    use temporal_sampling::api::Algorithm;
    for config in [
        SamplerConfig::rtbs(0.1, 50),
        SamplerConfig::ttbs(0.1, 50, 20.0),
        SamplerConfig::btbs(0.1),
        SamplerConfig::uniform(50),
        SamplerConfig::chao(0.1, 50),
        SamplerConfig::sliding_count(50),
        SamplerConfig::sliding_time(5.0),
        SamplerConfig::ares(0.1, 50),
    ] {
        let mut sampler = config.seed(3).build::<u64>().expect("valid config");
        let mut reader = sampler.reader();
        assert!(reader.latest().is_none());
        for t in 0..20u64 {
            sampler
                .observe((0..20).map(|i| t * 20 + i).collect())
                .unwrap();
        }
        let epoch = sampler.publish().unwrap();
        assert_eq!(epoch, 1);
        let frozen = reader.latest().expect("published synchronously");
        assert_eq!(frozen.epoch(), 1);
        assert_eq!(frozen.batches_observed(), 20);
        if config.algorithm() == Algorithm::RTbs {
            assert!(frozen.total_weight().is_some());
        }
        // Reader staleness bookkeeping.
        assert_eq!(reader.cached_epoch(), 1);
        assert_eq!(reader.published_epoch(), 1);
    }
}

#[test]
fn dropping_the_sampler_wakes_blocked_readers() {
    let sampler = SamplerConfig::rtbs(0.1, 20)
        .seed(5)
        .build::<u64>()
        .expect("valid");
    let mut reader = sampler.reader();
    let waiter = std::thread::spawn(move || reader.wait_for_epoch(1));
    std::thread::sleep(std::time::Duration::from_millis(20));
    drop(sampler);
    // The publisher is gone before epoch 1: the waiter must return None
    // rather than hang.
    assert!(waiter.join().expect("waiter panicked").is_none());
}

#[test]
fn reader_clones_share_the_publication_stream() {
    let mut sampler = SamplerConfig::rtbs(0.2, 30)
        .seed(8)
        .build::<u64>()
        .expect("valid");
    sampler.observe((0..100).collect()).unwrap();
    let mut original = sampler.reader();
    assert!(original.latest().is_none());
    sampler.publish().unwrap();
    let mut clone = original.clone();
    // Both handles observe the same epoch, through separate caches.
    assert_eq!(original.latest().unwrap().epoch(), 1);
    assert_eq!(clone.latest().unwrap().epoch(), 1);
    assert!(Arc::ptr_eq(
        &original.latest().unwrap(),
        &clone.latest().unwrap()
    ));
}

#[test]
fn model_manager_retrains_off_snapshots_without_stalling_sharded_ingest() {
    let sampler = SamplerConfig::rtbs(0.05, 150)
        .shards(2)
        .seed(33)
        .build::<LabeledPoint>()
        .expect("valid config");
    let mut mgr = ModelManager::new(sampler, KnnClassifier::new(3), RetrainPolicy::Periodic(4));
    // A follower thread watches the training snapshots concurrently.
    let mut follower = mgr.reader();
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let watcher = std::thread::spawn(move || {
        let mut top_epoch = 0;
        while !stop2.load(Ordering::Acquire) {
            if let Some(frozen) = follower.latest() {
                assert!(frozen.len() <= 150);
                top_epoch = top_epoch.max(frozen.epoch());
            }
        }
        top_epoch
    });

    let make_batch = |t: u64| -> Vec<LabeledPoint> {
        (0..24)
            .map(|i| {
                let x = (t as f64 * 0.1 + i as f64).sin();
                let y = (t as f64 * 0.2 - i as f64).cos();
                LabeledPoint {
                    x,
                    y,
                    label: u16::from(x + y > 0.0),
                }
            })
            .collect()
    };
    for t in 0..40u64 {
        let report = mgr.ingest(make_batch(t)).unwrap();
        if report.retrained {
            assert!(report.sample_size > 0);
        }
    }
    assert_eq!(mgr.metrics().retrains, 10);
    assert_eq!(mgr.metrics().last_sample_epoch, 10);
    assert!(mgr.metrics().last_sample_size > 0);
    // Every retrain published an epoch visible to the follower.
    assert_eq!(mgr.sampler().published_epoch(), 10);
    stop.store(true, Ordering::Release);
    let seen = watcher.join().expect("watcher panicked");
    assert!(seen <= 10);
}
