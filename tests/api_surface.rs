//! API-surface snapshot: the facade crate's public item listing, pinned.
//!
//! Future PRs that add, remove, or rename anything in the public API
//! must regenerate `tests/api_surface.txt` — making every surface change
//! an explicit, reviewable diff instead of an accident. The listing is
//! generated from rustdoc's own item index (`cargo doc` → `all.html`),
//! so it tracks exactly what a user of the crate can see.
//!
//! To bless an intentional change:
//!
//! ```sh
//! UPDATE_API_SURFACE=1 cargo test --test api_surface
//! ```

use std::path::{Path, PathBuf};
use std::process::Command;

/// Item kinds rustdoc encodes in its page filenames.
const KINDS: &[&str] = &[
    "struct", "enum", "trait", "fn", "macro", "constant", "static", "type", "union",
];

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

/// Run `cargo doc` for the facade crate and return the generated
/// `all.html` (rustdoc's complete item index).
fn generate_doc_index(root: &Path) -> String {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    let status = Command::new(cargo)
        .args(["doc", "--no-deps", "-p", "temporal-sampling", "--quiet"])
        .current_dir(root)
        .status()
        .expect("spawn cargo doc");
    assert!(status.success(), "cargo doc failed");
    let all = root.join("target/doc/temporal_sampling/all.html");
    std::fs::read_to_string(&all).unwrap_or_else(|e| panic!("read {}: {e}", all.display()))
}

/// Extract `kind crate::path::Item` lines from rustdoc's `all.html`.
///
/// The page is a flat list of anchors whose hrefs encode the item kind
/// (`api/struct.Sampler.html`) and whose text is the item path
/// (`api::Sampler`) — no HTML parser needed beyond anchor splitting.
fn parse_surface(html: &str) -> Vec<String> {
    let mut items = Vec::new();
    for chunk in html.split("<a href=\"").skip(1) {
        let Some((href, rest)) = chunk.split_once('"') else {
            continue;
        };
        if href.starts_with("http") || href.starts_with('#') || href.starts_with("../") {
            continue;
        }
        let Some(kind) = href
            .rsplit('/')
            .next()
            .and_then(|file| file.split('.').next())
            .filter(|k| KINDS.contains(k))
        else {
            continue;
        };
        let Some(text) = rest
            .split_once('>')
            .and_then(|(_, t)| t.split_once("</a>"))
            .map(|(t, _)| t)
        else {
            continue;
        };
        items.push(format!("{kind} temporal_sampling::{text}"));
    }
    items.sort();
    items.dedup();
    items
}

#[test]
fn public_api_surface_matches_the_committed_snapshot() {
    let root = workspace_root();
    let surface = parse_surface(&generate_doc_index(&root));
    assert!(
        surface.len() > 20,
        "suspiciously small item listing ({} items) — did rustdoc's all.html format change?",
        surface.len()
    );
    let listing = surface.join("\n") + "\n";

    let snapshot_path = root.join("tests/api_surface.txt");
    if std::env::var_os("UPDATE_API_SURFACE").is_some() {
        std::fs::write(&snapshot_path, &listing).expect("write api_surface.txt");
        return;
    }
    let committed = std::fs::read_to_string(&snapshot_path)
        .expect("tests/api_surface.txt missing — run with UPDATE_API_SURFACE=1 to create it");
    assert_eq!(
        committed, listing,
        "\npublic API surface changed. If intentional, regenerate the snapshot:\n\
         \n    UPDATE_API_SURFACE=1 cargo test --test api_surface\n\
         \nand commit tests/api_surface.txt alongside your change."
    );
}
