//! Fault-matrix suite at the **public API surface**.
//!
//! The engine-level companion (`crates/distributed/tests/fault_recovery.rs`)
//! drives `ParallelIngestEngine` directly; this suite injects the same
//! deterministic fault schedules through `api::SamplerConfig::
//! build_with_fault_plan` and asserts the facade contract: under
//! `RecoveryPolicy::RespawnFromBarrier` every injected failure is absorbed
//! **bit-identically** (the faulted run's sample equals the fault-free
//! run's), under `RecoveryPolicy::Fail` every failure surfaces as a typed
//! `TbsError::Engine` — and in neither case does any call hang or abort
//! the process. The checkpoint side is covered too: `Sampler::recover`
//! must walk the generation ring past torn/corrupted generations instead
//! of dying on the newest one.
//!
//! Seeds are pinned for reproducibility but overridable: set
//! `TBS_FAULT_SEEDS=17,99,12345` (comma-separated u64s) to sweep others —
//! the CI `fault-matrix` job pins its own list so failures name the seed.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use tbs_distributed::fault::{bit_flip, silence_injected_panics, FaultPlan};
use temporal_sampling::api::{
    EngineHealth, EpochWait, RecoveryPolicy, Sampler, SamplerConfig, TbsError,
};

/// Bursty reference stream: empty, tiny, and huge batches, sizes never
/// multiples of the shard count, so the balanced splitter's deviation
/// ledger and the work-stealing sweep both stay busy across recoveries.
fn batch_at(t: u64) -> Vec<u64> {
    let size = [40u64, 0, 7, 90, 3, 0, 250, 11, 0, 0, 64, 1][t as usize % 12];
    (0..size).map(|i| t * 1_000 + i).collect()
}

const BATCHES: u64 = 48;

/// The seed sweep: `TBS_FAULT_SEEDS` (comma-separated) when set — CI pins
/// its list there — else a fixed default triple.
fn seeds() -> Vec<u64> {
    match std::env::var("TBS_FAULT_SEEDS") {
        Ok(list) => list
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(|s| {
                s.parse()
                    .unwrap_or_else(|_| panic!("TBS_FAULT_SEEDS entry {s:?} is not a u64"))
            })
            .collect(),
        Err(_) => vec![11, 42, 9001],
    }
}

/// One fault schedule per injected failure mode, each firing well inside
/// the 48-batch stream.
fn plans() -> Vec<(&'static str, FaultPlan)> {
    vec![
        ("kill_worker", FaultPlan::new().kill_worker(1, 8)),
        ("kill_merger", FaultPlan::new().kill_merger(2)),
        ("drop_push", FaultPlan::new().drop_push(2, 14)),
    ]
}

/// The two mergeable algorithms, sharded four ways.
fn configs(seed: u64) -> Vec<SamplerConfig> {
    vec![
        SamplerConfig::rtbs(0.2, 64).shards(4).seed(seed),
        SamplerConfig::ttbs(0.1, 50, 47.0).shards(4).seed(seed),
    ]
}

/// Feed the reference stream with mid-stream publications (each one a
/// barrier through the merge tree — the merger's busiest moments), then
/// draw the final sample.
fn drive(sampler: &mut Sampler<u64>) -> Result<Vec<u64>, TbsError> {
    for t in 0..BATCHES {
        sampler.observe(batch_at(t))?;
        if t % 16 == 11 {
            sampler.publish()?;
        }
    }
    sampler.sample()
}

#[test]
fn respawn_matrix_is_bit_identical_through_the_facade() {
    silence_injected_panics();
    for seed in seeds() {
        for config in configs(seed) {
            let config = config.recovery_policy(RecoveryPolicy::RespawnFromBarrier);
            let clean = drive(&mut config.build::<u64>().expect("valid config"))
                .expect("fault-free run must succeed");
            for (label, plan) in plans() {
                let plan = Arc::new(plan);
                let mut sampler = config
                    .build_with_fault_plan::<u64>(Arc::clone(&plan))
                    .expect("valid faulted config");
                let got = drive(&mut sampler).unwrap_or_else(|e| {
                    panic!("{label}/seed={seed}: respawn policy must absorb the fault, got {e}")
                });
                assert_eq!(
                    got,
                    clean,
                    "{label}/seed={seed}/{}: recovered sample diverged from the fault-free run",
                    sampler.name(),
                );
                assert_eq!(
                    plan.fired_count(),
                    1,
                    "{label}: the planned fault never fired"
                );
                assert!(
                    matches!(sampler.health(), EngineHealth::Degraded { recoveries } if recoveries >= 1),
                    "{label}: a recovery must be recorded, got {:?}",
                    sampler.health(),
                );
                assert!(sampler.recoveries() >= 1);
            }
        }
    }
}

#[test]
fn fail_policy_surfaces_typed_errors_through_the_facade() {
    silence_injected_panics();
    for config in configs(42) {
        for (label, plan) in plans() {
            let plan = Arc::new(plan);
            let mut sampler = config
                .build_with_fault_plan::<u64>(Arc::clone(&plan))
                .expect("valid faulted config");
            let err = drive(&mut sampler)
                .expect_err(&format!("{label}: Fail policy must report the fault"));
            assert!(
                matches!(err, TbsError::Engine(_)),
                "{label}: expected a typed pipeline error, got {err:?}"
            );
            assert!(matches!(sampler.health(), EngineHealth::Failed(_)));
            // A failed engine answers *every* subsequent verb with the
            // recorded cause — typed, prompt, never a hang or abort.
            assert!(matches!(
                sampler.observe(batch_at(0)),
                Err(TbsError::Engine(_))
            ));
            assert!(matches!(sampler.sample(), Err(TbsError::Engine(_))));
            assert!(matches!(sampler.publish(), Err(TbsError::Engine(_))));
            assert!(matches!(sampler.quiesce(), Err(TbsError::Engine(_))));
            assert!(matches!(sampler.expected_size(), Err(TbsError::Engine(_))));
        }
    }
}

#[test]
fn single_node_configs_reject_fault_plans() {
    let err = SamplerConfig::rtbs(0.1, 64)
        .build_with_fault_plan::<u64>(Arc::new(FaultPlan::new().kill_worker(0, 1)))
        .expect_err("no pipeline to injure");
    assert!(
        matches!(err, TbsError::InvalidShardCount { shards: 1, .. }),
        "{err:?}"
    );
}

#[test]
fn reader_blocked_on_a_killed_publisher_returns_promptly() {
    silence_injected_panics();
    // Fail policy: the merger dies on its very first message (the epoch-1
    // publication request) and nothing respawns it, so the epoch cell is
    // closed on the way out. A consumer already parked in
    // `wait_for_epoch_timeout` must observe `PublisherGone` promptly —
    // not burn its whole 30s deadline, and certainly not hang.
    let plan = Arc::new(FaultPlan::new().kill_merger(0));
    let mut sampler = SamplerConfig::rtbs(0.2, 64)
        .shards(4)
        .seed(7)
        .build_with_fault_plan::<u64>(plan)
        .expect("valid faulted config");
    let mut reader = sampler.reader();
    let waiter =
        std::thread::spawn(move || reader.wait_for_epoch_timeout(1, Duration::from_secs(30)));
    for t in 0..6 {
        sampler
            .observe(batch_at(t))
            .expect("pre-fault ingest is healthy");
    }
    // The publication request is the merger's first message — the kill
    // site. The request itself may already observe the death; either way
    // the engine must end up Failed with the cell closed.
    let _ = sampler.publish();
    let verdict = waiter.join().expect("waiter must not panic");
    assert!(
        matches!(verdict, EpochWait::PublisherGone),
        "expected PublisherGone, got {verdict:?}"
    );
    // And the handle itself reports the failure typed on the next call.
    let mut failed = sampler;
    assert!(matches!(failed.sample(), Err(TbsError::Engine(_))));
}

#[test]
fn wire_fault_matrix_leaves_engine_state_intact() {
    // The PR-8 matrix proves the engine absorbs worker/merger death;
    // this row proves the serving tier absorbs *wire* death. For every
    // pinned seed: connection 1 loses its 3rd reply frame mid-session
    // and connection 2 goes half-open on its 1st — yet the engine's
    // state after the carnage is bit-identical to a fault-free server
    // fed the same stream.
    use std::net::TcpListener;
    use tbs_server::client::{BlockingClient, ClientError};
    use tbs_server::server::serve_on;
    use tbs_server::service::{NoModel, SamplerService};
    use temporal_sampling::api::RetrainPolicy;

    for seed in seeds() {
        let start = |plan: Option<Arc<FaultPlan>>| {
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
            let svc: SamplerService<u64, NoModel> = SamplerService::new(
                SamplerConfig::rtbs(0.2, 64).seed(seed),
                NoModel,
                RetrainPolicy::EveryBatch,
            )
            .expect("valid config");
            serve_on(listener, svc, plan).expect("serve")
        };

        // Fault-free reference run: three batches, final sample.
        let clean_server = start(None);
        let mut clean: BlockingClient<u64> =
            BlockingClient::connect(clean_server.addr()).expect("connect");
        for t in 0..3 {
            clean.ingest(batch_at(t)).expect("clean ingest");
        }
        let clean_sample = clean.get_sample().expect("clean sample");

        // Faulted run: same stream, wire faults on connections 1 and 2.
        let plan = Arc::new(
            FaultPlan::new()
                .drop_connection(1, 3)
                .half_open_socket(2, 1),
        );
        let server = start(Some(Arc::clone(&plan)));

        let mut victim: BlockingClient<u64> =
            BlockingClient::connect(server.addr()).expect("connect victim");
        victim.ingest(batch_at(0)).expect("reply frame 1 delivered");
        victim.ingest(batch_at(1)).expect("reply frame 2 delivered");
        // The 3rd request reaches the engine, but its ack frame is the
        // fault site: the socket dies under the client.
        let lost = victim.ingest(batch_at(2));
        assert!(
            matches!(lost, Err(ClientError::Io(_))),
            "seed={seed}: expected a dead socket, got {lost:?}"
        );

        // Connection 2 goes half-open: request swallowed, no reply.
        let mut stuck: BlockingClient<u64> =
            BlockingClient::connect_timeout(server.addr(), Duration::from_millis(300))
                .expect("connect stuck");
        assert!(
            matches!(stuck.ping(), Err(ClientError::Io(_))),
            "seed={seed}: half-open socket must hit the read timeout"
        );

        // Connection 3 sees the engine unharmed and bit-identical to
        // the fault-free run (the lost ack's batch WAS ingested — the
        // fault ate the reply, not the request).
        let mut survivor: BlockingClient<u64> =
            BlockingClient::connect(server.addr()).expect("connect survivor");
        let got = survivor.get_sample().expect("engine still serves");
        assert_eq!(
            got, clean_sample,
            "seed={seed}: wire faults must not perturb engine state"
        );
        assert_eq!(
            plan.fired_count(),
            2,
            "seed={seed}: both wire faults must fire exactly once"
        );
    }
}

/// A unique scratch directory per test (no tempfile dependency).
fn scratch(tag: &str) -> std::path::PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "tbs-faultmatrix-{}-{}-{tag}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Flip one bit in a stored generation file on disk — a torn or
/// bit-rotted checkpoint as the recovery path will find it.
fn corrupt_generation(store: &temporal_sampling::api::CheckpointStore, seq: u64) {
    let path = store.generation_path(seq);
    let raw = std::fs::read(&path).expect("generation file exists");
    std::fs::write(&path, bit_flip(&raw, (raw.len() / 2) * 8 + 3)).expect("rewrite");
}

#[test]
fn recover_walks_the_ring_past_a_corrupted_generation() {
    use temporal_sampling::api::CheckpointStore;

    let dir = scratch("ring");
    let config = SamplerConfig::rtbs(0.1, 64).seed(7);
    let mut sampler = config.build::<u64>().expect("valid config");
    sampler.set_checkpoint_store(CheckpointStore::open(&dir, 4).expect("open store"));
    let mut seqs = Vec::new();
    for cut in [10u64, 20, 30] {
        while sampler.batches_observed() < cut {
            sampler
                .observe(batch_at(sampler.batches_observed()))
                .unwrap();
        }
        seqs.push(sampler.checkpoint_now().expect("checkpoint writes"));
    }
    let store = sampler.take_checkpoint_store().expect("store attached");
    drop(sampler);

    // Pristine ring: recovery restores the newest generation.
    let (recovered, seq) = Sampler::<u64>::recover(&config, &store).expect("newest restores");
    assert_eq!(seq, seqs[2]);
    assert_eq!(recovered.batches_observed(), 30);

    // Newest generation corrupted on disk: the CRC frame catches the bit
    // flip and recovery *falls back* to the generation before it.
    corrupt_generation(&store, seqs[2]);
    let (recovered, seq) = Sampler::<u64>::recover(&config, &store).expect("fallback restores");
    assert_eq!(seq, seqs[1]);
    assert_eq!(recovered.batches_observed(), 20);

    // Every generation corrupted: a typed verdict naming how many were
    // tried — never a restore of garbage, never a panic.
    corrupt_generation(&store, seqs[1]);
    corrupt_generation(&store, seqs[0]);
    assert_eq!(
        Sampler::<u64>::recover(&config, &store).expect_err("nothing valid remains"),
        TbsError::NoValidCheckpoint { attempted: 3 }
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn recovered_sampler_continues_bit_identically() {
    use temporal_sampling::api::CheckpointStore;

    // The ring-recovery path must hand back a sampler that continues the
    // stream exactly like an uninterrupted run — same contract as
    // snapshot/restore, now through the durable store. Sharded, so the
    // engine checkpoint framing rides along too.
    let dir = scratch("resume");
    let config = SamplerConfig::rtbs(0.2, 64).shards(4).seed(13);
    let mut uninterrupted = config.build::<u64>().expect("valid config");
    for t in 0..BATCHES {
        uninterrupted.observe(batch_at(t)).unwrap();
    }

    let mut first = config.build::<u64>().expect("valid config");
    first.set_checkpoint_store(CheckpointStore::open(&dir, 2).expect("open store"));
    for t in 0..17 {
        first.observe(batch_at(t)).unwrap();
    }
    first.checkpoint_now().expect("checkpoint writes");
    let store = first.take_checkpoint_store().expect("store attached");
    drop(first);

    let (mut resumed, _) = Sampler::<u64>::recover(&config, &store).expect("restores");
    assert_eq!(resumed.batches_observed(), 17);
    for t in 17..BATCHES {
        resumed.observe(batch_at(t)).unwrap();
    }
    assert_eq!(
        resumed.sample().unwrap(),
        uninterrupted.sample().unwrap(),
        "recovered run diverged from the uninterrupted stream"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
