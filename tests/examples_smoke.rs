//! Smoke tests running every example's `main` path in-process.
//!
//! Each example source file is compiled into this test binary via
//! `include!`, so an example that stops compiling breaks `cargo test`
//! immediately (not just `cargo build --examples`), and one that starts
//! panicking fails the corresponding test here.

macro_rules! example_smoke {
    ($($test_name:ident => ($mod_name:ident, $file:literal);)*) => {
        $(
            mod $mod_name {
                #![allow(clippy::all)]
                include!($file);

                pub fn run() {
                    main()
                }
            }

            #[test]
            fn $test_name() {
                $mod_name::run();
            }
        )*
    };
}

example_smoke! {
    quickstart_runs => (quickstart, "../examples/quickstart.rs");
    twitter_influencers_runs => (twitter_influencers, "../examples/twitter_influencers.rs");
    iot_sensor_drift_runs => (iot_sensor_drift, "../examples/iot_sensor_drift.rs");
    regression_monitoring_runs => (regression_monitoring, "../examples/regression_monitoring.rs");
    drift_triggered_retraining_runs =>
        (drift_triggered_retraining, "../examples/drift_triggered_retraining.rs");
    distributed_cluster_runs => (distributed_cluster, "../examples/distributed_cluster.rs");
    parallel_ingest_runs => (parallel_ingest, "../examples/parallel_ingest.rs");
    checkpoint_resume_runs => (checkpoint_resume, "../examples/checkpoint_resume.rs");
    concurrent_serving_runs => (concurrent_serving, "../examples/concurrent_serving.rs");
    network_serving_runs => (network_serving, "../examples/network_serving.rs");
}
