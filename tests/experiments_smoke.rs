//! Smoke tests over the benchmark harness: every experiment module runs at
//! reduced scale and produces sane output (guarding the regeneration
//! binaries against bit-rot).

use tbs_bench::experiments;

#[test]
fn fig1_panels_produce_bounded_rtbs_and_drifting_ttbs() {
    let results = experiments::fig1::run(400, 99);
    assert_eq!(results.len(), 4);
    for res in &results {
        assert_eq!(res.ttbs.len(), 400);
        // R-TBS never exceeds its n = 1000 bound in any panel.
        assert!(res.rtbs.iter().all(|&c| c <= 1000.0 + 1e-9));
    }
    // Panel (a) grows past 200: T-TBS must exceed the target.
    let growing = &results[0];
    assert!(growing.ttbs[399] > 1200.0, "T-TBS failed to overflow");
    assert!(growing.rtbs[399] <= 1000.0 + 1e-9);
}

#[test]
fn fig7_ordering_holds_at_reduced_scale() {
    let cfg = experiments::runtime::RuntimeConfig {
        batch: 20_000,
        capacity: 40_000,
        rounds: 3,
        ..Default::default()
    };
    let results = experiments::runtime::run_fig7(&cfg, 5);
    assert_eq!(results.len(), 5);
    for pair in results.windows(2) {
        assert!(
            pair[0].1.elapsed > pair[1].1.elapsed,
            "{} not slower than {}",
            pair[0].0,
            pair[1].0
        );
    }
}

#[test]
fn fig8_and_fig9_sweeps_run() {
    let out8 = experiments::runtime::run_fig8(&[1, 4, 8], 100_000, 5);
    assert_eq!(out8.len(), 3);
    assert!(out8[0].1 > out8[2].1, "scale-out must help");
    let out9 = experiments::runtime::run_fig9(&[1_000, 100_000], 4, 5);
    assert_eq!(out9.len(), 2);
    assert!(out9[1].1 > out9[0].1, "bigger batches must cost more");
}

#[test]
fn knn_smoke_run_learns_and_recovers() {
    let result = experiments::knn::smoke_run();
    assert_eq!(result.mean_series.len(), 3);
    for (name, summary) in &result.summaries {
        assert!(
            summary.mean_error < 65.0,
            "{name} never learned: {:.1}%",
            summary.mean_error
        );
    }
}

#[test]
fn nb_experiment_beats_chance_for_rtbs() {
    let result = experiments::nb::run_nb(3, 0.3, 4242);
    // Base rate is 1/3 interesting; predicting all-boring gives ~33%.
    let (name, rtbs) = &result.summaries[0];
    assert_eq!(name, "R-TBS");
    assert!(
        rtbs.mean_error < 40.0,
        "R-TBS NB error {:.1}% too high",
        rtbs.mean_error
    );
    assert_eq!(result.mean_series[0].1.len(), 30, "30 batches of 50");
}

#[test]
fn inclusion_report_flags_only_chao() {
    let reports = experiments::inclusion::run(0.3, 8_000, 31);
    for r in &reports {
        if r.name.starts_with("B-Chao") {
            assert!(r.violation > 0.15, "Chao fill-up violation missing");
        } else {
            assert!(
                r.violation < 0.08,
                "{} unexpectedly violates (1): {}",
                r.name,
                r.violation
            );
        }
    }
}

#[test]
fn theory_checks_are_close() {
    let rows = experiments::theory::transient_mean(0.1, 300, 60, 400, 17);
    for row in &rows {
        let rel_err: f64 = row[3].parse().unwrap();
        assert!(
            rel_err < 8.0,
            "transient mean off by {rel_err}% at t={}",
            row[0]
        );
    }
    let (sim, pred) = experiments::theory::rtbs_equilibrium(0.07, 1600, 100, 18);
    assert!((sim - pred).abs() < 20.0, "equilibrium {sim} vs {pred}");
}
