//! Cross-crate integration: datagen → samplers → models, end to end.
//!
//! These replicate the paper's headline qualitative findings on small
//! configurations: time-biased samples beat uniform ones on accuracy, beat
//! sliding windows on robustness, and keep their size bounds throughout.

use rand::SeedableRng;
use temporal_sampling::datagen::gmm::GmmGenerator;
use temporal_sampling::datagen::modes::ModeSchedule;
use temporal_sampling::datagen::regression::RegressionGenerator;
use temporal_sampling::datagen::stream::StreamPlan;
use temporal_sampling::datagen::BatchSizeProcess;
use temporal_sampling::ml::metrics::{average_summaries, summarize_series, SeriesSummary};
use temporal_sampling::ml::pipeline::{run_stream, Contender};
use temporal_sampling::ml::{KnnClassifier, LinearRegression};
use temporal_sampling::prelude::*;

fn knn_contenders(n: usize) -> Vec<Contender<temporal_sampling::datagen::LabeledPoint>> {
    vec![
        Contender::new(
            "R-TBS",
            Box::new(RTbs::new(0.07, n)),
            Box::new(KnnClassifier::new(7)),
        ),
        Contender::new(
            "SW",
            Box::new(CountWindow::new(n)),
            Box::new(KnnClassifier::new(7)),
        ),
        Contender::new(
            "Unif",
            Box::new(BatchedReservoir::new(n)),
            Box::new(KnnClassifier::new(7)),
        ),
    ]
}

/// Average summaries over several runs of the P(10,10) kNN experiment.
fn knn_periodic_summaries(runs: usize) -> Vec<(String, SeriesSummary)> {
    let plan = StreamPlan {
        warmup_batches: 60,
        measured_batches: 50,
        batch_sizes: BatchSizeProcess::Deterministic(100),
        schedule: ModeSchedule::periodic(10, 10),
    };
    let mut per_contender: Vec<Vec<SeriesSummary>> = vec![Vec::new(); 3];
    let mut names = Vec::new();
    for run in 0..runs {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(5000 + run as u64);
        let gmm = GmmGenerator::paper(&mut rng);
        let mut cs = knn_contenders(600);
        let outputs = run_stream(
            &plan,
            |mode, size, rng| gmm.sample_batch(mode, size, rng),
            &mut cs,
            &mut rng,
        );
        if names.is_empty() {
            names = outputs.iter().map(|o| o.name.clone()).collect();
        }
        for (i, o) in outputs.iter().enumerate() {
            per_contender[i].push(summarize_series(&o.errors, 20, 0.10));
        }
    }
    names
        .into_iter()
        .zip(per_contender.iter().map(|s| average_summaries(s)))
        .collect()
}

#[test]
fn knn_unif_is_least_accurate_and_sw_least_robust() {
    // The paper's Table-1 ordering: Unif worst accuracy by a margin; SW
    // worst ES by a margin.
    let summaries = knn_periodic_summaries(6);
    let by_name = |n: &str| {
        summaries
            .iter()
            .find(|(name, _)| name == n)
            .map(|(_, s)| *s)
            .expect("contender present")
    };
    let rtbs = by_name("R-TBS");
    let sw = by_name("SW");
    let unif = by_name("Unif");

    assert!(
        unif.mean_error > rtbs.mean_error + 2.0,
        "Unif ({:.1}%) should be clearly less accurate than R-TBS ({:.1}%)",
        unif.mean_error,
        rtbs.mean_error
    );
    assert!(
        sw.expected_shortfall > 1.3 * rtbs.expected_shortfall,
        "SW ES ({:.1}) should far exceed R-TBS ES ({:.1})",
        sw.expected_shortfall,
        rtbs.expected_shortfall
    );
    assert!(
        unif.expected_shortfall > rtbs.expected_shortfall,
        "Unif ES ({:.1}) should exceed R-TBS ES ({:.1})",
        unif.expected_shortfall,
        rtbs.expected_shortfall
    );
}

#[test]
fn regression_unsaturated_rtbs_beats_sw_with_less_data() {
    // §6.3 panel (b): R-TBS floats at ~1479 < 1600 items yet has lower MSE
    // than the full 1600-item sliding window under P(10,10).
    let plan = StreamPlan {
        warmup_batches: 100,
        measured_batches: 50,
        batch_sizes: BatchSizeProcess::Deterministic(100),
        schedule: ModeSchedule::periodic(10, 10),
    };
    let generator = RegressionGenerator::paper();
    let mut rtbs_mse = 0.0;
    let mut sw_mse = 0.0;
    let mut rtbs_size = 0.0;
    let runs = 5;
    for run in 0..runs {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(9_100 + run as u64);
        let mut cs: Vec<Contender<_>> = vec![
            Contender::new(
                "R-TBS",
                Box::new(RTbs::new(0.07, 1600)),
                Box::new(LinearRegression::new(true)),
            ),
            Contender::new(
                "SW",
                Box::new(CountWindow::new(1600)),
                Box::new(LinearRegression::new(true)),
            ),
        ];
        let outputs = run_stream(
            &plan,
            |mode, size, rng| generator.sample_batch(mode, size, rng),
            &mut cs,
            &mut rng,
        );
        rtbs_mse += outputs[0].errors.iter().sum::<f64>() / outputs[0].errors.len() as f64;
        sw_mse += outputs[1].errors.iter().sum::<f64>() / outputs[1].errors.len() as f64;
        rtbs_size +=
            outputs[0].sample_sizes.iter().sum::<f64>() / outputs[0].sample_sizes.len() as f64;
    }
    rtbs_mse /= runs as f64;
    sw_mse /= runs as f64;
    rtbs_size /= runs as f64;

    assert!(
        (rtbs_size - 1479.0).abs() < 15.0,
        "unsaturated equilibrium size {rtbs_size:.0}, expected ≈ 1479"
    );
    assert!(
        rtbs_mse < sw_mse,
        "R-TBS MSE {rtbs_mse:.2} should beat SW {sw_mse:.2} despite the smaller sample"
    );
}

#[test]
fn all_samplers_keep_their_bounds_through_the_pipeline() {
    let plan = StreamPlan {
        warmup_batches: 30,
        measured_batches: 20,
        batch_sizes: BatchSizeProcess::UniformRandom { lo: 0, hi: 200 },
        schedule: ModeSchedule::periodic(5, 5),
    };
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(777);
    let gmm = GmmGenerator::paper(&mut rng);
    let mut cs = knn_contenders(200);
    let outputs = run_stream(
        &plan,
        |mode, size, rng| gmm.sample_batch(mode, size, rng),
        &mut cs,
        &mut rng,
    );
    for o in &outputs {
        assert!(
            o.sample_sizes.iter().all(|&s| s <= 200.0 + 1e-9),
            "{} exceeded its bound",
            o.name
        );
        assert!(o.errors.iter().all(|&e| (0.0..=100.0).contains(&e)));
    }
}

#[test]
fn chao_pipeline_runs_but_rtbs_is_more_robust() {
    // Ablation: B-Chao is usable end-to-end; R-TBS should be at least as
    // robust (the gap is mild at the paper's λ = 0.07 with steady batches —
    // the pathology needs slow/bursty streams, tested in tbs-core).
    let plan = StreamPlan {
        warmup_batches: 40,
        measured_batches: 30,
        batch_sizes: BatchSizeProcess::Deterministic(60),
        schedule: ModeSchedule::periodic(10, 10),
    };
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(3131);
    let gmm = GmmGenerator::paper(&mut rng);
    let mut cs: Vec<Contender<_>> = vec![
        Contender::new(
            "B-Chao",
            Box::new(BChao::new(0.07, 400)),
            Box::new(KnnClassifier::new(7)),
        ),
        Contender::new(
            "R-TBS",
            Box::new(RTbs::new(0.07, 400)),
            Box::new(KnnClassifier::new(7)),
        ),
    ];
    let outputs = run_stream(
        &plan,
        |mode, size, rng| gmm.sample_batch(mode, size, rng),
        &mut cs,
        &mut rng,
    );
    for o in &outputs {
        let mean = o.errors.iter().sum::<f64>() / o.errors.len() as f64;
        assert!(
            mean < 70.0,
            "{} failed to learn at all ({mean:.0}%)",
            o.name
        );
    }
}
