//! Statistical equivalence harness: per-item vs jump-ahead ingest.
//!
//! The jump-ahead ingest mode (`IngestMode::Jump`) replaces per-item
//! acceptance coin-flips with batch-level `Binomial` accept counts and
//! `Geometric` inter-acceptance gaps (see `tbs_core::jumps` for the
//! analytical equivalence argument). This harness is the *empirical* half
//! of the proof: over matched batch schedules it verifies that both modes
//! realize
//!
//! 1. the same Theorem 4.2 inclusion frequencies — for every arrival
//!    batch, the fraction of trials in which its items land in the final
//!    sample matches the closed-form `(C_t/W_t)·e^{−λ·age}` (R-TBS) or
//!    `q·e^{−λ·age}` (T-TBS), checked with a chi-square test per item-age
//!    bucket and per mode;
//! 2. the same realized sample-size *distribution* — a two-sample
//!    Kolmogorov–Smirnov test between the modes;
//! 3. the §6.3 unsaturated equilibrium — mean sample size ≈ 1479 for
//!    `n = 1600, b = 100, λ = 0.07`, with a TOST mean-equivalence check
//!    between the modes.
//!
//! The grid covers R-TBS and T-TBS × {unsaturated, saturated, bursty}
//! regimes × {1, 4} shards — plus K ∈ {16, 32} under
//! `TBS_STAT_THOROUGH=1`, exercising the adaptive `⌈n/K⌉+1` shard
//! capacity in the regimes the 8-shard cliff fix and the K=32
//! flattened-tail fix opened up (sharded runs drive the merge algebra
//! directly, proving jump mode composes with `MergeableSample`).
//!
//! # False-positive budget
//!
//! Every statistical check in this file shares one Bonferroni-corrected
//! family: with `FAMILY_ALPHA = 1e-2` split across all planned checks,
//! a fully-correct implementation fails this suite with probability
//! ≤ 1%. The seeds are fixed, so a pass is reproducible — rejections
//! indicate a real distributional defect, not noise. Set
//! `TBS_STAT_THOROUGH=1` to multiply the trial budget by 10 for local
//! deep runs (CI runs the fast fixed-seed budget).

use rand::SeedableRng;
use temporal_sampling::core::merge::{BalancedSplitter, MergeableSample, ShardSpec};
use temporal_sampling::core::{IngestMode, RTbs, TTbs};
use temporal_sampling::stats::gof;
use temporal_sampling::stats::rng::Xoshiro256PlusPlus;

/// Shared family-wise false-positive budget for this suite.
const FAMILY_ALPHA: f64 = 1e-2;

/// Whether the deep local/nightly budget is enabled.
fn thorough() -> bool {
    std::env::var("TBS_STAT_THOROUGH").is_ok_and(|v| v == "1")
}

/// Trials per (combo, mode) under the fast CI budget.
fn trial_budget() -> usize {
    let base = 20_000;
    if thorough() {
        base * 10
    } else {
        base
    }
}

/// Shard counts in the grid. K ∈ {16, 32} joins only under the thorough
/// budget: at high shard counts most sub-batches are empty or
/// single-item, so the fast budget's per-bucket counts would be too thin
/// to mean much, while the ×10 budget gives every check full power.
/// K = 32 covers the flattened-tail regime where every shard holds a
/// tiny `⌈n/K⌉+1` slice of the reservoir.
fn shard_grid() -> &'static [usize] {
    if thorough() {
        &[1, 4, 16, 32]
    } else {
        &[1, 4]
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Alg {
    RTbs,
    TTbs,
}

/// One cell of the verification grid: an algorithm in a regime, sharded
/// or not, over a fixed arrival schedule.
struct Combo {
    name: &'static str,
    alg: Alg,
    lambda: f64,
    /// R-TBS capacity / T-TBS target size.
    capacity: usize,
    /// T-TBS assumed mean batch size (ignored by R-TBS).
    mean_batch: f64,
    schedule: &'static [u64],
    shards: usize,
}

/// The regimes are miniatures of the paper's §6 settings, chosen so each
/// exercises a distinct jump-mode code path:
///
/// * R-TBS unsaturated (`b/(1−e^{−λ}) < n`): complement-side retention in
///   `downsample`;
/// * R-TBS saturated: the binomial accept count + windowed segment swap;
/// * R-TBS bursty: all four Algorithm 2 transitions, including batches
///   larger than `n` (which fall back to the per-item kernel);
/// * T-TBS high-q (≥ 0.5): binomial acceptance + cheap-side sweep;
/// * T-TBS low-q (< 0.5): geometric gaps with the cross-batch cursor;
/// * T-TBS bursty: the cursor carrying skips across varying batch sizes,
///   including empty batches.
fn combo_grid() -> Vec<Combo> {
    let mut grid = Vec::new();
    for &shards in shard_grid() {
        grid.push(Combo {
            name: "rtbs/unsaturated",
            alg: Alg::RTbs,
            lambda: 0.3,
            capacity: 16,
            mean_batch: 0.0,
            schedule: &[4, 4, 4, 4, 4, 4, 4, 4, 4, 4],
            shards,
        });
        grid.push(Combo {
            name: "rtbs/saturated",
            alg: Alg::RTbs,
            lambda: 0.3,
            capacity: 8,
            mean_batch: 0.0,
            schedule: &[4, 4, 4, 4, 4, 4, 4, 4, 4, 4],
            shards,
        });
        grid.push(Combo {
            name: "rtbs/bursty",
            alg: Alg::RTbs,
            lambda: 0.3,
            capacity: 10,
            mean_batch: 0.0,
            schedule: &[0, 1, 12, 3, 6, 20, 2, 9],
            shards,
        });
        grid.push(Combo {
            name: "ttbs/high-q",
            alg: Alg::TTbs,
            lambda: 0.3,
            capacity: 15,
            mean_batch: 4.0,
            schedule: &[4, 4, 4, 4, 4, 4, 4, 4, 4, 4],
            shards,
        });
        grid.push(Combo {
            name: "ttbs/low-q",
            alg: Alg::TTbs,
            lambda: 0.3,
            capacity: 7,
            mean_batch: 4.0,
            schedule: &[4, 4, 4, 4, 4, 4, 4, 4, 4, 4],
            shards,
        });
        grid.push(Combo {
            name: "ttbs/bursty",
            alg: Alg::TTbs,
            lambda: 0.3,
            capacity: 10,
            mean_batch: 7.5,
            schedule: &[0, 1, 12, 3, 6, 20, 2, 9],
            shards,
        });
    }
    grid
}

/// Items are tagged with their arrival batch so inclusion can be counted
/// per item-age bucket.
type Tagged = (u32, u32);

fn make_batch(bi: usize, size: u64) -> Vec<Tagged> {
    (0..size).map(|i| (bi as u32, i as u32)).collect()
}

/// Theoretical final inclusion probability for an item of batch `bi`
/// under the combo's closed-form law (Thm 4.2 for R-TBS, Algorithm 1's
/// acceptance/retention product for T-TBS).
fn theory_inclusion(combo: &Combo, bi: usize) -> f64 {
    let d = (-combo.lambda).exp();
    let age = (combo.schedule.len() - 1 - bi) as f64;
    match combo.alg {
        Alg::RTbs => {
            // Exact W recursion; C = min(n, W). Shard weights sum to the
            // same global W, so the law is shard-count-invariant.
            let mut w = 0.0f64;
            for &b in combo.schedule {
                w = w * d + b as f64;
            }
            let c = w.min(combo.capacity as f64);
            (c / w) * d.powf(age)
        }
        Alg::TTbs => {
            let q = (combo.capacity as f64 * (1.0 - d) / combo.mean_batch).min(1.0);
            q * d.powf(age)
        }
    }
}

/// Run one seeded trial of the combo's schedule in the given mode and
/// return the realized final sample. Sharded trials split every batch
/// round-robin across the shard-local samplers and fold them through the
/// merge algebra — the same path the parallel engine takes.
fn run_trial(combo: &Combo, mode: IngestMode, seed: u64) -> Vec<Tagged> {
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
    if combo.shards == 1 {
        match combo.alg {
            Alg::RTbs => {
                let mut s: RTbs<Tagged> = RTbs::new(combo.lambda, combo.capacity);
                s.set_ingest_mode(mode);
                for (bi, &b) in combo.schedule.iter().enumerate() {
                    s.observe(make_batch(bi, b), &mut rng);
                }
                s.sample(&mut rng)
            }
            Alg::TTbs => {
                let mut s: TTbs<Tagged> = TTbs::new(combo.lambda, combo.capacity, combo.mean_batch);
                s.set_ingest_mode(mode);
                for (bi, &b) in combo.schedule.iter().enumerate() {
                    s.observe(make_batch(bi, b), &mut rng);
                }
                s.sample(&mut rng)
            }
        }
    } else {
        let k = combo.shards;
        match combo.alg {
            Alg::RTbs => {
                let spec = ShardSpec::rtbs(combo.lambda, combo.capacity, k).with_ingest_mode(mode);
                let mut shards = RTbs::<Tagged>::make_shards(&spec);
                drive_shards(&mut shards, combo, &mut rng);
                let merged = RTbs::merge_shards(shards, &spec, &mut rng);
                merged.sample(&mut rng)
            }
            Alg::TTbs => {
                let spec = ShardSpec::ttbs(combo.lambda, combo.capacity, combo.mean_batch, k)
                    .with_ingest_mode(mode);
                let mut shards = TTbs::<Tagged>::make_shards(&spec);
                drive_shards(&mut shards, combo, &mut rng);
                let merged = TTbs::merge_shards(shards, &spec, &mut rng);
                merged.sample(&mut rng)
            }
        }
    }
}

/// Feed the schedule through K shard-local samplers with the engine's
/// balanced splitter (every shard sees every time step, possibly with an
/// empty sub-batch, so all shard clocks stay aligned, and every shard's
/// decayed intake stays within ±1 of the fair share — the invariant the
/// `⌈n/K⌉+1` adaptive shard capacity is sized against).
fn drive_shards<S>(shards: &mut [S], combo: &Combo, rng: &mut Xoshiro256PlusPlus)
where
    S: MergeableSample<Item = Tagged>,
{
    let k = shards.len();
    let mut splitter = BalancedSplitter::new(combo.lambda, k);
    let mut subs: Vec<Vec<Tagged>> = vec![Vec::new(); k];
    for (bi, &b) in combo.schedule.iter().enumerate() {
        let mut batch = make_batch(bi, b);
        splitter.split(&mut batch, &mut subs);
        for (shard, sub) in shards.iter_mut().zip(subs.iter_mut()) {
            shard.observe_shard(sub, rng);
        }
    }
}

/// Checks planned per combo: one inclusion chi-square per non-empty
/// batch per mode, plus one two-sample KS on the size distributions.
fn checks_per_combo(combo: &Combo) -> usize {
    combo.schedule.iter().filter(|&&b| b > 0).count() * 2 + 1
}

#[test]
fn per_item_and_jump_modes_are_statistically_equivalent() {
    let grid = combo_grid();
    let trials = trial_budget();
    let planned: usize = grid.iter().map(checks_per_combo).sum();
    let alpha = gof::bonferroni(FAMILY_ALPHA, planned);
    let mut failures: Vec<String> = Vec::new();
    let mut executed = 0usize;

    for (ci, combo) in grid.iter().enumerate() {
        // Per-mode appearance counts per batch bucket, and realized sizes.
        let mut appear = [
            vec![0u64; combo.schedule.len()],
            vec![0u64; combo.schedule.len()],
        ];
        let mut sizes = [Vec::with_capacity(trials), Vec::with_capacity(trials)];
        for (mi, &mode) in [IngestMode::PerItem, IngestMode::Jump].iter().enumerate() {
            for t in 0..trials {
                // Fixed, distinct seed per (combo, mode, trial).
                let seed =
                    0x5eed_0000_0000 + (ci as u64) * 1_000_000 + (mi as u64) * 500_000 + t as u64;
                let sample = run_trial(combo, mode, seed);
                sizes[mi].push(sample.len() as f64);
                for (bi, _) in sample {
                    appear[mi][bi as usize] += 1;
                }
            }
        }

        // (1) Inclusion frequencies vs the Thm 4.2 closed form, per mode.
        for (mi, mode_label) in [(0, "per-item"), (1, "jump")] {
            for (bi, &b) in combo.schedule.iter().enumerate() {
                if b == 0 {
                    continue;
                }
                let exposures = (trials as u64) * b;
                let p = theory_inclusion(combo, bi);
                let hits = appear[mi][bi];
                let observed = [hits, exposures - hits];
                let expected = [p * exposures as f64, (1.0 - p) * exposures as f64];
                executed += 1;
                if let Some(out) = gof::chi2_gof(&observed, &expected, alpha) {
                    if out.rejected {
                        failures.push(format!(
                            "{} K={} {}: batch {bi} inclusion {:.4} vs theory {:.4} \
                             (chi2 {:.2} > crit {:.2})",
                            combo.name,
                            combo.shards,
                            mode_label,
                            hits as f64 / exposures as f64,
                            p,
                            out.statistic,
                            out.critical,
                        ));
                    }
                }
            }
        }

        // (2) Sample-size distributions match across modes (two-sample KS).
        executed += 1;
        let ks = gof::ks_two_sample(&sizes[0], &sizes[1], alpha);
        if ks.rejected {
            failures.push(format!(
                "{} K={}: size distribution per-item vs jump diverges \
                 (KS {:.4} > crit {:.4})",
                combo.name, combo.shards, ks.statistic, ks.critical,
            ));
        }
    }

    assert_eq!(
        executed, planned,
        "check count drifted from the Bonferroni plan"
    );
    assert!(
        failures.is_empty(),
        "{} of {planned} checks rejected at per-test alpha {alpha:.2e} \
         (family {FAMILY_ALPHA}):\n{}",
        failures.len(),
        failures.join("\n")
    );
}

#[test]
fn unsaturated_equilibrium_matches_paper_in_both_modes() {
    // §6.3: n = 1600, b = 100, λ = 0.07 → the reservoir never fills and
    // the sample weight stabilizes at b/(1−e^{−λ}) ≈ 1479. Both modes
    // must sit on that equilibrium, and their mean realized sizes must be
    // TOST-equivalent within a 3-item margin.
    const EQUILIBRIUM: f64 = 1479.0;
    const RUNS: usize = 24;
    const BATCHES: u64 = 150;
    let mut means = [0.0f64; 2];
    let mut sizes = [Vec::new(), Vec::new()];
    for (mi, &mode) in [IngestMode::PerItem, IngestMode::Jump].iter().enumerate() {
        for run in 0..RUNS {
            let mut rng = Xoshiro256PlusPlus::seed_from_u64(0xe9_0000 + run as u64 * 7 + mi as u64);
            let mut s: RTbs<u64> = RTbs::new(0.07, 1600);
            s.set_ingest_mode(mode);
            for t in 0..BATCHES {
                s.observe((t * 100..(t + 1) * 100).collect(), &mut rng);
            }
            assert!(!s.is_saturated(), "regime must stay unsaturated");
            sizes[mi].push(s.sample(&mut rng).len() as f64);
        }
        means[mi] = sizes[mi].iter().sum::<f64>() / RUNS as f64;
        assert!(
            (means[mi] - EQUILIBRIUM).abs() < 3.0,
            "mode {mi}: mean size {} vs equilibrium {EQUILIBRIUM}",
            means[mi]
        );
    }
    assert!(
        gof::tost_mean_equivalent(&sizes[0], &sizes[1], 3.0, gof::TEST_ALPHA),
        "per-item mean {} and jump mean {} not TOST-equivalent within ±3",
        means[0],
        means[1]
    );
}
