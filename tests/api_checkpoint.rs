//! Snapshot / restore contract of the public `api::Sampler`.
//!
//! The headline property: **snapshot → restore → continue is
//! bit-identical to an uninterrupted run**, for every algorithm ×
//! {unsaturated, saturated} × {1, 4} shards, over arbitrary seeds and
//! cut points (proptest). Plus the rejection side: truncated, corrupt,
//! bad-magic, wrong-version, mismatched-config, and trailing-byte blobs
//! are all reported as `TbsError`s — never a panic, never a silently
//! wrong sampler.

use bytes::{BufMut, Bytes, BytesMut};
use proptest::prelude::*;
use temporal_sampling::api::{
    Algorithm, CheckpointError, IngestMode, Sampler, SamplerConfig, TbsError, TimeSemantics,
};

/// Batch at step `t` of the reference stream: bursty, with empty batches
/// and a mean near 50 items.
fn batch_at(t: u64) -> Vec<u64> {
    let size = [50u64, 0, 130, 7, 50, 25][t as usize % 6];
    (0..size).map(|i| t * 1_000 + i).collect()
}

/// Every (algorithm, regime, shards) combination under test. With mean
/// batch ~50 and λ = 0.1, the equilibrium weight is ≈ 525: capacity 200
/// pins the bounded schemes saturated, 800 keeps them unsaturated.
fn all_configs() -> Vec<SamplerConfig> {
    let mut configs = Vec::new();
    for n in [200usize, 800] {
        // T-TBS feasibility needs b ≥ n(1 − e^{−λ}); the *declared* mean
        // batch size just has to clear that floor.
        let b = if n == 200 { 50.0 } else { 80.0 };
        configs.push(SamplerConfig::rtbs(0.1, n));
        configs.push(SamplerConfig::rtbs(0.1, n).shards(4));
        configs.push(SamplerConfig::ttbs(0.1, n, b));
        configs.push(SamplerConfig::ttbs(0.1, n, b).shards(4));
        configs.push(SamplerConfig::uniform(n));
        configs.push(SamplerConfig::chao(0.1, n));
        configs.push(SamplerConfig::sliding_count(n));
        configs.push(SamplerConfig::ares(0.1, n));
    }
    configs.push(SamplerConfig::btbs(0.1));
    configs.push(SamplerConfig::sliding_time(7.5));
    // Jump-ingest variants: same algorithms on the batch-level acceptance
    // path, including a T-TBS whose q sits on each side of the
    // geometric/binomial crossover (target 20 → q ≈ 0.04, 300 → q ≈ 0.57).
    configs.push(SamplerConfig::rtbs(0.1, 200).ingest_mode(IngestMode::Jump));
    configs.push(
        SamplerConfig::rtbs(0.1, 200)
            .shards(4)
            .ingest_mode(IngestMode::Jump),
    );
    configs.push(SamplerConfig::ttbs(0.1, 20, 50.0).ingest_mode(IngestMode::Jump));
    configs.push(SamplerConfig::ttbs(0.1, 300, 50.0).ingest_mode(IngestMode::Jump));
    // Deferred-downsampling and shard-group variants: the lazy scale,
    // its parked segments, and the cell-sized engine framing all ride
    // the blob. n=800 stays unsaturated so cuts land mid-deferral.
    configs.push(SamplerConfig::rtbs(0.1, 800).defer_threshold(1e-6));
    configs.push(
        SamplerConfig::rtbs(0.1, 800)
            .shards(4)
            .defer_threshold(1e-6),
    );
    configs.push(SamplerConfig::rtbs(0.1, 200).shards(4).group_threshold(60));
    configs
}

/// Feed `total` batches with a snapshot/restore cycle after `cut`, and
/// compare against the uninterrupted run.
fn assert_resume_bit_identical(config: SamplerConfig, seed: u64, total: u64, cut: u64) {
    let config = config.seed(seed);
    let mut uninterrupted = config.build::<u64>().expect("valid config");
    for t in 0..total {
        uninterrupted.observe(batch_at(t)).unwrap();
    }

    let mut first = config.build::<u64>().expect("valid config");
    for t in 0..cut {
        first.observe(batch_at(t)).unwrap();
    }
    let blob = first.snapshot().unwrap();
    drop(first);
    let mut resumed = Sampler::restore(&config, blob).expect("own snapshot must restore");
    for t in cut..total {
        resumed.observe(batch_at(t)).unwrap();
    }

    assert_eq!(resumed.batches_observed(), uninterrupted.batches_observed());
    assert_eq!(
        resumed.sample().unwrap(),
        uninterrupted.sample().unwrap(),
        "{} × {} shards: resumed run diverged (seed {seed}, cut {cut}/{total})",
        config.algorithm().label(),
        config.shard_count(),
    );
}

proptest! {
    // Each case sweeps all 21 configs; 24 cases keep the suite quick
    // while still exploring seeds and cut points broadly.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn resume_is_bit_identical_for_every_config(
        seed in 0u64..1_000_000,
        cut in 1u64..35,
    ) {
        for config in all_configs() {
            assert_resume_bit_identical(config, seed, 36, cut);
        }
    }

    #[test]
    fn snapshot_blob_is_deterministic(seed in 0u64..1_000_000) {
        // Two identically-built, identically-fed samplers must serialize
        // to identical bytes (snapshot consumes no randomness).
        for config in [SamplerConfig::rtbs(0.1, 100), SamplerConfig::rtbs(0.1, 100).shards(4)] {
            let config = config.seed(seed);
            let mut a = config.build::<u64>().unwrap();
            let mut b = config.build::<u64>().unwrap();
            for t in 0..12 {
                a.observe(batch_at(t)).unwrap();
                b.observe(batch_at(t)).unwrap();
            }
            prop_assert_eq!(a.snapshot().unwrap(), b.snapshot().unwrap());
        }
    }

    #[test]
    fn truncated_blobs_never_panic_and_never_restore(len_frac in 0.0f64..1.0) {
        // Any strict prefix of a valid blob must be rejected cleanly,
        // whatever the algorithm's payload layout.
        for config in hostile_blob_configs() {
            let blob = small_snapshot(&config);
            let len = ((blob.len() as f64) * len_frac) as usize; // < blob.len()
            let err = Sampler::<u64>::restore(&config, blob.slice(0..len))
                .expect_err("prefix must not restore");
            prop_assert!(matches!(err, TbsError::Checkpoint(_)), "{err}");
        }
    }

    #[test]
    fn corrupted_bytes_never_panic(pos in 8usize..200, flip in 1u8..=255) {
        // Flipping any byte after the magic/version header must either
        // restore (the flip hit a payload byte that still decodes — the
        // config cross-checks catch what they can) or error; it must
        // never panic or abort, even when the flip lands in a count or
        // capacity field that drives allocations.
        for config in hostile_blob_configs() {
            let mut bytes = small_snapshot(&config).to_vec();
            if pos < bytes.len() {
                bytes[pos] ^= flip;
            }
            let _ = Sampler::<u64>::restore(&config, Bytes::from(bytes));
        }
    }
}

/// One config per distinct payload layout, for the hostile-blob tests:
/// latent sample (R-TBS), mid-deferral lazy-scale tail (R-TBS v4), plain
/// item vecs (T-TBS), per-entry scalars (A-Res keys, B-Chao overweight
/// weights, time-window stamps), ring buffer (SW), and the multi-shard
/// engine framing — plain and shard-grouped.
fn hostile_blob_configs() -> Vec<SamplerConfig> {
    vec![
        SamplerConfig::rtbs(0.1, 20).seed(3),
        SamplerConfig::rtbs(0.1, 40).shards(2).seed(3),
        SamplerConfig::rtbs(0.1, 800).defer_threshold(1e-6).seed(3),
        SamplerConfig::rtbs(0.1, 40)
            .shards(4)
            .group_threshold(30)
            .seed(3),
        SamplerConfig::ttbs(0.1, 20, 50.0).seed(3),
        SamplerConfig::chao(0.1, 20).seed(3),
        SamplerConfig::sliding_count(20).seed(3),
        SamplerConfig::sliding_time(3.0).seed(3),
        SamplerConfig::ares(0.1, 20).seed(3),
    ]
}

#[test]
fn resume_covers_the_real_gap_path_too() {
    // Gap-capable algorithms driven through observe_after must also
    // resume bit-identically.
    for config in [
        SamplerConfig::rtbs(0.1, 200),
        SamplerConfig::btbs(0.1),
        SamplerConfig::chao(0.1, 200),
        SamplerConfig::sliding_time(4.0),
    ] {
        let config = config.seed(17).time(TimeSemantics::RealGaps);
        let gap = |t: u64| 0.25 + (t % 5) as f64;
        let mut uninterrupted = config.build::<u64>().unwrap();
        for t in 0..30 {
            uninterrupted.observe_after(batch_at(t), gap(t)).unwrap();
        }
        let mut first = config.build::<u64>().unwrap();
        for t in 0..15 {
            first.observe_after(batch_at(t), gap(t)).unwrap();
        }
        let blob = first.snapshot().unwrap();
        let mut resumed = Sampler::restore(&config, blob).unwrap();
        for t in 15..30 {
            resumed.observe_after(batch_at(t), gap(t)).unwrap();
        }
        assert_eq!(
            resumed.sample().unwrap(),
            uninterrupted.sample().unwrap(),
            "{}: gap-path resume diverged",
            config.algorithm().label()
        );
    }
}

fn small_snapshot(config: &SamplerConfig) -> Bytes {
    let mut s = config.build::<u64>().expect("valid config");
    for t in 0..8 {
        s.observe(batch_at(t)).unwrap();
    }
    s.snapshot().unwrap()
}

#[test]
fn jump_mode_resume_is_bit_identical_mid_cursor() {
    // Deterministic companion to the proptest sweep: with q ≈ 0.04 the
    // geometric gaps average ~25 items against batches of mean ~50, so
    // these cuts routinely land while a skip is carried across the batch
    // boundary — the snapshot must persist the live cursor exactly.
    let config = SamplerConfig::ttbs(0.1, 20, 50.0).ingest_mode(IngestMode::Jump);
    for cut in [1, 2, 5, 9, 14, 23] {
        assert_resume_bit_identical(config, 0x5eed, 24, cut);
    }
}

#[test]
fn restore_accepts_either_ingest_mode() {
    // The ingest mode is configuration, not sampler identity: a snapshot
    // written under one mode restores under the other and keeps running.
    let per_item = SamplerConfig::ttbs(0.1, 20, 50.0).seed(9);
    let jump = per_item.ingest_mode(IngestMode::Jump);
    for (writer, reader) in [(&per_item, &jump), (&jump, &per_item)] {
        let mut s = writer.build::<u64>().unwrap();
        for t in 0..12 {
            s.observe(batch_at(t)).unwrap();
        }
        let mut resumed =
            Sampler::restore(reader, s.snapshot().unwrap()).expect("cross-mode restore");
        assert_eq!(resumed.batches_observed(), 12);
        for t in 12..20 {
            resumed.observe(batch_at(t)).unwrap();
        }
        assert_eq!(resumed.batches_observed(), 20);
    }
}

#[test]
fn invalid_jump_cursor_blobs_are_rejected() {
    // The T-TBS cursor is the last 9 payload bytes: primed u8 then
    // pending_skip u64 LE. Forge each structurally impossible state.
    let tampered = |config: &SamplerConfig, primed: u8, skip: u64| {
        let mut b = small_snapshot(config).to_vec();
        let n = b.len();
        b[n - 9] = primed;
        b[n - 8..].copy_from_slice(&skip.to_le_bytes());
        Sampler::<u64>::restore(config, Bytes::from(b)).unwrap_err()
    };

    // Low-q sampler (geometric side): a pending skip without a primed
    // cursor never happens — the first gap is drawn before any skip.
    let low_q = SamplerConfig::ttbs(0.1, 20, 50.0).seed(11);
    assert_eq!(
        tampered(&low_q, 0, 3),
        TbsError::Checkpoint(CheckpointError::Corrupt("T-TBS jump cursor"))
    );
    // Primed flag bytes other than 0/1 are garbage.
    assert_eq!(
        tampered(&low_q, 7, 0),
        TbsError::Checkpoint(CheckpointError::Corrupt("T-TBS cursor primed flag"))
    );
    // High-q sampler (binomial side, q ≈ 0.57 ≥ JUMP_GEOMETRIC_MAX_Q):
    // its cursor is structurally zero, so any claimed skip is corrupt.
    let high_q = SamplerConfig::ttbs(0.1, 300, 50.0).seed(11);
    assert_eq!(
        tampered(&high_q, 1, 5),
        TbsError::Checkpoint(CheckpointError::Corrupt("T-TBS jump cursor"))
    );
    // A primed-but-empty cursor is legal on either side.
    assert!(Sampler::<u64>::restore(&high_q, {
        let mut b = small_snapshot(&high_q).to_vec();
        let n = b.len();
        b[n - 9] = 1;
        Bytes::from(b)
    })
    .is_ok());
}

#[test]
fn sharded_resume_round_trips_split_deviations_and_stolen_work() {
    // Bursty batch sizes that are never multiples of K leave the balanced
    // splitter's deviation ledger non-zero at the cut, and queue_depth 2
    // keeps the work-stealing sweep hot on both sides of the restore. The
    // blob must carry the ledger (and each shard's adaptive-capacity
    // state) exactly, or the resumed split — and therefore the sample —
    // diverges.
    let config = SamplerConfig::rtbs(0.1, 500)
        .shards(4)
        .queue_depth(2)
        .seed(0xfeed);
    let burst = |t: u64| {
        let size = [331u64, 0, 97, 1203, 17, 50][t as usize % 6];
        (0..size).map(|i| t * 10_000 + i).collect::<Vec<u64>>()
    };
    let mut uninterrupted = config.build::<u64>().unwrap();
    for t in 0..40 {
        uninterrupted.observe(burst(t)).unwrap();
    }
    let mut first = config.build::<u64>().unwrap();
    for t in 0..23 {
        first.observe(burst(t)).unwrap();
    }
    let blob = first.snapshot().unwrap();
    drop(first);
    let mut resumed = Sampler::restore(&config, blob).unwrap();
    for t in 23..40 {
        resumed.observe(burst(t)).unwrap();
    }
    assert_eq!(resumed.sample().unwrap(), uninterrupted.sample().unwrap());
}

/// Byte offset of the first engine field (the group ledger, a u32 cell
/// count; the split-deviation ledger follows) in a sharded blob: magic +
/// version + algorithm tag + shard count + handle batch counter + handle
/// RNG state.
const ENGINE_PAYLOAD_OFFSET: usize = 4 + 4 + 1 + 4 + 8 + 32;

#[test]
fn impossible_shard_capacity_is_rejected_as_corrupt() {
    // Restore cross-checks every shard's persisted capacity against the
    // spec's adaptive `⌈n/K⌉+1`; a blob claiming any other capacity was
    // not produced by this engine. Forge one: shard 0's capacity u64
    // lives right after the engine framing (group ledger, K=2
    // deviations, batches, driver RNG, shard count, shard-0 RNG) and the
    // R-TBS λ field.
    let config = SamplerConfig::rtbs(0.1, 40).shards(2).seed(3);
    let shard0_capacity = ENGINE_PAYLOAD_OFFSET + 4 + 2 * 8 + 8 + 32 + 4 + 32 + 8;
    let mut b = small_snapshot(&config).to_vec();
    b[shard0_capacity..shard0_capacity + 8].copy_from_slice(&u64::MAX.to_le_bytes());
    assert_eq!(
        Sampler::<u64>::restore(&config, Bytes::from(b)).unwrap_err(),
        TbsError::Checkpoint(CheckpointError::Corrupt("shard capacity"))
    );
}

#[test]
fn out_of_range_split_deviations_are_rejected_as_corrupt() {
    // The balanced splitter maintains |deviation| ≤ 1 as a hard
    // invariant; a blob carrying NaN, ∞, or anything outside that band
    // is structurally impossible and must be rejected before it can
    // skew every future batch split.
    let config = SamplerConfig::rtbs(0.1, 40).shards(2).seed(3);
    let dev0 = ENGINE_PAYLOAD_OFFSET + 4; // after the group ledger
    for forged in [f64::NAN, f64::INFINITY, -7.5] {
        let mut b = small_snapshot(&config).to_vec();
        b[dev0..dev0 + 8].copy_from_slice(&forged.to_le_bytes());
        assert_eq!(
            Sampler::<u64>::restore(&config, Bytes::from(b)).unwrap_err(),
            TbsError::Checkpoint(CheckpointError::Corrupt("split deviation")),
            "deviation {forged} must be rejected"
        );
    }
}

#[test]
fn mismatched_group_ledger_is_rejected_as_corrupt() {
    // The engine payload leads with the cell count everything after it
    // is sized by. A forged count can never satisfy the restoring
    // config's grouping, whatever else it claims.
    let config = SamplerConfig::rtbs(0.1, 40).shards(2).seed(3);
    let mut b = small_snapshot(&config).to_vec();
    b[ENGINE_PAYLOAD_OFFSET..ENGINE_PAYLOAD_OFFSET + 4].copy_from_slice(&8u32.to_le_bytes());
    assert_eq!(
        Sampler::<u64>::restore(&config, Bytes::from(b)).unwrap_err(),
        TbsError::Checkpoint(CheckpointError::Corrupt("shard group ledger"))
    );

    // Same rejection when the ledger is honest but the grouping differs:
    // a grouped engine (4 workers on 2 cells) cannot restore into an
    // ungrouped 4-shard config — the header shard counts agree, the cell
    // counts do not.
    let grouped = SamplerConfig::rtbs(0.1, 200)
        .shards(4)
        .group_threshold(60)
        .seed(3);
    let blob = small_snapshot(&grouped);
    let ungrouped = SamplerConfig::rtbs(0.1, 200).shards(4).seed(3);
    assert_eq!(
        Sampler::<u64>::restore(&ungrouped, blob).unwrap_err(),
        TbsError::Checkpoint(CheckpointError::Corrupt("shard group ledger"))
    );
}

#[test]
fn impossible_lazy_scale_is_rejected_as_corrupt() {
    // Capacity 20 saturates within the first batch, so no deferral is
    // pending at the snapshot and the R-TBS v4 tail is exactly
    // θ (f64), P (f64), segment count (u64 = 0), pending count (u32 = 0)
    // — 28 bytes. Forge P above 1: no decay sequence can produce it.
    let config = SamplerConfig::rtbs(0.1, 20).defer_threshold(0.5).seed(3);
    let mut b = small_snapshot(&config).to_vec();
    let n = b.len();
    b[n - 20..n - 12].copy_from_slice(&1.5f64.to_le_bytes());
    assert_eq!(
        Sampler::<u64>::restore(&config, Bytes::from(b)).unwrap_err(),
        TbsError::Checkpoint(CheckpointError::Corrupt("R-TBS lazy scale"))
    );
    // And P below θ: materialization must have fired before the scale
    // ever drifted past the threshold.
    let mut b = small_snapshot(&config).to_vec();
    b[n - 20..n - 12].copy_from_slice(&0.25f64.to_le_bytes());
    assert_eq!(
        Sampler::<u64>::restore(&config, Bytes::from(b)).unwrap_err(),
        TbsError::Checkpoint(CheckpointError::Corrupt("R-TBS lazy scale"))
    );
}

#[test]
fn mid_deferral_resume_is_bit_identical() {
    // λ=0.1, n=800, mean batch ~50: the stream stays unsaturated, so
    // with θ=1e-6 every cut lands mid-deferral — the lazy scale and the
    // parked segments ride the blob verbatim and resume without
    // spending any randomness.
    let lazy = SamplerConfig::rtbs(0.1, 800).defer_threshold(1e-6);
    for cut in [1, 3, 9, 17, 30] {
        assert_resume_bit_identical(lazy, 0xdefe_44ed, 36, cut);
    }
    // Sharded: each cell carries its own deferral window in the blob.
    let sharded = lazy.shards(4);
    for cut in [2, 11, 23] {
        assert_resume_bit_identical(sharded, 0xdefe_44ed, 36, cut);
    }
}

#[test]
fn defer_threshold_mismatch_is_rejected() {
    // θ shapes the RNG spend schedule, so restoring under a different
    // threshold cannot continue the stream bit-identically.
    let written = SamplerConfig::rtbs(0.1, 800).defer_threshold(1e-6).seed(7);
    let blob = small_snapshot(&written);
    let other = written.defer_threshold(0.5);
    assert_eq!(
        Sampler::<u64>::restore(&other, blob).unwrap_err(),
        TbsError::ConfigMismatch {
            what: "defer threshold"
        }
    );
}

#[test]
fn bad_magic_is_rejected() {
    let config = SamplerConfig::rtbs(0.1, 20).seed(5);
    let err = Sampler::<u64>::restore(&config, Bytes::from_static(&[0u8; 64])).unwrap_err();
    assert_eq!(err, TbsError::Checkpoint(CheckpointError::BadMagic));
}

#[test]
fn future_format_version_is_rejected() {
    let config = SamplerConfig::rtbs(0.1, 20).seed(5);
    let mut b = BytesMut::new();
    b.put_u32_le(tbs_core::checkpoint::MAGIC);
    b.put_u32_le(99);
    b.put_u8(1);
    let err = Sampler::<u64>::restore(&config, b.freeze()).unwrap_err();
    assert_eq!(
        err,
        TbsError::Checkpoint(CheckpointError::UnsupportedVersion(99))
    );
}

#[test]
fn algorithm_mismatch_is_rejected() {
    let rtbs = SamplerConfig::rtbs(0.1, 20).seed(5);
    let blob = small_snapshot(&rtbs);
    let chao = SamplerConfig::chao(0.1, 20).seed(5);
    assert_eq!(
        Sampler::<u64>::restore(&chao, blob).unwrap_err(),
        TbsError::AlgorithmMismatch {
            expected: "B-Chao",
            found: "R-TBS"
        }
    );
}

#[test]
fn shard_count_mismatch_is_rejected() {
    let four = SamplerConfig::rtbs(0.1, 100).shards(4).seed(5);
    let blob = small_snapshot(&four);
    let two = SamplerConfig::rtbs(0.1, 100).shards(2).seed(5);
    assert_eq!(
        Sampler::<u64>::restore(&two, blob).unwrap_err(),
        TbsError::ConfigMismatch {
            what: "shard count"
        }
    );
}

#[test]
fn parameter_mismatches_are_rejected() {
    let blob = small_snapshot(&SamplerConfig::rtbs(0.1, 20).seed(5));
    // Different λ.
    let err =
        Sampler::<u64>::restore(&SamplerConfig::rtbs(0.2, 20).seed(5), blob.clone()).unwrap_err();
    assert_eq!(err, TbsError::ConfigMismatch { what: "decay rate" });
    // Different capacity.
    let err =
        Sampler::<u64>::restore(&SamplerConfig::rtbs(0.1, 30).seed(5), blob.clone()).unwrap_err();
    assert_eq!(err, TbsError::ConfigMismatch { what: "capacity" });
    // Same parameters restore fine (seed differences are irrelevant: the
    // blob's RNG position wins).
    assert!(Sampler::<u64>::restore(&SamplerConfig::rtbs(0.1, 20).seed(99), blob).is_ok());
}

#[test]
fn trailing_bytes_are_rejected() {
    let config = SamplerConfig::rtbs(0.1, 20).seed(5);
    let blob = small_snapshot(&config);
    let mut extended = blob.to_vec();
    extended.push(0);
    assert_eq!(
        Sampler::<u64>::restore(&config, Bytes::from(extended)).unwrap_err(),
        TbsError::Checkpoint(CheckpointError::Corrupt("trailing bytes"))
    );
}

#[test]
fn restore_validates_the_config_itself_first() {
    let blob = small_snapshot(&SamplerConfig::rtbs(0.1, 20).seed(5));
    let invalid = SamplerConfig::rtbs(-1.0, 20);
    assert!(matches!(
        Sampler::<u64>::restore(&invalid, blob).unwrap_err(),
        TbsError::InvalidDecay { .. }
    ));
}

#[test]
fn snapshot_preserves_handle_metadata() {
    let config = SamplerConfig::ttbs(0.1, 100, 50.0).seed(6);
    let mut s = config.build::<u64>().unwrap();
    for t in 0..9 {
        s.observe(batch_at(t)).unwrap();
    }
    let restored = Sampler::<u64>::restore(&config, s.snapshot().unwrap()).unwrap();
    assert_eq!(restored.batches_observed(), 9);
    assert_eq!(restored.algorithm(), Algorithm::TTbs);
    assert_eq!(restored.name(), "T-TBS");
    assert_eq!(restored.shards(), 1);
}
