//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the structural API the workspace's benches use —
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BenchmarkId`], [`Throughput`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros — with a plain
//! wall-clock measurement loop instead of upstream's statistical engine.
//! Each benchmark warms up, runs timed iterations for the configured
//! measurement window, and prints mean time per iteration (plus throughput
//! when declared). Good enough to compare orders of magnitude and keep
//! bench code compiling; use upstream criterion for publication-grade
//! confidence intervals.

use std::fmt::Display;
use std::hint;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One finished benchmark measurement, kept for the optional JSON summary.
#[derive(Debug, Clone)]
struct Record {
    id: String,
    ns_per_iter: f64,
    iters: u64,
    /// Declared per-iteration work, if any.
    throughput: Option<Throughput>,
}

static RECORDS: Mutex<Vec<Record>> = Mutex::new(Vec::new());

fn record_result(id: &str, ns_per_iter: f64, iters: u64, throughput: Option<Throughput>) {
    RECORDS.lock().expect("records poisoned").push(Record {
        id: id.to_string(),
        ns_per_iter,
        iters,
        throughput,
    });
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render all recorded measurements as a `BENCH_*.json`-style document
/// (same shape as the `bench_throughput` binary's output: a `bench` tag,
/// a `schema_version`, and a flat `rows` array).
pub fn results_json() -> String {
    let records = RECORDS.lock().expect("records poisoned");
    let mut out =
        String::from("{\n  \"bench\": \"criterion\",\n  \"schema_version\": 1,\n  \"rows\": [");
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let per_sec = |units: u64| units as f64 * 1e9 / r.ns_per_iter.max(1e-9);
        let (elems, bytes) = match r.throughput {
            Some(Throughput::Elements(n)) => (format!("{:?}", per_sec(n)), "null".to_string()),
            Some(Throughput::Bytes(n)) => ("null".to_string(), format!("{:?}", per_sec(n))),
            None => ("null".to_string(), "null".to_string()),
        };
        out.push_str(&format!(
            "\n    {{\"id\": \"{}\", \"ns_per_iter\": {:?}, \"iters\": {}, \
             \"elems_per_sec\": {}, \"bytes_per_sec\": {}}}",
            json_escape(&r.id),
            r.ns_per_iter,
            r.iters,
            elems,
            bytes
        ));
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// If the `CRITERION_JSON` environment variable is set, write every
/// measurement recorded so far to that path in the `BENCH_*.json` row
/// format. Called automatically by [`criterion_main!`]-generated mains,
/// so `CRITERION_JSON=path cargo bench` produces machine-readable output
/// alongside the console report.
pub fn write_json_if_requested() {
    if let Ok(path) = std::env::var("CRITERION_JSON") {
        if path.is_empty() {
            return;
        }
        match std::fs::write(&path, results_json()) {
            Ok(()) => println!("wrote criterion JSON to {path}"),
            Err(e) => eprintln!("failed to write criterion JSON to {path}: {e}"),
        }
    }
}

/// Prevent the compiler from optimising away a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// How `iter_batched` amortises setup cost. All variants behave identically
/// in this shim (one setup per timed iteration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Declared work per iteration, used to report throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A function name plus a parameter, rendered `name/param`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// A parameter-only id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// The timing loop handed to each benchmark closure.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    /// Total measured time and iteration count of the last run.
    result: Option<(Duration, u64)>,
}

impl Bencher {
    fn new(warm_up: Duration, measurement: Duration) -> Self {
        Self {
            warm_up,
            measurement,
            result: None,
        }
    }

    /// Time `routine`, called repeatedly for the measurement window.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run untimed until the warm-up window elapses.
        let start = Instant::now();
        while start.elapsed() < self.warm_up {
            black_box(routine());
        }
        let mut iters = 0u64;
        let mut elapsed = Duration::ZERO;
        let measure_start = Instant::now();
        while measure_start.elapsed() < self.measurement {
            let t0 = Instant::now();
            black_box(routine());
            elapsed += t0.elapsed();
            iters += 1;
        }
        self.result = Some((elapsed, iters.max(1)));
    }

    /// Time `routine` on fresh input from `setup` each iteration; only the
    /// routine is timed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let start = Instant::now();
        while start.elapsed() < self.warm_up {
            black_box(routine(setup()));
        }
        let mut iters = 0u64;
        let mut elapsed = Duration::ZERO;
        let measure_start = Instant::now();
        while measure_start.elapsed() < self.measurement {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            elapsed += t0.elapsed();
            iters += 1;
        }
        self.result = Some((elapsed, iters.max(1)));
    }
}

fn format_time(nanos: f64) -> String {
    if nanos < 1_000.0 {
        format!("{nanos:.2} ns")
    } else if nanos < 1_000_000.0 {
        format!("{:.2} µs", nanos / 1_000.0)
    } else if nanos < 1_000_000_000.0 {
        format!("{:.2} ms", nanos / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos / 1_000_000_000.0)
    }
}

/// Top-level harness: holds timing configuration and runs benchmarks.
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Set the timed measurement window per benchmark.
    pub fn measurement_time(mut self, dur: Duration) -> Self {
        self.measurement = dur;
        self
    }

    /// Set the untimed warm-up window per benchmark.
    pub fn warm_up_time(mut self, dur: Duration) -> Self {
        self.warm_up = dur;
        self
    }

    /// Ignored (upstream compatibility): this shim has no sample count.
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            measurement: None,
        }
    }

    /// Run a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(self.warm_up, self.measurement, &id.to_string(), None, f);
        self
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    warm_up: Duration,
    measurement: Duration,
    label: &str,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut bencher = Bencher::new(warm_up, measurement);
    f(&mut bencher);
    match bencher.result {
        Some((elapsed, iters)) => {
            let per_iter = elapsed.as_nanos() as f64 / iters as f64;
            record_result(label, per_iter, iters, throughput);
            let mut line = format!("{label:<50} time: {:>12}/iter", format_time(per_iter));
            if let Some(tp) = throughput {
                let per_sec = |units: u64| units as f64 * 1e9 / per_iter.max(1e-9);
                match tp {
                    Throughput::Elements(n) => {
                        line.push_str(&format!("  thrpt: {:.3e} elem/s", per_sec(n)));
                    }
                    Throughput::Bytes(n) => {
                        line.push_str(&format!("  thrpt: {:.3e} B/s", per_sec(n)));
                    }
                }
            }
            println!("{line}");
        }
        None => println!("{label:<50} (no measurement: bencher never ran)"),
    }
}

/// A named collection of benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    measurement: Option<Duration>,
}

impl BenchmarkGroup<'_> {
    /// Ignored (upstream compatibility): this shim times a window rather
    /// than collecting a fixed number of samples.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Declare per-iteration work for throughput reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Set the timed measurement window for this group only.
    pub fn measurement_time(&mut self, dur: Duration) -> &mut Self {
        self.measurement = Some(dur);
        self
    }

    /// Run a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into());
        run_one(
            self.criterion.warm_up,
            self.measurement.unwrap_or(self.criterion.measurement),
            &label,
            self.throughput,
            f,
        );
        self
    }

    /// Run a benchmark parameterised by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Bundle benchmark functions into a runnable group, with optional
/// `name = ...; config = ...; targets = ...` form.
#[macro_export]
macro_rules! criterion_group {
    (
        name = $name:ident;
        config = $config:expr;
        targets = $($target:path),+ $(,)?
    ) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ( $name:ident, $($target:path),+ $(,)? ) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Generate `fn main()` running the given groups, then emitting the JSON
/// summary when `CRITERION_JSON` is set.
#[macro_export]
macro_rules! criterion_main {
    ( $($group:path),+ $(,)? ) => {
        fn main() {
            $( $group(); )+
            $crate::write_json_if_requested();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast() -> Criterion {
        Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5))
    }

    #[test]
    fn iter_records_measurement() {
        let mut b = Bencher::new(Duration::from_millis(1), Duration::from_millis(5));
        let mut count = 0u64;
        b.iter(|| count += 1);
        let (elapsed, iters) = b.result.expect("measured");
        assert!(iters > 0);
        assert!(elapsed > Duration::ZERO);
        assert!(count >= iters);
    }

    #[test]
    fn iter_batched_times_routine_on_fresh_input() {
        let mut b = Bencher::new(Duration::from_millis(1), Duration::from_millis(5));
        b.iter_batched(|| vec![1u8, 2, 3], |v| v.len(), BatchSize::SmallInput);
        assert!(b.result.expect("measured").1 > 0);
    }

    #[test]
    fn group_and_function_api_compose() {
        let mut c = fast();
        c.bench_function("standalone", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("group");
        group.sample_size(10);
        group.throughput(Throughput::Elements(8));
        group.bench_with_input(BenchmarkId::new("with_input", 8), &8u64, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.bench_function(BenchmarkId::from_parameter("param"), |b| {
            b.iter(|| black_box(3))
        });
        group.finish();
    }

    #[test]
    fn group_measurement_time_does_not_leak_to_parent() {
        let mut c = fast();
        {
            let mut group = c.benchmark_group("scoped");
            group.measurement_time(Duration::from_millis(1));
        }
        assert_eq!(c.measurement, Duration::from_millis(5));
    }

    #[test]
    fn benchmark_id_renders() {
        assert_eq!(BenchmarkId::new("f", 10).to_string(), "f/10");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }

    #[test]
    fn results_json_captures_measurements() {
        let mut c = fast();
        c.bench_function("json_capture_probe", |b| b.iter(|| black_box(2 + 2)));
        let mut group = c.benchmark_group("json_group");
        group.throughput(Throughput::Elements(4));
        group.bench_function("with_throughput", |b| b.iter(|| black_box(1)));
        group.finish();
        let doc = results_json();
        assert!(doc.contains("\"bench\": \"criterion\""));
        // Assert only over the rows this test created: RECORDS is
        // process-global and other tests in this binary also append to it.
        let own: Vec<&str> = doc
            .lines()
            .filter(|l| {
                l.contains("json_capture_probe") || l.contains("json_group/with_throughput")
            })
            .collect();
        assert_eq!(own.len(), 2, "both rows recorded exactly once");
        assert!(own.iter().all(|l| l.contains("\"ns_per_iter\": ")));
        assert!(own
            .iter()
            .any(|l| l.contains("\"id\": \"json_group/with_throughput\"")
                && l.contains("\"elems_per_sec\": ")));
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
