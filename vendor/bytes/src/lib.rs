//! Offline stand-in for the `bytes` crate.
//!
//! Provides [`Bytes`], [`BytesMut`] and the [`Buf`] / [`BufMut`] traits with
//! the subset of the upstream 1.x API the workspace's wire encoding and
//! checkpoint formats use. [`Bytes`] is a cheaply cloneable, sliceable view
//! over shared immutable storage (an `Arc<[u8]>` here rather than the
//! upstream refcounted vtable design — same semantics, simpler machinery).

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable contiguous slice of immutable memory.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Create an empty `Bytes`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create `Bytes` from a static slice.
    pub fn from_static(slice: &'static [u8]) -> Self {
        Self::from_vec(slice.to_vec())
    }

    /// Create `Bytes` by copying `slice`.
    pub fn copy_from_slice(slice: &[u8]) -> Self {
        Self::from_vec(slice.to_vec())
    }

    fn from_vec(v: Vec<u8>) -> Self {
        let end = v.len();
        Self {
            data: v.into(),
            start: 0,
            end,
        }
    }

    /// Number of bytes in the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Return a sub-view sharing the same storage.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or inverted.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Self {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Copy the view into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self::from_vec(v)
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Self::copy_from_slice(s)
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_ref() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state)
    }
}

/// A growable, uniquely owned byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// Create an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create an empty buffer with reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            buf: Vec::with_capacity(capacity),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

/// Read access to a byte cursor: each `get_*` consumes from the front.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Skip `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Read a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let v = u32::from_be_bytes(self.chunk()[..4].try_into().expect("4 bytes"));
        self.advance(4);
        v
    }

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let v = u32::from_le_bytes(self.chunk()[..4].try_into().expect("4 bytes"));
        self.advance(4);
        v
    }

    /// Read a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let v = u64::from_be_bytes(self.chunk()[..8].try_into().expect("8 bytes"));
        self.advance(8);
        v
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let v = u64::from_le_bytes(self.chunk()[..8].try_into().expect("8 bytes"));
        self.advance(8);
        v
    }

    /// Read a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }

    /// Read a big-endian `f64`.
    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }

    /// Copy `len` bytes into a fresh [`Bytes`].
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        let out = Bytes::copy_from_slice(&self.chunk()[..len]);
        self.advance(len);
        out
    }

    /// Copy bytes into `dst`, consuming them.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        self.start += cnt;
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write access to a growable byte buffer.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a big-endian `f64`.
    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Append a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_freeze_read_roundtrip() {
        let mut w = BytesMut::with_capacity(64);
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u32_le(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_u64_le(u64::MAX - 1);
        w.put_f64_le(3.25);
        w.put_slice(b"tail");
        let mut b = w.freeze();
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u32(), 0xDEAD_BEEF);
        assert_eq!(b.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(b.get_u64(), u64::MAX - 1);
        assert_eq!(b.get_u64_le(), u64::MAX - 1);
        assert_eq!(b.get_f64_le(), 3.25);
        assert_eq!(&b[..], b"tail");
    }

    #[test]
    fn slice_shares_storage_and_reads_independently() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(&b[..], &[1, 2, 3, 4, 5]);
        let whole = b.slice(..);
        assert_eq!(whole, b);
    }

    #[test]
    fn copy_to_bytes_consumes() {
        let mut b = Bytes::from_static(b"hello world");
        let hello = b.copy_to_bytes(5);
        assert_eq!(&hello[..], b"hello");
        assert_eq!(b.remaining(), 6);
    }

    #[test]
    fn buf_on_plain_slice() {
        let data = [1u8, 0, 0, 0, 2];
        let mut cursor: &[u8] = &data;
        assert_eq!(cursor.get_u32_le(), 1);
        assert_eq!(cursor.get_u8(), 2);
        assert_eq!(cursor.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "slice out of bounds")]
    fn slice_out_of_bounds_panics() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        let _ = b.slice(0..4);
    }

    #[test]
    fn debug_escapes_bytes() {
        let b = Bytes::from_static(b"a\x00b");
        assert_eq!(format!("{b:?}"), "b\"a\\x00b\"");
    }
}
