//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API the workspace's property tests
//! use: the [`proptest!`] macro over functions with `arg in strategy`
//! parameters, range and [`strategy::Just`] strategies, [`prop_oneof!`],
//! `prop::collection::vec`, and the `prop_assert*` / [`prop_assume!`]
//! macros.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case panics with the standard assertion
//!   message; inputs are deterministic (seeded from the test name), so a
//!   failure reproduces exactly on re-run.
//! * **No persistence files** and no environment-variable configuration —
//!   [`test_runner::ProptestConfig::cases`] is the only knob.

pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `ProptestConfig::cases` random cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $cfg;
                let mut __rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                for __case in 0..__config.cases {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )*
                    // One closure per case so `prop_assume!` can abandon the
                    // case with an early `return`.
                    let __run = move || $body;
                    __run();
                }
            }
        )*
    };
}

/// Assert a condition inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Assert equality inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Assert inequality inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Abandon the current case (not counted as a failure) if the precondition
/// does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            return;
        }
    };
}

/// Build a strategy choosing uniformly among the given strategies (all must
/// produce the same value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![$($crate::strategy::boxed_gen($s)),+])
    };
}
