//! Collection strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// Inclusive-exclusive bounds on a generated collection's length.
///
/// Constructed via `From` so `vec(elem, 1..40)` infers `usize` lengths just
/// as with upstream proptest.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self {
            lo: n,
            hi_exclusive: n + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            lo: r.start,
            hi_exclusive: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        Self {
            lo: *r.start(),
            hi_exclusive: *r.end() + 1,
        }
    }
}

/// Strategy for `Vec`s whose length lies in `size` and whose elements are
/// drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let span = (self.size.hi_exclusive - self.size.lo) as u64;
        let n = self.size.lo + rng.below(span) as usize;
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_respects_length_and_element_bounds() {
        let mut rng = TestRng::deterministic("vec");
        let s = vec(0u64..10, 2..5);
        for _ in 0..1_000 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn fixed_size_from_usize() {
        let mut rng = TestRng::deterministic("fixed");
        let s = vec(0u64..10, 3);
        assert_eq!(s.generate(&mut rng).len(), 3);
    }
}
