//! Deterministic case generation: configuration and the test RNG.

/// Configuration for a [`crate::proptest!`] block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// The entropy source for strategies: splitmix64, seeded from the test
/// name so every test function gets a fixed, independent stream.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Deterministic RNG for the named test.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the test name picks the stream.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        Self { state: h }
    }

    /// Next raw 64-bit output (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "cannot sample below zero");
        loop {
            let m = (self.next_u64() as u128) * (n as u128);
            let low = m as u64;
            if low >= n || low >= n.wrapping_neg() % n {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_same_stream() {
        let mut a = TestRng::deterministic("foo");
        let mut b = TestRng::deterministic("foo");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_names_differ() {
        let mut a = TestRng::deterministic("foo");
        let mut b = TestRng::deterministic("bar");
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn below_is_in_range() {
        let mut rng = TestRng::deterministic("below");
        for _ in 0..10_000 {
            assert!(rng.below(7) < 7);
        }
    }
}
