//! Value-generation strategies (no shrinking).

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating random values of an associated type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// A strategy that always yields a clone of the given value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (start as i128 + rng.below(span as u64) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range strategy");
        let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        start + unit * (end - start)
    }
}

/// Type-erased generator function used by [`OneOf`].
pub type BoxedGen<T> = Box<dyn Fn(&mut TestRng) -> T>;

/// Erase a strategy into a boxed generator closure (used by
/// [`crate::prop_oneof!`]).
pub fn boxed_gen<S: Strategy + 'static>(s: S) -> BoxedGen<S::Value> {
    Box::new(move |rng| s.generate(rng))
}

/// Chooses uniformly among several strategies producing the same type.
pub struct OneOf<T> {
    options: Vec<BoxedGen<T>>,
}

impl<T> OneOf<T> {
    /// Build from at least one erased strategy.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<BoxedGen<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self { options }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        (self.options[idx])(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::deterministic("ranges");
        for _ in 0..10_000 {
            let a = (3u64..9).generate(&mut rng);
            assert!((3..9).contains(&a));
            let b = (1usize..=4).generate(&mut rng);
            assert!((1..=4).contains(&b));
            let c = (-2.0f64..2.0).generate(&mut rng);
            assert!((-2.0..2.0).contains(&c));
            let d = (0.0f64..=1.0).generate(&mut rng);
            assert!((0.0..=1.0).contains(&d));
        }
    }

    #[test]
    fn just_yields_value() {
        let mut rng = TestRng::deterministic("just");
        assert_eq!(Just(41).generate(&mut rng), 41);
    }

    #[test]
    fn oneof_hits_every_option() {
        let mut rng = TestRng::deterministic("oneof");
        let s = OneOf::new(vec![boxed_gen(Just(1u8)), boxed_gen(Just(2u8))]);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }
}
