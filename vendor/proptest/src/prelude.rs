//! Common imports for property tests, mirroring `proptest::prelude`.

pub use crate::strategy::{Just, OneOf, Strategy};
pub use crate::test_runner::{ProptestConfig, TestRng};
pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};

/// Access to the strategy module tree (`prop::collection::vec`, ...).
pub use crate as prop;
