//! Offline stand-in for `arc-swap`: a slot holding an `Arc<T>` that can be
//! read and replaced atomically from any number of threads.
//!
//! **API deviation from upstream:** upstream `arc-swap` serves lock-free
//! reads through hazard-pointer-style debt tracking; over safe standard
//! library primitives (`unsafe_code` is denied workspace-wide) the slot is
//! a `std::sync::Mutex<Arc<T>>` whose critical section is a single
//! refcount increment or pointer swap — a few nanoseconds, never held
//! across user code. The subset implemented here (`new` / `load_full` /
//! `store` / `swap` / `into_inner`) matches upstream signatures, so
//! swapping in the real crate is a `[workspace.dependencies]` one-liner.
//! Callers that need cheap *repeated* polling should pair the slot with a
//! monotonic version counter and only touch the slot when the version
//! moves — that is exactly what `tbs_distributed::snapshot::EpochCell`
//! does.

use std::sync::{Arc, Mutex, PoisonError};

/// A slot always holding one `Arc<T>`, readable and replaceable atomically.
#[derive(Debug, Default)]
pub struct ArcSwap<T> {
    slot: Mutex<Arc<T>>,
}

impl<T> ArcSwap<T> {
    /// Create a slot holding `value`.
    pub fn new(value: Arc<T>) -> Self {
        Self {
            slot: Mutex::new(value),
        }
    }

    /// Clone out the current value (a refcount bump, not a deep copy).
    pub fn load_full(&self) -> Arc<T> {
        Arc::clone(&self.lock())
    }

    /// Replace the current value, dropping the previous one.
    pub fn store(&self, value: Arc<T>) {
        *self.lock() = value;
    }

    /// Replace the current value and return the previous one.
    pub fn swap(&self, value: Arc<T>) -> Arc<T> {
        std::mem::replace(&mut self.lock(), value)
    }

    /// Consume the slot and return its value.
    pub fn into_inner(self) -> Arc<T> {
        self.slot
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Arc<T>> {
        self.slot.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A slot holding `Option<Arc<T>>` — an [`ArcSwap`] that can be empty.
#[derive(Debug)]
pub struct ArcSwapOption<T> {
    slot: Mutex<Option<Arc<T>>>,
}

impl<T> Default for ArcSwapOption<T> {
    fn default() -> Self {
        Self::new(None)
    }
}

impl<T> ArcSwapOption<T> {
    /// Create a slot holding `value`.
    pub fn new(value: Option<Arc<T>>) -> Self {
        Self {
            slot: Mutex::new(value),
        }
    }

    /// An initially empty slot.
    pub fn empty() -> Self {
        Self::new(None)
    }

    /// Clone out the current value, if any.
    pub fn load_full(&self) -> Option<Arc<T>> {
        self.lock().clone()
    }

    /// Replace the current value, dropping the previous one.
    pub fn store(&self, value: Option<Arc<T>>) {
        *self.lock() = value;
    }

    /// Replace the current value and return the previous one.
    pub fn swap(&self, value: Option<Arc<T>>) -> Option<Arc<T>> {
        std::mem::replace(&mut self.lock(), value)
    }

    /// Consume the slot and return its value.
    pub fn into_inner(self) -> Option<Arc<T>> {
        self.slot
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Option<Arc<T>>> {
        self.slot.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_store_swap_roundtrip() {
        let s = ArcSwap::new(Arc::new(1u32));
        assert_eq!(*s.load_full(), 1);
        s.store(Arc::new(2));
        assert_eq!(*s.load_full(), 2);
        let old = s.swap(Arc::new(3));
        assert_eq!(*old, 2);
        assert_eq!(*s.into_inner(), 3);
    }

    #[test]
    fn option_slot_starts_empty_and_fills() {
        let s: ArcSwapOption<String> = ArcSwapOption::empty();
        assert!(s.load_full().is_none());
        s.store(Some(Arc::new("hi".to_string())));
        assert_eq!(s.load_full().unwrap().as_str(), "hi");
        assert_eq!(s.swap(None).unwrap().as_str(), "hi");
        assert!(s.into_inner().is_none());
    }

    #[test]
    fn loads_share_the_same_allocation() {
        let s = ArcSwap::new(Arc::new(vec![1, 2, 3]));
        let a = s.load_full();
        let b = s.load_full();
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn concurrent_readers_see_whole_values() {
        // Writers alternate two self-consistent values; readers must never
        // observe a mix.
        let s = Arc::new(ArcSwap::new(Arc::new((1u64, 10u64))));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let s = Arc::clone(&s);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        let v = s.load_full();
                        assert_eq!(v.1, v.0 * 10);
                    }
                })
            })
            .collect();
        for i in 1..500u64 {
            s.store(Arc::new((i, i * 10)));
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
    }
}
