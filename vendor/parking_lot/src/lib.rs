//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Upstream `parking_lot` locks are poison-free: a panic while holding the
//! lock simply releases it. This shim reproduces that contract over the
//! standard-library primitives by unwrapping poison errors into the inner
//! guard.

use std::sync::{self, PoisonError};

/// A mutual-exclusion lock whose `lock()` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex and return the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire the lock only if it is free right now (upstream
    /// `parking_lot` signature: `Option`, poison-free).
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Borrow the inner value without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A condition variable paired with [`Mutex`], with poison errors unwrapped
/// like the locks.
///
/// **API deviation from upstream:** upstream `parking_lot::Condvar::wait`
/// takes `&mut MutexGuard` and re-acquires in place; over `std::sync`
/// primitives that shape cannot be expressed without `unsafe` (the guard
/// must be moved through `std::sync::Condvar::wait`), so this shim uses the
/// standard library's consume-and-return signature instead. Callers write
/// `guard = cv.wait(guard)` — swapping in the real crate means switching
/// those call sites to `cv.wait(&mut guard)`.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub fn new() -> Self {
        Self {
            inner: sync::Condvar::new(),
        }
    }

    /// Block until notified, releasing the lock while waiting. Spurious
    /// wakeups are possible; callers must re-check their condition.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        self.inner
            .wait(guard)
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Block until notified or `timeout` elapses. As with [`Condvar::wait`]
    /// this consumes and returns the guard (see the API-deviation note
    /// above); the flag reports whether the wait timed out. Spurious
    /// wakeups are possible; callers must re-check their condition.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        timeout: std::time::Duration,
    ) -> (MutexGuard<'a, T>, sync::WaitTimeoutResult) {
        self.inner
            .wait_timeout(guard, timeout)
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Wake one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiting threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// A reader-writer lock whose guards never report poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn lock_survives_panicking_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // Upstream parking_lot semantics: the lock is usable afterwards.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn condvar_signals_across_threads() {
        use std::sync::Arc;
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let handle = std::thread::spawn(move || {
            let (lock, cv) = &*pair2;
            *lock.lock() = true;
            cv.notify_one();
        });
        let (lock, cv) = &*pair;
        let mut ready = lock.lock();
        while !*ready {
            ready = cv.wait(ready);
        }
        handle.join().unwrap();
        assert!(*ready);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
