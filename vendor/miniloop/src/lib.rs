//! # miniloop
//!
//! A deliberately small async runtime for the serving tier: one executor
//! thread, a cooperative task set, a timer wheel (well — a sorted list),
//! and non-blocking TCP driven by *polling with adaptive backoff* rather
//! than an OS readiness API. The workspace denies `unsafe_code`, which
//! rules out raw `epoll`/`kqueue` FFI; instead every I/O future retries
//! its syscall and, on `WouldBlock`, either requeues itself immediately
//! (the first few polls — covers the common case where the peer is
//! already mid-burst) or parks on a short timer that grows toward a
//! bounded ceiling. Under pipelined load the sockets are almost always
//! ready and the backoff path never runs; when idle, the loop converges
//! to a few hundred wakeups per second per connection.
//!
//! The API surface is the subset the `tbs-server` crate needs:
//!
//! * [`Executor::block_on`] — drive a root future (plus everything
//!   spawned) to completion on the calling thread.
//! * [`Handle::spawn`] — add a detached task.
//! * [`Handle::sleep`] / [`Handle::wake_at`] — timers.
//! * [`net::AsyncTcpListener`] / [`net::AsyncTcpStream`] — non-blocking
//!   accept/read/write futures over `std::net`.
//!
//! External wakeups are fully supported: a `Waker` handed to another
//! thread (e.g. a publisher's notify list) pushes the task back on the
//! ready queue and kicks the executor's condvar, so tasks can await
//! events produced outside the loop.

pub mod net;

use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::task::{Context, Poll, Wake, Waker};
use std::time::{Duration, Instant};

type BoxFuture = Pin<Box<dyn Future<Output = ()> + Send + 'static>>;

/// One spawned task: the future plus its ready-queue membership flag.
struct Task {
    future: Mutex<Option<BoxFuture>>,
    /// True while the task sits in the ready queue — collapses redundant
    /// wakes into one queue entry.
    queued: AtomicBool,
    shared: Arc<Shared>,
}

impl Wake for Task {
    fn wake(self: Arc<Self>) {
        self.wake_by_ref();
    }

    fn wake_by_ref(self: &Arc<Self>) {
        if !self.queued.swap(true, Ordering::AcqRel) {
            let shared = Arc::clone(&self.shared);
            shared
                .ready
                .lock()
                .expect("ready queue")
                .push_back(Arc::clone(self));
            shared.cv.notify_one();
        }
    }
}

/// State shared between the executor thread, task wakers, and timer
/// registrations from any thread.
struct Shared {
    ready: Mutex<VecDeque<Arc<Task>>>,
    /// (deadline, waker) pairs, unsorted — scanned when due.
    timers: Mutex<Vec<(Instant, Waker)>>,
    cv: Condvar,
}

impl Shared {
    /// Fire every timer whose deadline has passed; return the next
    /// pending deadline, if any.
    fn fire_due_timers(&self, now: Instant) -> Option<Instant> {
        let mut due = Vec::new();
        let next = {
            let mut timers = self.timers.lock().expect("timer list");
            let mut i = 0;
            while i < timers.len() {
                if timers[i].0 <= now {
                    due.push(timers.swap_remove(i).1);
                } else {
                    i += 1;
                }
            }
            timers.iter().map(|(t, _)| *t).min()
        };
        for waker in due {
            waker.wake();
        }
        next
    }
}

/// A clonable handle into a running (or about-to-run) executor; create
/// via [`Executor::new`] → [`Executor::handle`].
#[derive(Clone)]
pub struct Handle {
    shared: Arc<Shared>,
}

impl Handle {
    /// Spawn a detached task. It runs whenever the owning executor is
    /// inside [`Executor::block_on`].
    pub fn spawn(&self, future: impl Future<Output = ()> + Send + 'static) {
        let task = Arc::new(Task {
            future: Mutex::new(Some(Box::pin(future))),
            queued: AtomicBool::new(false),
            shared: Arc::clone(&self.shared),
        });
        task.wake_by_ref();
    }

    /// Arrange for `waker` to fire at `deadline` (from any thread).
    pub fn wake_at(&self, deadline: Instant, waker: Waker) {
        self.shared
            .timers
            .lock()
            .expect("timer list")
            .push((deadline, waker));
        // The executor may be parked past this deadline; kick it so it
        // re-computes its sleep.
        self.shared.cv.notify_one();
    }

    /// A future that resolves `dur` from now.
    pub fn sleep(&self, dur: Duration) -> Sleep {
        Sleep {
            handle: self.clone(),
            deadline: Instant::now() + dur,
        }
    }

    /// A future that resolves at `deadline`.
    pub fn sleep_until(&self, deadline: Instant) -> Sleep {
        Sleep {
            handle: self.clone(),
            deadline,
        }
    }
}

/// Timer future returned by [`Handle::sleep`].
pub struct Sleep {
    handle: Handle,
    deadline: Instant,
}

impl Future for Sleep {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if Instant::now() >= self.deadline {
            Poll::Ready(())
        } else {
            self.handle.wake_at(self.deadline, cx.waker().clone());
            Poll::Pending
        }
    }
}

/// The single-threaded executor; see the module docs.
pub struct Executor {
    shared: Arc<Shared>,
}

impl Default for Executor {
    fn default() -> Self {
        Self::new()
    }
}

impl Executor {
    /// A fresh executor with an empty task set.
    pub fn new() -> Self {
        Self {
            shared: Arc::new(Shared {
                ready: Mutex::new(VecDeque::new()),
                timers: Mutex::new(Vec::new()),
                cv: Condvar::new(),
            }),
        }
    }

    /// A handle for spawning tasks and registering timers.
    pub fn handle(&self) -> Handle {
        Handle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Drive `root` to completion on the calling thread, running every
    /// spawned task cooperatively alongside it. Returns `root`'s output;
    /// still-pending spawned tasks are dropped when it completes.
    pub fn block_on<F: Future>(&self, root: F) -> F::Output {
        let mut root = Box::pin(root);
        // The root future gets its own parked/notified flag so a wake
        // from any thread can unblock the loop.
        let root_flag = Arc::new(RootWake {
            shared: Arc::clone(&self.shared),
            awake: AtomicBool::new(true),
        });
        let root_waker = Waker::from(Arc::clone(&root_flag));
        let mut cx = Context::from_waker(&root_waker);

        loop {
            // 1. Poll the root future whenever it has been woken.
            if root_flag.awake.swap(false, Ordering::AcqRel) {
                if let Poll::Ready(out) = root.as_mut().poll(&mut cx) {
                    return out;
                }
            }

            // 2. Drain the ready queue (bounded per pass: tasks that
            //    re-wake themselves go to the back and are picked up on
            //    the next pass, keeping the root future responsive).
            let pass: Vec<Arc<Task>> = {
                let mut ready = self.shared.ready.lock().expect("ready queue");
                ready.drain(..).collect()
            };
            for task in &pass {
                task.queued.store(false, Ordering::Release);
                // Take the future out so a reentrant wake during poll
                // cannot alias it; put it back if still pending.
                let fut = task.future.lock().expect("task future").take();
                if let Some(mut fut) = fut {
                    let waker = Waker::from(Arc::clone(task));
                    let mut task_cx = Context::from_waker(&waker);
                    if fut.as_mut().poll(&mut task_cx).is_pending() {
                        *task.future.lock().expect("task future") = Some(fut);
                    }
                }
            }

            // 3. Fire due timers; park until the next deadline or wake.
            let now = Instant::now();
            let next_deadline = self.shared.fire_due_timers(now);
            let mut ready = self.shared.ready.lock().expect("ready queue");
            if ready.is_empty() && !root_flag.awake.load(Ordering::Acquire) {
                match next_deadline {
                    Some(deadline) => {
                        let timeout = deadline.saturating_duration_since(Instant::now());
                        let (guard, _) = self
                            .shared
                            .cv
                            .wait_timeout(ready, timeout)
                            .expect("executor cv");
                        ready = guard;
                    }
                    None => {
                        ready = self.shared.cv.wait(ready).expect("executor cv");
                    }
                }
            }
            drop(ready);
        }
    }
}

struct RootWake {
    shared: Arc<Shared>,
    awake: AtomicBool,
}

impl Wake for RootWake {
    fn wake(self: Arc<Self>) {
        self.wake_by_ref();
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.awake.store(true, Ordering::Release);
        self.shared.cv.notify_one();
    }
}

/// Yield once: resolves Pending on the first poll (after scheduling an
/// immediate re-wake) and Ready on the second — lets a busy task give
/// the rest of the task set a turn.
pub fn yield_now() -> YieldNow {
    YieldNow { yielded: false }
}

/// Future returned by [`yield_now`].
pub struct YieldNow {
    yielded: bool,
}

impl Future for YieldNow {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.yielded {
            Poll::Ready(())
        } else {
            self.yielded = true;
            cx.waker().wake_by_ref();
            Poll::Pending
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn block_on_returns_root_output() {
        let ex = Executor::new();
        assert_eq!(ex.block_on(async { 40 + 2 }), 42);
    }

    #[test]
    fn spawned_tasks_run_alongside_root() {
        let ex = Executor::new();
        let handle = ex.handle();
        let count = Arc::new(AtomicUsize::new(0));
        for _ in 0..5 {
            let count = Arc::clone(&count);
            handle.spawn(async move {
                yield_now().await;
                count.fetch_add(1, Ordering::SeqCst);
            });
        }
        let h2 = handle.clone();
        let c2 = Arc::clone(&count);
        ex.block_on(async move {
            // Wait until every spawned task has bumped the counter.
            while c2.load(Ordering::SeqCst) < 5 {
                h2.sleep(Duration::from_millis(1)).await;
            }
        });
        assert_eq!(count.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn sleep_waits_roughly_the_requested_time() {
        let ex = Executor::new();
        let handle = ex.handle();
        let start = Instant::now();
        ex.block_on(async move { handle.sleep(Duration::from_millis(20)).await });
        let waited = start.elapsed();
        assert!(
            waited >= Duration::from_millis(18),
            "woke early: {waited:?}"
        );
        assert!(waited < Duration::from_secs(2), "woke far too late");
    }

    #[test]
    fn external_thread_wakeups_reach_a_parked_task() {
        // A task parks on a manually registered waker; another OS thread
        // fires it. The executor must wake up and finish.
        struct ExternalFlag {
            fired: Arc<AtomicBool>,
            waker_slot: Arc<Mutex<Option<Waker>>>,
        }
        impl Future for ExternalFlag {
            type Output = ();
            fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
                if self.fired.load(Ordering::Acquire) {
                    Poll::Ready(())
                } else {
                    *self.waker_slot.lock().unwrap() = Some(cx.waker().clone());
                    Poll::Pending
                }
            }
        }

        let fired = Arc::new(AtomicBool::new(false));
        let slot: Arc<Mutex<Option<Waker>>> = Arc::new(Mutex::new(None));
        let (fired2, slot2) = (Arc::clone(&fired), Arc::clone(&slot));
        let kicker = std::thread::spawn(move || {
            // Wait for the task to park, then fire.
            loop {
                if let Some(waker) = slot2.lock().unwrap().take() {
                    fired2.store(true, Ordering::Release);
                    waker.wake();
                    break;
                }
                std::thread::sleep(Duration::from_millis(1));
            }
        });

        let ex = Executor::new();
        ex.block_on(ExternalFlag {
            fired,
            waker_slot: slot,
        });
        kicker.join().unwrap();
    }
}
