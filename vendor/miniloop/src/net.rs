//! Non-blocking TCP futures over `std::net`, readiness-free.
//!
//! Without an OS readiness API (the workspace forbids the `unsafe` FFI
//! one would need), a socket future simply *tries* its syscall on every
//! poll. `WouldBlock` triggers an adaptive backoff: the first few polls
//! requeue the task immediately — under pipelined load the bytes are
//! usually one scheduler turn away — and subsequent polls park on a
//! timer that doubles from 50µs toward a small ceiling. Any successful
//! syscall resets the backoff, so active connections stay hot while
//! idle ones cost a bounded trickle of timer wakeups.

use crate::Handle;
use std::future::Future;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::pin::Pin;
use std::task::{Context, Poll};
use std::time::{Duration, Instant};

/// Immediate re-wakes before the first timed park.
const SPIN_POLLS: u32 = 4;
/// First timed-park delay.
const BACKOFF_BASE: Duration = Duration::from_micros(50);

/// Per-future adaptive backoff state.
#[derive(Debug)]
struct Backoff {
    misses: u32,
    cap: Duration,
}

impl Backoff {
    fn new(cap: Duration) -> Self {
        Self { misses: 0, cap }
    }

    fn reset(&mut self) {
        self.misses = 0;
    }

    /// Schedule the next retry after a `WouldBlock`.
    fn park(&mut self, handle: &Handle, cx: &mut Context<'_>) {
        if self.misses < SPIN_POLLS {
            cx.waker().wake_by_ref();
        } else {
            let exp = (self.misses - SPIN_POLLS).min(16);
            let delay = BACKOFF_BASE
                .checked_mul(1u32 << exp)
                .unwrap_or(self.cap)
                .min(self.cap);
            handle.wake_at(Instant::now() + delay, cx.waker().clone());
        }
        self.misses += 1;
    }
}

fn would_block(err: &io::Error) -> bool {
    matches!(
        err.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::Interrupted
    )
}

/// Async wrapper over a non-blocking [`TcpListener`].
pub struct AsyncTcpListener {
    listener: TcpListener,
    handle: Handle,
}

impl AsyncTcpListener {
    /// Wrap `listener`, switching it to non-blocking mode.
    pub fn from_std(listener: TcpListener, handle: Handle) -> io::Result<Self> {
        listener.set_nonblocking(true)?;
        Ok(Self { listener, handle })
    }

    /// Local address the listener is bound to.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Accept one connection, or resolve `None` once `timeout` elapses —
    /// the caller's chance to re-check shutdown flags between arrivals.
    pub fn accept_timeout(&self, timeout: Duration) -> AcceptTimeout<'_> {
        AcceptTimeout {
            listener: self,
            deadline: Instant::now() + timeout,
            backoff: Backoff::new(Duration::from_millis(10)),
        }
    }
}

/// Future returned by [`AsyncTcpListener::accept_timeout`].
pub struct AcceptTimeout<'a> {
    listener: &'a AsyncTcpListener,
    deadline: Instant,
    backoff: Backoff,
}

impl Future for AcceptTimeout<'_> {
    type Output = io::Result<Option<(AsyncTcpStream, SocketAddr)>>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        match self.listener.listener.accept() {
            Ok((stream, addr)) => {
                let handle = self.listener.handle.clone();
                Poll::Ready(AsyncTcpStream::from_std(stream, handle).map(|s| Some((s, addr))))
            }
            Err(e) if would_block(&e) => {
                if Instant::now() >= self.deadline {
                    return Poll::Ready(Ok(None));
                }
                // Park no later than the timeout itself.
                let deadline = self.deadline;
                let this = self.get_mut();
                if Instant::now() + Duration::from_millis(10) >= deadline {
                    this.listener.handle.wake_at(deadline, cx.waker().clone());
                } else {
                    this.backoff.park(&this.listener.handle, cx);
                }
                Poll::Pending
            }
            Err(e) => Poll::Ready(Err(e)),
        }
    }
}

/// Async wrapper over a non-blocking [`TcpStream`].
pub struct AsyncTcpStream {
    stream: TcpStream,
    handle: Handle,
    read_backoff: Backoff,
    write_backoff: Backoff,
}

impl AsyncTcpStream {
    /// Wrap `stream`, switching it to non-blocking mode and disabling
    /// Nagle (frames are small and latency-sensitive).
    pub fn from_std(stream: TcpStream, handle: Handle) -> io::Result<Self> {
        stream.set_nonblocking(true)?;
        let _ = stream.set_nodelay(true);
        Ok(Self {
            stream,
            handle,
            read_backoff: Backoff::new(Duration::from_millis(2)),
            write_backoff: Backoff::new(Duration::from_millis(2)),
        })
    }

    /// Peer address.
    pub fn peer_addr(&self) -> io::Result<SocketAddr> {
        self.stream.peer_addr()
    }

    /// Read at least one byte into `buf` (resolves `Ok(0)` on EOF).
    pub fn read_some<'a>(&'a mut self, buf: &'a mut [u8]) -> ReadSome<'a> {
        ReadSome { stream: self, buf }
    }

    /// Write all of `data`.
    pub fn write_all<'a>(&'a mut self, data: &'a [u8]) -> WriteAll<'a> {
        WriteAll {
            stream: self,
            data,
            written: 0,
        }
    }

    /// Shut down both directions of the socket.
    pub fn shutdown(&self) -> io::Result<()> {
        self.stream.shutdown(std::net::Shutdown::Both)
    }
}

/// Future returned by [`AsyncTcpStream::read_some`].
pub struct ReadSome<'a> {
    stream: &'a mut AsyncTcpStream,
    buf: &'a mut [u8],
}

impl Future for ReadSome<'_> {
    type Output = io::Result<usize>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        match this.stream.stream.read(this.buf) {
            Ok(n) => {
                this.stream.read_backoff.reset();
                Poll::Ready(Ok(n))
            }
            Err(e) if would_block(&e) => {
                let handle = this.stream.handle.clone();
                this.stream.read_backoff.park(&handle, cx);
                Poll::Pending
            }
            Err(e) => Poll::Ready(Err(e)),
        }
    }
}

/// Future returned by [`AsyncTcpStream::write_all`].
pub struct WriteAll<'a> {
    stream: &'a mut AsyncTcpStream,
    data: &'a [u8],
    written: usize,
}

impl Future for WriteAll<'_> {
    type Output = io::Result<()>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        while this.written < this.data.len() {
            match this.stream.stream.write(&this.data[this.written..]) {
                Ok(0) => {
                    return Poll::Ready(Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    )))
                }
                Ok(n) => {
                    this.stream.write_backoff.reset();
                    this.written += n;
                }
                Err(e) if would_block(&e) => {
                    let handle = this.stream.handle.clone();
                    this.stream.write_backoff.park(&handle, cx);
                    return Poll::Pending;
                }
                Err(e) => return Poll::Ready(Err(e)),
            }
        }
        Poll::Ready(Ok(()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Executor;

    #[test]
    fn accept_read_write_roundtrip() {
        let std_listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = std_listener.local_addr().unwrap();

        // Blocking peer on a real thread.
        let peer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(b"ping").unwrap();
            let mut buf = [0u8; 4];
            s.read_exact(&mut buf).unwrap();
            buf
        });

        let ex = Executor::new();
        let handle = ex.handle();
        let listener = AsyncTcpListener::from_std(std_listener, handle).unwrap();
        ex.block_on(async {
            let (mut conn, _) = listener
                .accept_timeout(Duration::from_secs(5))
                .await
                .unwrap()
                .expect("peer connects within timeout");
            let mut buf = [0u8; 4];
            let mut got = 0;
            while got < 4 {
                let n = conn.read_some(&mut buf[got..]).await.unwrap();
                assert!(n > 0, "unexpected EOF");
                got += n;
            }
            assert_eq!(&buf, b"ping");
            conn.write_all(b"pong").await.unwrap();
        });
        assert_eq!(&peer.join().unwrap(), b"pong");
    }

    #[test]
    fn accept_timeout_resolves_none_when_nobody_connects() {
        let std_listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let ex = Executor::new();
        let handle = ex.handle();
        let listener = AsyncTcpListener::from_std(std_listener, handle).unwrap();
        let start = Instant::now();
        let got = ex.block_on(listener.accept_timeout(Duration::from_millis(30)));
        assert!(got.unwrap().is_none());
        assert!(start.elapsed() >= Duration::from_millis(25));
    }
}
