//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored shim
//! provides the exact subset of the `rand` 0.8 API surface the workspace
//! uses: the [`RngCore`] / [`SeedableRng`] / [`Rng`] traits, the
//! [`distributions::Standard`] distribution for `f64`/`f32`/integers/`bool`,
//! and uniform range sampling for `gen_range`. The actual generators
//! (xoshiro256++, splitmix64) live in `tbs-stats`; this crate only defines
//! the trait vocabulary they plug into.
//!
//! Semantics follow the upstream crate: `Standard` over `f64` yields 53-bit
//! uniforms in `[0, 1)`, `seed_from_u64` expands the seed with splitmix64,
//! and `gen_range` panics on empty ranges.

pub mod distributions;

use distributions::uniform::{SampleRange, SampleUniform};
use distributions::{Distribution, Standard};

/// Error type reported by fallible RNG operations.
///
/// The deterministic generators in this workspace never fail, so this type
/// exists only to satisfy the `try_fill_bytes` signature.
#[derive(Debug)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "random number generator failure")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator: raw 32/64-bit output and byte
/// filling.
pub trait RngCore {
    /// Return the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Return the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fill `dest` with random bytes, reporting failure via `Err`.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Seed type, e.g. `[u8; 32]`.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Create a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Create a generator from a `u64`, expanding it with splitmix64 as the
    /// upstream crate does.
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Convenience methods layered over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a value from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Sample a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        assert!(!range.is_empty(), "cannot sample empty range");
        range.sample_single(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    /// Sample a value from an explicit distribution.
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            // splitmix64 so the uniform tests see well-mixed bits.
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&bytes[..n]);
            }
        }
    }

    #[test]
    fn f64_standard_is_unit_interval() {
        let mut rng = Counter(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_integer_bounds() {
        let mut rng = Counter(3);
        for _ in 0..10_000 {
            let v = rng.gen_range(5usize..17);
            assert!((5..17).contains(&v));
            let w = rng.gen_range(2u64..=9);
            assert!((2..=9).contains(&w));
        }
    }

    #[test]
    fn gen_range_f64_bounds() {
        let mut rng = Counter(11);
        for _ in 0..10_000 {
            let v = rng.gen_range(-2.5f64..4.0);
            assert!((-2.5..4.0).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = Counter(1);
        let _ = rng.gen_range(5..5usize);
    }

    #[test]
    fn seed_from_u64_fills_seed() {
        struct S([u8; 32]);
        impl RngCore for S {
            fn next_u32(&mut self) -> u32 {
                0
            }
            fn next_u64(&mut self) -> u64 {
                0
            }
            fn fill_bytes(&mut self, _: &mut [u8]) {}
        }
        impl SeedableRng for S {
            type Seed = [u8; 32];
            fn from_seed(seed: Self::Seed) -> Self {
                S(seed)
            }
        }
        let s = S::seed_from_u64(42);
        assert!(s.0.iter().any(|&b| b != 0));
        let t = S::seed_from_u64(42);
        assert_eq!(s.0, t.0);
    }
}
