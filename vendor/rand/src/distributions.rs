//! Distribution traits and the [`Standard`] distribution.

use crate::RngCore;

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Draw one value using `rng` as the entropy source.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution for a type: uniform over `[0, 1)` for floats,
/// uniform over the full domain for integers, fair coin for `bool`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 random mantissa bits, matching upstream `rand`.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<u64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Distribution<u32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

pub mod uniform {
    //! Uniform sampling from ranges, backing `Rng::gen_range`.

    use crate::RngCore;
    use std::ops::{Range, RangeInclusive};

    /// Marker trait for types `gen_range` can produce.
    pub trait SampleUniform: Sized {}

    /// A range argument accepted by `gen_range`.
    pub trait SampleRange<T> {
        /// Draw one value uniformly from the range.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        /// Whether the range contains no values.
        fn is_empty(&self) -> bool;
    }

    /// Uniform `u64` in `[0, n)` via widening-multiply with rejection of the
    /// biased tail (Lemire's method), so small moduli are exactly uniform.
    fn u64_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
        debug_assert!(n > 0);
        loop {
            let x = rng.next_u64();
            let m = (x as u128) * (n as u128);
            let low = m as u64;
            if low >= n {
                return (m >> 64) as u64;
            }
            // Tail rejection: accept unless `low` falls in the biased zone.
            let threshold = n.wrapping_neg() % n;
            if low >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    macro_rules! impl_uniform_int {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {}

            impl SampleRange<$t> for Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let span = (self.end as i128 - self.start as i128) as u64;
                    let offset = u64_below(rng, span);
                    (self.start as i128 + offset as i128) as $t
                }
                fn is_empty(&self) -> bool {
                    self.start >= self.end
                }
            }

            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    let span = (end as i128 - start as i128) as u128 + 1;
                    if span > u64::MAX as u128 {
                        // Full-domain u64/i64 range: every output is valid.
                        return rng.next_u64() as $t;
                    }
                    let offset = u64_below(rng, span as u64);
                    (start as i128 + offset as i128) as $t
                }
                fn is_empty(&self) -> bool {
                    self.start() > self.end()
                }
            }
        )*};
    }

    impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl SampleUniform for f64 {}

    impl SampleRange<f64> for Range<f64> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            self.start + unit * (self.end - self.start)
        }
        fn is_empty(&self) -> bool {
            // NaN endpoints make the range empty, like upstream.
            !matches!(
                self.start.partial_cmp(&self.end),
                Some(std::cmp::Ordering::Less)
            )
        }
    }

    impl SampleRange<f64> for RangeInclusive<f64> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
            let (start, end) = (*self.start(), *self.end());
            // 53-bit grid over [0, 1] inclusive of both endpoints.
            let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
            start + unit * (end - start)
        }
        fn is_empty(&self) -> bool {
            !matches!(
                self.start().partial_cmp(self.end()),
                Some(std::cmp::Ordering::Less | std::cmp::Ordering::Equal)
            )
        }
    }
}
